//! The send-side congestion loop, end to end: a [`NetSendEnd`] pushed
//! against a saturated inproc link broadcasts its saturation readings, a
//! [`CongestionDropController`] turns them into `SetDropLevel` commands,
//! and a producer-side [`PriorityDropFilter`] sheds load — the Fig. 1
//! adaptation driven by transport backpressure instead of (only) the
//! consumer's receive rate.

use feedback::{CongestionDropController, FeedbackLoop};
use infopipes::{ControlEvent, FreePump, Pipeline};
use mbthread::{Kernel, KernelConfig};
use media::{CompressedFrame, GopStructure, MpegFileSource, PriorityDropFilter};
use netpipe::{
    Acceptor, InProcTransport, Link, Marshal, NetSendEnd, Transport, SEND_SATURATION_READING,
};
use std::time::{Duration, Instant};

#[test]
fn send_saturation_raises_the_drop_level() {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    {
        // A 4-slot ring that nobody drains: the send end sees Saturated
        // and Dropped almost immediately.
        let transport = InProcTransport::with_capacity(4);
        let acceptor = transport.listen("congested").unwrap();
        let link = transport.connect("congested").unwrap();
        let remote_end = acceptor.accept().unwrap();

        let pipeline = Pipeline::new(&kernel, "producer");
        let src = pipeline.add_producer(
            "mpeg-file",
            MpegFileSource::new(GopStructure::ibbp(), 240, 30.0, 2000, 5),
        );
        let pump = pipeline.add_pump("pump", FreePump::new());
        let (filter, filter_stats) = PriorityDropFilter::new();
        let filter = pipeline.add_function("drop-filter", filter);
        let (fb, loop_stats) = FeedbackLoop::event_driven(
            "congestion-loop",
            CongestionDropController::new(SEND_SATURATION_READING),
        );
        let fb = pipeline.add_consumer("congestion-loop", fb);
        let marshal = pipeline.add_function("marshal", Marshal::<CompressedFrame>::new("marshal"));
        let send = pipeline.add_consumer(
            "send",
            NetSendEnd::new("send", link.clone())
                .with_congestion_reports(SEND_SATURATION_READING, 16),
        );
        let _ = src >> pump >> filter >> fb >> marshal >> send;

        let running = pipeline.start().unwrap();
        let events = running.subscribe();
        running.start_flow().unwrap();
        running.wait_quiescent();

        // The link really pushed back...
        let stats = link.stats();
        assert!(
            stats.dropped > 0,
            "the tiny ring must shed frames: {stats:?}"
        );
        // ...the send end turned that into readings the loop consumed...
        let ls = *loop_stats.lock();
        assert!(
            ls.readings >= 1,
            "saturation readings must reach the loop: {ls:?}"
        );
        assert!(ls.commands >= 1, "the controller must escalate: {ls:?}");
        // ...and the drop filter actually moved off level 0 and shed load.
        let fs = *filter_stats.lock();
        assert!(
            fs.level >= 1,
            "drop level must rise under congestion: {fs:?}"
        );
        assert!(
            fs.dropped > 0,
            "the filter must shed frames at level >= 1: {fs:?}"
        );

        // The SetDropLevel command is visible to external subscribers too.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut saw_cmd = false;
        while Instant::now() < deadline {
            match events.recv_timeout(Duration::from_millis(50)) {
                Some(ControlEvent::SetDropLevel(l)) if l >= 1 => {
                    saw_cmd = true;
                    break;
                }
                Some(_) => {}
                None => break,
            }
        }
        assert!(saw_cmd, "SetDropLevel must be broadcast pipeline-wide");

        // The saturation reading is a local-loop signal: it must NOT be
        // forwarded over the (congested) link to the remote side.
        loop {
            match remote_end.recv(Duration::from_millis(100)) {
                netpipe::RecvOutcome::Frame(netpipe::Frame::Event(ev)) => {
                    if let netpipe::WireEvent::Custom { name, .. } = &ev {
                        assert_ne!(
                            name, SEND_SATURATION_READING,
                            "the send end's own congestion reading leaked onto the wire"
                        );
                    }
                }
                netpipe::RecvOutcome::Frame(_) => {}
                _ => break,
            }
        }
    }
    kernel.shutdown();
}
