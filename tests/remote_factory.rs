//! Remote component creation (§2.4), transport-agnostic: a host node
//! instantiates a consumer pipeline from its factory registry at a
//! client's request; the client streams video into it and both sides
//! exchange control events. The same `RemoteHost`/`RemoteClient` code
//! runs over TCP and over the in-process transport — only the
//! `Transport` value changes.

use infopipes::{ClockedPump, ControlEvent, Pipeline, Style};
use mbthread::{Kernel, KernelConfig};
use media::{DecodeCost, Decoder, GopStructure, MpegFileSource, RawFrame};
use netpipe::{
    Acceptor, ComponentRegistry, InProcTransport, Marshal, PipelineTransportExt, RemoteClient,
    RemoteError, RemoteHost, TcpTransport, Transport, Unmarshal,
};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

const GOP: GopStructure = GopStructure {
    gop_size: 9,
    b_run: 2,
};

/// Builds the host's registry: unmarshal, decoder, and a display whose
/// stats are observable from the test. The unmarshaller stamps the
/// *transport peer identity* into the flow's location — no hard-coded
/// node strings.
fn registry(display_stats: Arc<Mutex<media::DisplayStats>>) -> ComponentRegistry {
    let mut reg = ComponentRegistry::new();
    reg.register_with_peer("unmarshal-frame", |peer| {
        Style::Function(Box::new(
            Unmarshal::<media::CompressedFrame>::new("unmarshal-frame").at_peer(peer),
        ))
    });
    reg.register("decoder", || {
        Style::Consumer(Box::new(Decoder::new(GOP, DecodeCost::free())))
    });
    reg.register("display", move || {
        let stats = Arc::clone(&display_stats);
        Style::Consumer(Box::new(SharedDisplay { stats }))
    });
    reg
}

/// A display whose stats handle is shared with the test (factories must
/// be repeatable, so the regular `DisplaySink::new` pair does not fit).
struct SharedDisplay {
    stats: Arc<Mutex<media::DisplayStats>>,
}

impl infopipes::Stage for SharedDisplay {
    fn name(&self) -> &str {
        "display"
    }

    fn accepts(&self) -> typespec::Typespec {
        typespec::Typespec::with_item_type(infopipes::ItemType::of::<RawFrame>())
    }
}

impl infopipes::Consumer for SharedDisplay {
    fn push(&mut self, ctx: &mut infopipes::StageCtx<'_, '_>, item: infopipes::Item) {
        let frame = item.expect::<RawFrame>();
        let mut stats = self.stats.lock();
        stats.timing.record(ctx.now().as_micros());
        stats.presented.push(frame.seq);
    }
}

#[test]
fn client_creates_and_feeds_a_remote_pipeline_over_tcp() {
    let transport = TcpTransport::new();
    let acceptor = transport.listen("127.0.0.1:0").unwrap();
    let addr = acceptor.local_addr();

    let display_stats = Arc::new(Mutex::new(media::DisplayStats::default()));
    let host_stats = Arc::clone(&display_stats);

    // ---- host node ----
    let host_thread = std::thread::spawn(move || {
        let kernel = Kernel::new(KernelConfig::default());
        let host = RemoteHost::new("host-node", registry(host_stats));
        let link = acceptor.accept().unwrap();
        let result = host.serve_link(&link, &kernel);
        // Give in-flight frames a moment to drain through the pipeline.
        std::thread::sleep(Duration::from_millis(200));
        kernel.shutdown();
        result
    });

    // ---- client node ----
    let mut client = RemoteClient::connect(&transport, &addr).unwrap();
    client
        .create_pipeline(&["unmarshal-frame", "decoder", "display"])
        .unwrap();

    // The remote Typespec query resolves against the host-side chain;
    // the location is the client's own identity as seen by the host —
    // the transport drove the rewrite, not a hand-written string.
    let spec = client.query_spec().unwrap();
    assert!(spec.item.contains("RawFrame"), "{spec:?}");
    let location = spec.location.as_deref().unwrap_or_default();
    assert!(
        location.starts_with("tcp://127.0.0.1"),
        "location must be the transport peer identity, got {location:?}"
    );

    let events_seen = Arc::new(Mutex::new(Vec::new()));
    let events_seen2 = Arc::clone(&events_seen);
    client
        .spawn_event_reader(move |ev| {
            events_seen2.lock().push(ev);
        })
        .unwrap();

    // Local producer pipeline feeding the link.
    let kernel = Kernel::new(KernelConfig::default());
    let producer = Pipeline::new(&kernel, "producer");
    let src = producer.add_producer("file", MpegFileSource::new(GOP, 45, 200.0, 400, 77));
    let pump = producer.add_pump("pump", ClockedPump::hz(200.0));
    let marshal = producer.add_function(
        "marshal",
        Marshal::<media::CompressedFrame>::new("marshal").at_peer(&client.peer()),
    );
    let send = producer.add_net_sink("net-send", client.link());
    let _ = src >> pump >> marshal >> send;
    let running = producer.start().unwrap();
    running.start_flow().unwrap();

    // Wait for playback to complete on the host.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while display_stats.lock().count() < 45 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(display_stats.lock().count(), 45);
    assert_eq!(
        display_stats.lock().presented,
        (0..45).collect::<Vec<u64>>()
    );

    // The host broadcast EOS when the stream ended; it must have been
    // forwarded back to the client.
    let ev_deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < ev_deadline {
        if events_seen.lock().contains(&ControlEvent::Eos) {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        events_seen.lock().contains(&ControlEvent::Eos),
        "host-side EOS must reach the client: {:?}",
        events_seen.lock()
    );

    kernel.shutdown();
    host_thread.join().unwrap().unwrap();
}

#[test]
fn host_pipeline_stops_after_abrupt_client_disconnect() {
    use std::sync::atomic::{AtomicBool, Ordering};

    // A pass-through consumer that records whether the pipeline it lives
    // in was ever stopped.
    struct StopProbe {
        stopped: Arc<AtomicBool>,
    }
    impl infopipes::Stage for StopProbe {
        fn name(&self) -> &str {
            "stop-probe"
        }
        fn accepts(&self) -> typespec::Typespec {
            typespec::Typespec::with_item_type(infopipes::ItemType::of::<netpipe::WireBytes>())
        }
        fn on_event(&mut self, _ctx: &mut infopipes::EventCtx<'_, '_>, event: &ControlEvent) {
            if matches!(event, ControlEvent::Stop) {
                self.stopped.store(true, Ordering::Release);
            }
        }
    }
    impl infopipes::Consumer for StopProbe {
        fn push(&mut self, _ctx: &mut infopipes::StageCtx<'_, '_>, _item: infopipes::Item) {}
    }

    let stopped = Arc::new(AtomicBool::new(false));
    let probe_flag = Arc::clone(&stopped);
    let mut reg = ComponentRegistry::new();
    reg.register("stop-probe", move || {
        Style::Consumer(Box::new(StopProbe {
            stopped: Arc::clone(&probe_flag),
        }))
    });

    let transport = InProcTransport::new();
    let acceptor = transport.listen("abrupt").unwrap();
    let host_thread = std::thread::spawn(move || {
        let kernel = Kernel::new(KernelConfig::default());
        let host = RemoteHost::new("host-node", reg);
        let link = acceptor.accept().unwrap();
        let result = host.serve_link(&link, &kernel);
        // Let the Stop broadcast sweep the (now stopping) pipeline.
        std::thread::sleep(Duration::from_millis(200));
        kernel.shutdown();
        result
    });

    let mut client = RemoteClient::connect(&transport, "abrupt").unwrap();
    client.create_pipeline(&["stop-probe"]).unwrap();
    // Vanish without a Fin: the host sees the link close mid-stream.
    drop(client);

    let result = host_thread.join().unwrap();
    assert!(result.is_err(), "an abrupt close is a serve error");
    assert!(
        stopped.load(std::sync::atomic::Ordering::Acquire),
        "serve_link must stop its pipeline on a link error — the peer's \
         typespec-location rewrite must not outlive the connection"
    );
}

#[test]
fn unknown_component_is_refused_over_inproc() {
    // The factory protocol itself is transport-agnostic: the refusal
    // path runs over the in-process backend with the same code.
    let transport = InProcTransport::new();
    let acceptor = transport.listen("factory").unwrap();

    let host_thread = std::thread::spawn(move || {
        let kernel = Kernel::new(KernelConfig::default());
        let host = RemoteHost::new("host-node", ComponentRegistry::new());
        let link = acceptor.accept().unwrap();
        let result = host.serve_link(&link, &kernel);
        kernel.shutdown();
        result
    });

    let mut client = RemoteClient::connect(&transport, "factory").unwrap();
    let err = client.create_pipeline(&["nope"]).unwrap_err();
    assert!(matches!(err, RemoteError::Refused(_)), "{err:?}");
    assert!(host_thread.join().unwrap().is_err());
}
