//! Remote component creation over TCP (§2.4): a host node instantiates a
//! consumer pipeline from its factory registry at a client's request; the
//! client streams video into it and both sides exchange control events.

use infopipes::{ClockedPump, ControlEvent, Pipeline, Style};
use mbthread::{Kernel, KernelConfig};
use media::{DecodeCost, Decoder, GopStructure, MpegFileSource, RawFrame};
use netpipe::{ComponentRegistry, Marshal, RemoteClient, RemoteError, RemoteHost, Unmarshal};
use parking_lot::Mutex;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

const GOP: GopStructure = GopStructure {
    gop_size: 9,
    b_run: 2,
};

/// Builds the host's registry: unmarshal, decoder, and a display whose
/// stats are observable from the test.
fn registry(display_stats: Arc<Mutex<media::DisplayStats>>) -> ComponentRegistry {
    let mut reg = ComponentRegistry::new();
    reg.register("unmarshal-frame", || {
        Style::Function(Box::new(
            Unmarshal::<media::CompressedFrame>::new("unmarshal-frame").at_node("host"),
        ))
    });
    reg.register("decoder", || {
        Style::Consumer(Box::new(Decoder::new(GOP, DecodeCost::free())))
    });
    reg.register("display", move || {
        let stats = Arc::clone(&display_stats);
        Style::Consumer(Box::new(SharedDisplay { stats }))
    });
    reg
}

/// A display whose stats handle is shared with the test (factories must
/// be repeatable, so the regular `DisplaySink::new` pair does not fit).
struct SharedDisplay {
    stats: Arc<Mutex<media::DisplayStats>>,
}

impl infopipes::Stage for SharedDisplay {
    fn name(&self) -> &str {
        "display"
    }

    fn accepts(&self) -> typespec::Typespec {
        typespec::Typespec::with_item_type(infopipes::ItemType::of::<RawFrame>())
    }
}

impl infopipes::Consumer for SharedDisplay {
    fn push(&mut self, ctx: &mut infopipes::StageCtx<'_, '_>, item: infopipes::Item) {
        let frame = item.expect::<RawFrame>();
        let mut stats = self.stats.lock();
        stats.timing.record(ctx.now().as_micros());
        stats.presented.push(frame.seq);
    }
}

#[test]
fn client_creates_and_feeds_a_remote_pipeline() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let display_stats = Arc::new(Mutex::new(media::DisplayStats::default()));
    let host_stats = Arc::clone(&display_stats);

    // ---- host node ----
    let host_thread = std::thread::spawn(move || {
        let kernel = Kernel::new(KernelConfig::default());
        let host = RemoteHost::new("host-node", registry(host_stats));
        let (stream, _) = listener.accept().unwrap();
        let result = host.serve_connection(stream, &kernel);
        // Give in-flight frames a moment to drain through the pipeline.
        std::thread::sleep(Duration::from_millis(200));
        kernel.shutdown();
        result
    });

    // ---- client node ----
    let mut client = RemoteClient::connect(addr).unwrap();
    client
        .create_pipeline(&["unmarshal-frame", "decoder", "display"])
        .unwrap();

    // The remote Typespec query resolves against the host-side chain.
    let spec = client.query_spec().unwrap();
    assert!(spec.item.contains("RawFrame"), "{spec:?}");
    assert_eq!(spec.location.as_deref(), Some("host"));

    let send_end = client.send_end("net-send").unwrap();
    let events_seen = Arc::new(Mutex::new(Vec::new()));
    let events_seen2 = Arc::clone(&events_seen);
    let _reader = client.spawn_event_reader(move |ev| {
        events_seen2.lock().push(ev);
    });

    // Local producer pipeline feeding the socket.
    let kernel = Kernel::new(KernelConfig::default());
    let producer = Pipeline::new(&kernel, "producer");
    let src = producer.add_producer("file", MpegFileSource::new(GOP, 45, 200.0, 400, 77));
    let pump = producer.add_pump("pump", ClockedPump::hz(200.0));
    let marshal = producer.add_function(
        "marshal",
        Marshal::<media::CompressedFrame>::new("marshal").at_node("client"),
    );
    let send = producer.add_consumer("send", send_end);
    let _ = src >> pump >> marshal >> send;
    let running = producer.start().unwrap();
    running.start_flow().unwrap();

    // Wait for playback to complete on the host.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while display_stats.lock().count() < 45 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(display_stats.lock().count(), 45);
    assert_eq!(
        display_stats.lock().presented,
        (0..45).collect::<Vec<u64>>()
    );

    // The host broadcast EOS when the stream ended; it must have been
    // forwarded back to the client.
    let ev_deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < ev_deadline {
        if events_seen.lock().iter().any(|e| *e == ControlEvent::Eos) {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        events_seen.lock().iter().any(|e| *e == ControlEvent::Eos),
        "host-side EOS must reach the client: {:?}",
        events_seen.lock()
    );

    kernel.shutdown();
    host_thread.join().unwrap().unwrap();
}

#[test]
fn unknown_component_is_refused() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let host_thread = std::thread::spawn(move || {
        let kernel = Kernel::new(KernelConfig::default());
        let host = RemoteHost::new("host-node", ComponentRegistry::new());
        let (stream, _) = listener.accept().unwrap();
        let result = host.serve_connection(stream, &kernel);
        kernel.shutdown();
        result
    });

    let mut client = RemoteClient::connect(addr).unwrap();
    let err = client.create_pipeline(&["nope"]).unwrap_err();
    assert!(matches!(err, RemoteError::Refused(_)), "{err:?}");
    assert!(host_thread.join().unwrap().is_err());
}
