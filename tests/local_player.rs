//! Cross-crate integration: the paper's §4 local video player, with the
//! jitter buffer of Fig. 1.

use infopipes::{BufferSpec, ClockedPump, FreePump, Pipeline};
use mbthread::{Kernel, KernelConfig};
use media::{DecodeCost, Decoder, DisplaySink, GopStructure, MpegFileSource, Resizer};
use std::time::Duration;

/// The §4 composition: `mpeg_file >> decode >> pump >> display`, all in
/// one section (single thread).
#[test]
fn simple_video_player_plays_every_frame() {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    {
        let pipeline = Pipeline::new(&kernel, "player");
        let source = pipeline.add_producer(
            "mpeg-file",
            MpegFileSource::new(GopStructure::ibbp(), 30, 30.0, 1000, 42),
        );
        let decoder = Decoder::new(GopStructure::ibbp(), DecodeCost::free());
        let dec_stats = decoder.stats_handle();
        // The decoder is a consumer used in pull mode: it runs as a
        // coroutine — reused unchanged regardless of position.
        let decode = pipeline.add_consumer("decode", decoder);
        let pump = pipeline.add_pump("pump", ClockedPump::hz(30.0));
        let (display, stats) = DisplaySink::new();
        let sink = pipeline.add_consumer("display", display);
        let _ = source >> decode >> pump >> sink;

        let running = pipeline.start().expect("plan");
        assert_eq!(running.report().total_threads(), 2);
        running.start_flow().expect("start");
        running.wait_quiescent();

        let s = stats.lock();
        assert_eq!(s.count(), 30);
        assert_eq!(s.presented, (0..30).collect::<Vec<u64>>());
        assert_eq!(dec_stats.lock().decoded, 30);
        // 30 Hz clocked output in virtual time: presentation jitter is
        // sub-microsecond (the 33⅓ ms period truncates to whole us).
        assert!(s.timing.jitter_us().unwrap() < 1.0);
    }
    kernel.shutdown();
}

/// The jitter-buffer effect (Fig. 1's consumer side): with bursty decode
/// times, adding a buffer plus a clocked output pump removes presentation
/// jitter.
#[test]
fn jitter_buffer_smooths_bursty_decoding() {
    // Decode cost alternates wildly with frame size (I frames are ~8x B
    // frames), so an unbuffered display inherits that variance.
    fn run(with_buffer: bool) -> f64 {
        let kernel = Kernel::new(KernelConfig::virtual_time());
        let jitter = {
            let pipeline = Pipeline::new(&kernel, "jitter-test");
            let source = pipeline.add_producer(
                "mpeg-file",
                MpegFileSource::new(GopStructure::ibbp(), 60, 30.0, 4000, 7),
            );
            let decoder = Decoder::new(
                GopStructure::ibbp(),
                DecodeCost {
                    base: Duration::from_millis(2),
                    per_kilobyte: Duration::from_millis(4),
                },
            );
            let decode = pipeline.add_consumer("decode", decoder);
            let (display, stats) = DisplaySink::new();
            if with_buffer {
                // decode runs free into the buffer; a clocked pump feeds
                // the display at exactly 30 Hz.
                let pump_in = pipeline.add_pump("pump-in", FreePump::new());
                let buf = pipeline.add_buffer_with("jitter-buf", BufferSpec::bounded(16));
                let pump_out = pipeline.add_pump("pump-out", ClockedPump::hz(30.0));
                let sink = pipeline.add_consumer("display", display);
                let _ = source >> decode >> pump_in >> buf >> pump_out >> sink;
            } else {
                // The display sees frames straight out of the decoder.
                let pump = pipeline.add_pump("pump", FreePump::new());
                let sink = pipeline.add_consumer("display", display);
                let _ = source >> decode >> pump >> sink;
            }
            let running = pipeline.start().expect("plan");
            running.start_flow().expect("start");
            running.wait_quiescent();
            let s = stats.lock();
            assert!(s.count() >= 50, "most frames must arrive: {}", s.count());
            s.timing.jitter_us().unwrap_or(0.0)
        };
        kernel.shutdown();
        jitter
    }

    let unbuffered = run(false);
    let buffered = run(true);
    assert!(
        unbuffered > 2.0 * buffered.max(1.0),
        "the jitter buffer must reduce presentation jitter substantially: \
         unbuffered {unbuffered:.0} us vs buffered {buffered:.0} us"
    );
    // The clocked output is essentially perfect in virtual time.
    assert!(buffered < 1000.0, "buffered jitter {buffered:.0} us");
}

/// The resizer reacts to window-resize events from the display side
/// (§2.2's local control interaction example).
#[test]
fn resizer_follows_window_resize_events() {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    {
        let pipeline = Pipeline::new(&kernel, "resize");
        let source = pipeline.add_producer(
            "mpeg-file",
            MpegFileSource::new(GopStructure::intra_only(), 20, 100.0, 100, 3),
        );
        let decode = pipeline.add_consumer(
            "decode",
            Decoder::new(GopStructure::intra_only(), DecodeCost::free()),
        );
        let (resizer, resize_count) = Resizer::new(640, 480);
        let resize = pipeline.add_function("resize", resizer);
        let pump = pipeline.add_pump("pump", ClockedPump::hz(100.0));
        let (display, stats) = DisplaySink::new();
        let sink = pipeline.add_consumer("display", display);
        let _ = source >> decode >> pump >> resize >> sink;

        let running = pipeline.start().expect("plan");
        running.start_flow().expect("start");
        // Mid-playback, the user resizes the window.
        std::thread::sleep(Duration::from_millis(20));
        running
            .send_event(infopipes::ControlEvent::WindowResize {
                width: 1280,
                height: 720,
            })
            .expect("send");
        running.wait_quiescent();
        assert_eq!(stats.lock().count(), 20);
        assert_eq!(*resize_count.lock(), 1);
    }
    kernel.shutdown();
}

/// §2.2's reference-frame release example: "Communication between the
/// decoder and downstream components must determine when the shared
/// frames can be deleted." The display reports each presented frame via
/// the event service; a release-aware decoder frees its reference copies.
#[test]
fn display_releases_decoder_reference_frames() {
    use infopipes::{ControlEvent, EventCtx, Item, Stage, StageCtx};
    use parking_lot::Mutex;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    /// A decoder wrapper that retains reference frames until released.
    struct RetainingDecoder {
        inner: media::Decoder,
        held: Arc<Mutex<BTreeSet<u64>>>,
    }
    impl Stage for RetainingDecoder {
        fn name(&self) -> &str {
            "retaining-decoder"
        }
        fn accepts(&self) -> typespec::Typespec {
            typespec::Typespec::with_item_type(infopipes::ItemType::of::<media::CompressedFrame>())
        }
        fn transform_spec(
            &self,
            input: &typespec::Typespec,
        ) -> Result<typespec::Typespec, typespec::TypeError> {
            Ok(input
                .clone()
                .map_item(infopipes::ItemType::of::<media::RawFrame>()))
        }
        fn on_event(&mut self, _ctx: &mut EventCtx<'_, '_>, ev: &ControlEvent) {
            if let ControlEvent::FrameRelease(seq) = ev {
                self.held.lock().remove(seq);
            }
        }
    }
    impl infopipes::Consumer for RetainingDecoder {
        fn push(&mut self, ctx: &mut StageCtx<'_, '_>, item: Item) {
            if let Some(f) = item.payload_ref::<media::CompressedFrame>() {
                if f.ftype.is_reference() {
                    self.held.lock().insert(f.seq);
                }
            }
            infopipes::Consumer::push(&mut self.inner, ctx, item);
        }
    }

    /// A display that releases every frame after presenting it.
    struct ReleasingDisplay;
    impl Stage for ReleasingDisplay {
        fn name(&self) -> &str {
            "releasing-display"
        }
    }
    impl infopipes::Consumer for ReleasingDisplay {
        fn push(&mut self, ctx: &mut StageCtx<'_, '_>, item: Item) {
            if let Some(f) = item.payload_ref::<media::RawFrame>() {
                ctx.broadcast(&ControlEvent::FrameRelease(f.seq));
            }
        }
    }

    let kernel = Kernel::new(KernelConfig::virtual_time());
    {
        let pipeline = Pipeline::new(&kernel, "release");
        let source = pipeline.add_producer(
            "mpeg-file",
            MpegFileSource::new(GopStructure::ibbp(), 18, 60.0, 200, 9),
        );
        let held = std::sync::Arc::new(parking_lot::Mutex::new(std::collections::BTreeSet::new()));
        let decode = pipeline.add_consumer(
            "decode",
            RetainingDecoder {
                inner: Decoder::new(GopStructure::ibbp(), DecodeCost::free()),
                held: std::sync::Arc::clone(&held),
            },
        );
        let pump = pipeline.add_pump("pump", ClockedPump::hz(60.0));
        let sink = pipeline.add_consumer("display", ReleasingDisplay);
        let _ = source >> decode >> pump >> sink;
        let running = pipeline.start().expect("plan");
        running.start_flow().expect("start");
        running.wait_quiescent();
        // Every reference frame the decoder retained was released by the
        // display's control events.
        assert!(
            held.lock().is_empty(),
            "unreleased frames: {:?}",
            held.lock()
        );
    }
    kernel.shutdown();
}
