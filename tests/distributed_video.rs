//! The full Fig. 1 pipeline: producer-side dropping under feedback
//! control versus arbitrary in-network dropping, across a congested
//! simulated link — all deterministic under virtual time. Plus the
//! transport-pluggability property: the *same* pipeline composition runs
//! over different [`Transport`] backends by swapping only the transport
//! value.
//!
//! ```text
//! file ─ drop-filter ─ pump ─ fragment ─ marshal ─▶ netpipe
//!   netpipe ─▶ unmarshal ─ defragment ─ decode ─ feedback ─ buffer ─ pump ─ display
//! ```

use feedback::{DropLevelController, FeedbackLoop};
use infopipes::{BufferSpec, ClockedPump, FreePump, Pipeline};
use mbthread::{Kernel, KernelConfig};
use media::{
    DecodeCost, Decoder, Defragmenter, DisplaySink, Fragmenter, GopStructure, MpegFileSource,
    Packet, PriorityDropFilter,
};
use netpipe::{
    Acceptor, InProcTransport, Link, Marshal, PipelineTransportExt, SimConfig, SimTransport,
    TcpTransport, Transport, Unmarshal,
};
use std::time::Duration;

const FPS: f64 = 30.0;
const FRAMES: u64 = 240; // 8 seconds of video
const GOP: GopStructure = GopStructure {
    gop_size: 9,
    b_run: 2,
};

struct Outcome {
    presented: usize,
    decode_ratio: f64,
    net_dropped: u64,
    filter_dropped: u64,
}

/// Runs the distributed pipeline over a congested link; `with_feedback`
/// closes the drop-level loop from the consumer side to the producer-side
/// filter.
fn run_fig1(with_feedback: bool) -> Outcome {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let outcome = {
        // Both "nodes" live in one Pipeline object (the event service spans
        // the distributed pipeline, as in the paper); the only data path
        // between them is the simulated network.
        let pipeline = Pipeline::new(&kernel, "fig1");

        // ---- consumer node ----
        let (inbox, inbox_sender) = pipeline.add_inbox("net-in", BufferSpec::bounded(512));
        let net_pump = pipeline.add_pump("net-pump", FreePump::new());
        let unmarshal = pipeline.add_function(
            "unmarshal",
            Unmarshal::<Packet>::new("unmarshal").at_node("consumer"),
        );
        let defrag = pipeline.add_consumer("defragment", Defragmenter::new());
        let decoder = Decoder::new(GOP, DecodeCost::free());
        let dec_stats = decoder.stats_handle();
        let decode = pipeline.add_consumer("decode", decoder);
        let jitter_buf = pipeline.add_buffer_with(
            "jitter-buf",
            BufferSpec::bounded(32).on_full(typespec::OnFull::DropOldest),
        );
        let out_pump = pipeline.add_pump("out-pump", ClockedPump::hz(FPS));
        let (display, display_stats) = DisplaySink::new();
        let sink = pipeline.add_consumer("display", display);
        if with_feedback {
            // The sensor sits on the *packet* path: packets keep arriving
            // even when every frame is shredded, so the loop never
            // starves. An IBBPBB... GOP at 512-byte MTU yields ~18
            // packets per 9 frames (60 pkt/s at 30 fps); reference-only
            // delivery is ~40 pkt/s (0.67), I-only ~27 pkt/s (0.44).
            let controller = DropLevelController::new(feedback::readings::RECV_RATE_HZ, 60.0)
                .with_fractions([1.0, 0.67, 0.44]);
            let (fb, _fb_stats) = FeedbackLoop::with_rate_sensor(
                "feedback",
                feedback::readings::RECV_RATE_HZ,
                15,
                controller,
            );
            let feedback_node = pipeline.add_consumer("feedback", fb);
            let _ = inbox >> net_pump >> unmarshal >> feedback_node >> defrag >> decode;
        } else {
            // Same chain, but the feedback loop is replaced by a plain
            // pass-through so both conditions have identical stage counts.
            let passthrough = pipeline.add_function(
                "passthrough",
                infopipes::helpers::FnFunction::new("passthrough", |p: Packet| Some(p)),
            );
            let _ = inbox >> net_pump >> unmarshal >> passthrough >> defrag >> decode;
        }
        let _ = decode >> jitter_buf >> out_pump >> sink;

        // ---- the congested network ----
        // At 30 fps with ~1 KB P frames the stream offers roughly 50 KB/s;
        // the link carries well under half of that, so without
        // producer-side dropping the queue overflows and the network
        // drops packets arbitrarily, shredding multi-packet frames.
        let transport = SimTransport::new(
            &kernel,
            SimConfig {
                latency: Duration::from_millis(20),
                jitter: Duration::from_millis(2),
                bandwidth_bps: Some(20_000.0),
                queue_bytes: 4_000,
                seed: 99,
            },
        );
        let acceptor = transport.listen("fig1").expect("listen");
        let link = transport.connect("fig1").expect("connect");
        let consumer_end = acceptor.accept().expect("accept");
        consumer_end
            .bind_receiver(Some(inbox_sender), |_| {})
            .expect("bind receiver");

        // ---- producer node ----
        let source = pipeline.add_producer(
            "mpeg-file",
            MpegFileSource::new(GOP, FRAMES, FPS, 1000, 1234),
        );
        let (drop_filter, drop_stats) = PriorityDropFilter::new();
        let dropf = pipeline.add_function("drop-filter", drop_filter);
        let prod_pump = pipeline.add_pump("prod-pump", ClockedPump::hz(FPS));
        let frag = pipeline.add_consumer("fragment", Fragmenter::new(512));
        let marshal = pipeline.add_function(
            "marshal",
            Marshal::<Packet>::new("marshal").at_node("producer"),
        );
        let send = pipeline.add_net_sink("net-send", &link);
        // Fig. 1's order: "frames are pumped through a filter into a
        // netpipe" — the filter sits downstream of the pump, so a dropped
        // frame reduces the sent rate (upstream of the pump, the pump's
        // pull would skip past drops and densify the stream instead).
        let _ = source >> prod_pump >> dropf >> frag >> marshal >> send;

        let running = pipeline.start().expect("plan");
        // The planner knows where the section boundary leaves the process.
        assert!(
            running.report().to_string().contains("via sim://fig1"),
            "plan must name the transport: {}",
            running.report()
        );
        running.start_flow().expect("start");
        running.wait_quiescent();

        let outcome = Outcome {
            presented: display_stats.lock().count(),
            decode_ratio: dec_stats.lock().decode_ratio(),
            net_dropped: link.stats().dropped,
            filter_dropped: drop_stats.lock().dropped,
        };
        outcome
    };
    kernel.shutdown();
    outcome
}

#[test]
fn feedback_controlled_dropping_beats_arbitrary_network_dropping() {
    let without = run_fig1(false);
    let with = run_fig1(true);

    // Without feedback the network does the dropping: packets vanish
    // mid-frame, reference frames die, and dependent frames become
    // undecodable.
    assert!(
        without.net_dropped > 0,
        "the link must actually be congested: {:?}",
        without.net_dropped
    );
    assert!(
        without.decode_ratio < 0.9,
        "arbitrary dropping should poison decoding, ratio {}",
        without.decode_ratio
    );

    // With feedback, the producer-side filter sheds B frames (and P if
    // needed) *before* the bottleneck: the filter drops instead of the
    // network, and what does arrive decodes.
    assert!(
        with.filter_dropped > 0,
        "the feedback loop must engage the drop filter"
    );
    assert!(
        with.net_dropped < without.net_dropped / 2,
        "controlled dropping should relieve the network: with {} vs without {}",
        with.net_dropped,
        without.net_dropped
    );
    assert!(
        with.decode_ratio > without.decode_ratio + 0.2,
        "decodable fraction must improve substantially: with {:.2} vs without {:.2}",
        with.decode_ratio,
        without.decode_ratio
    );
    assert!(
        with.presented > without.presented,
        "more frames must reach the display: with {} vs without {}",
        with.presented,
        without.presented
    );
}

#[test]
fn uncongested_link_needs_no_feedback() {
    // Sanity: with ample bandwidth the same pipeline delivers everything.
    let kernel = Kernel::new(KernelConfig::virtual_time());
    {
        let pipeline = Pipeline::new(&kernel, "uncongested");
        let (inbox, inbox_sender) = pipeline.add_inbox("net-in", BufferSpec::bounded(512));
        let net_pump = pipeline.add_pump("net-pump", FreePump::new());
        let unmarshal = pipeline.add_function("unmarshal", Unmarshal::<Packet>::new("unmarshal"));
        let defrag = pipeline.add_consumer("defragment", Defragmenter::new());
        let decoder = Decoder::new(GOP, DecodeCost::free());
        let dec_stats = decoder.stats_handle();
        let decode = pipeline.add_consumer("decode", decoder);
        let (display, display_stats) = DisplaySink::new();
        let sink = pipeline.add_consumer("display", display);
        let _ = inbox >> net_pump >> unmarshal >> defrag >> decode >> sink;

        let transport = SimTransport::new(&kernel, SimConfig::default());
        let acceptor = transport.listen("line").expect("listen");
        let link = transport.connect("line").expect("connect");
        acceptor
            .accept()
            .expect("accept")
            .bind_receiver(Some(inbox_sender), |_| {})
            .expect("bind receiver");

        let source = pipeline.add_producer("mpeg-file", MpegFileSource::new(GOP, 60, FPS, 1000, 5));
        let pump = pipeline.add_pump("pump", ClockedPump::hz(120.0));
        let frag = pipeline.add_consumer("fragment", Fragmenter::new(512));
        let marshal = pipeline.add_function("marshal", Marshal::<Packet>::new("marshal"));
        let send = pipeline.add_net_sink("net-send", &link);
        let _ = source >> pump >> frag >> marshal >> send;

        let running = pipeline.start().expect("plan");
        running.start_flow().expect("start");
        running.wait_quiescent();

        assert_eq!(display_stats.lock().count(), 60);
        assert_eq!(link.stats().dropped, 0);
        assert!((dec_stats.lock().decode_ratio() - 1.0).abs() < 1e-9);
    }
    kernel.shutdown();
}

// ---------------------------------------------------------------------
// Transport pluggability: the same composition over different backends
// ---------------------------------------------------------------------

/// Builds and runs the distributed video pipeline over an arbitrary
/// transport. Everything below is identical regardless of backend — only
/// the `transport` value (and the address vocabulary) changes.
fn run_video_over<T: Transport>(
    make_transport: impl FnOnce(&Kernel) -> T,
    addr: &str,
) -> (usize, String) {
    const N: u64 = 60;
    let kernel = Kernel::new(KernelConfig::default());
    let result = {
        let transport = make_transport(&kernel);
        let acceptor = transport.listen(addr).expect("listen");
        let bound_addr = acceptor.local_addr();

        // Consumer side.
        let consumer = Pipeline::new(&kernel, "consumer");
        let (inbox, inbox_sender) = consumer.add_inbox("net-in", BufferSpec::bounded(512));
        let pump = consumer.add_pump("pump", FreePump::new());
        let link = transport.connect(&bound_addr).expect("connect");
        let server_end = acceptor.accept().expect("accept");
        let unmarshal = consumer.add_function(
            "unmarshal",
            Unmarshal::<media::CompressedFrame>::new("unmarshal").at_peer(&server_end.peer()),
        );
        let peer_seen = server_end.peer().to_string();
        let decode = consumer.add_consumer("decode", Decoder::new(GOP, DecodeCost::free()));
        let (display, display_stats) = DisplaySink::new();
        let sink = consumer.add_consumer("display", display);
        let _ = inbox >> pump >> unmarshal >> decode >> sink;
        server_end
            .bind_receiver(Some(inbox_sender), |_| {})
            .expect("bind receiver");
        let running_consumer = consumer.start().expect("consumer plan");
        running_consumer.start_flow().expect("consumer start");

        // Producer side: identical composition for every backend.
        let producer = Pipeline::new(&kernel, "producer");
        let src = producer.add_producer("file", MpegFileSource::new(GOP, N, 200.0, 400, 7));
        let prod_pump = producer.add_pump("pump", ClockedPump::hz(200.0));
        let marshal = producer.add_function(
            "marshal",
            Marshal::<media::CompressedFrame>::new("marshal").at_peer(&link.peer()),
        );
        let send = producer.add_net_sink("net-send", &link);
        let _ = src >> prod_pump >> marshal >> send;
        let running_producer = producer.start().expect("producer plan");
        assert!(
            running_producer
                .report()
                .to_string()
                .contains(&format!("via {}", link.peer())),
            "plan must name the transport boundary: {}",
            running_producer.report()
        );
        running_producer.start_flow().expect("producer start");

        // Real-time kernels on both halves: wait for frames to land.
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while display_stats.lock().count() < N as usize && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let shown = display_stats.lock().count();
        (shown, peer_seen)
    };
    kernel.shutdown();
    result
}

/// §2.4's pluggability promise, as a test: one pipeline, three wires.
#[test]
fn same_pipeline_runs_over_inproc_sim_and_tcp_by_swapping_the_transport() {
    let (shown, peer) = run_video_over(|_| InProcTransport::new(), "video-feed");
    assert_eq!(shown, 60, "inproc transport must deliver every frame");
    assert!(peer.starts_with("inproc://video-feed"), "{peer}");

    let (shown, peer) = run_video_over(
        |kernel| {
            SimTransport::new(
                kernel,
                SimConfig {
                    latency: Duration::from_millis(1),
                    ..SimConfig::default()
                },
            )
        },
        "video-feed",
    );
    assert_eq!(shown, 60, "sim transport must deliver every frame");
    assert!(peer.starts_with("sim://video-feed"), "{peer}");

    let (shown, peer) = run_video_over(|_| TcpTransport::new(), "127.0.0.1:0");
    assert_eq!(shown, 60, "tcp transport must deliver every frame");
    assert!(peer.starts_with("tcp://127.0.0.1"), "{peer}");
}
