//! Thread transparency in action (§3.3, Figs. 4–8): the same
//! defragmenter, written in three different activity styles, produces
//! identical output in both push and pull positions — the middleware
//! allocates coroutines only where the style does not match the mode.

use infopipes::helpers::{ActiveDefrag, CollectSink, IterSource, PullDefrag, PushDefrag};
use infopipes::{FreePump, Pipeline};
use mbthread::{Kernel, KernelConfig};

#[derive(Copy, Clone)]
enum Style {
    Push,
    Pull,
    Active,
}

fn run(style: Style, push_mode: bool) -> (Vec<Vec<u8>>, usize, String) {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let result = {
        let pipeline = Pipeline::new(&kernel, "styles");
        let fragments: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 4]).collect();
        let source = pipeline.add_producer("source", IterSource::new("source", fragments));
        let (sink, out) = CollectSink::<Vec<u8>>::new("sink");
        let sink = pipeline.add_consumer("sink", sink);
        let defrag = match style {
            Style::Push => pipeline.add_consumer("defrag", PushDefrag::new()),
            Style::Pull => pipeline.add_producer("defrag", PullDefrag::new()),
            Style::Active => pipeline.add_active("defrag", ActiveDefrag::new()),
        };
        let pump = pipeline.add_pump("pump", FreePump::new());
        if push_mode {
            let _ = source >> pump >> defrag >> sink;
        } else {
            let _ = source >> defrag >> pump >> sink;
        }
        let running = pipeline.start().expect("composition is valid");
        let threads = running.report().total_threads();
        let placement = running.report().sections[0]
            .stages
            .iter()
            .find(|p| p.name == "defrag")
            .map(|p| format!("{} {}", p.mode, p.exec))
            .unwrap_or_default();
        running.start_flow().expect("start");
        running.wait_quiescent();
        let collected = out.lock().clone();
        (collected, threads, placement)
    };
    kernel.shutdown();
    result
}

fn main() {
    println!("the paper's defragmenter in every activity style and position\n");
    println!(
        "{:<18} {:<12} {:<18} {:>8} {:>8}",
        "implementation", "position", "placement", "threads", "output"
    );
    let mut reference: Option<Vec<Vec<u8>>> = None;
    for (label, style) in [
        ("consumer (push)", Style::Push),
        ("producer (pull)", Style::Pull),
        ("active object", Style::Active),
    ] {
        for (pos, push_mode) in [("push mode", true), ("pull mode", false)] {
            let (out, threads, placement) = run(style, push_mode);
            println!(
                "{label:<18} {pos:<12} {placement:<18} {threads:>8} {:>8}",
                out.len()
            );
            match &reference {
                None => reference = Some(out),
                Some(want) => assert_eq!(&out, want, "all styles must agree"),
            }
        }
    }
    println!(
        "\nevery implementation produced byte-identical output; the middleware\n\
         added a coroutine only where the style did not match the position\n\
         (Figs. 4, 6, 8: the external activity is the same in all cases)."
    );
}
