//! A local video player with the consumer-side machinery of Fig. 1: a
//! decoder with realistic (bursty) decode costs, a jitter buffer, and a
//! clocked output pump — plus the paper's resizer reacting to
//! window-resize control events.
//!
//! Prints presentation jitter with and without the jitter buffer.
//!
//! Run with `cargo run --example video_player`.

use infopipes::{BufferSpec, ClockedPump, ControlEvent, FreePump, Pipeline};
use mbthread::{Kernel, KernelConfig};
use media::{DecodeCost, Decoder, DisplaySink, GopStructure, MpegFileSource, Resizer};
use std::time::Duration;

const FRAMES: u64 = 120;
const FPS: f64 = 30.0;

fn play(with_jitter_buffer: bool) -> (usize, f64) {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let result = {
        let pipeline = Pipeline::new(&kernel, "player");
        let source = pipeline.add_producer(
            "mpeg-file",
            MpegFileSource::new(GopStructure::ibbp(), FRAMES, FPS, 4000, 7),
        );
        // Decode cost scales with frame size: I frames take ~8x longer
        // than B frames, which is exactly the burstiness a jitter buffer
        // exists to absorb.
        let decode = pipeline.add_consumer(
            "decode",
            Decoder::new(
                GopStructure::ibbp(),
                DecodeCost {
                    base: Duration::from_millis(2),
                    per_kilobyte: Duration::from_millis(4),
                },
            ),
        );
        let (resizer, _resizes) = Resizer::new(640, 480);
        let resize = pipeline.add_function("resize", resizer);
        let (display, stats) = DisplaySink::new();
        let sink = pipeline.add_consumer("display", display);

        if with_jitter_buffer {
            let pump_in = pipeline.add_pump("decode-pump", FreePump::new());
            let buf = pipeline.add_buffer_with("jitter-buf", BufferSpec::bounded(16));
            let pump_out = pipeline.add_pump("display-pump", ClockedPump::hz(FPS));
            let _ = source >> decode >> pump_in >> buf >> pump_out >> resize >> sink;
        } else {
            let pump = pipeline.add_pump("pump", FreePump::new());
            let _ = source >> decode >> pump >> resize >> sink;
        }

        let running = pipeline.start().expect("composition is valid");
        running.start_flow().expect("start");
        // A mid-playback window resize reaches the resizer via the event
        // service even while threads are busy with data.
        running
            .send_event(ControlEvent::WindowResize {
                width: 1280,
                height: 720,
            })
            .ok();
        running.wait_quiescent();
        let s = stats.lock();
        (s.count(), s.timing.jitter_us().unwrap_or(0.0))
    };
    kernel.shutdown();
    result
}

fn main() {
    let (n_raw, jitter_raw) = play(false);
    let (n_buf, jitter_buf) = play(true);
    println!("local video player, {FRAMES} frames at {FPS} fps, bursty decode costs");
    println!("  without jitter buffer: {n_raw} frames, presentation jitter {jitter_raw:>8.1} us");
    println!("  with jitter buffer   : {n_buf} frames, presentation jitter {jitter_buf:>8.1} us");
    assert!(jitter_buf < jitter_raw);
    println!(
        "the buffer + clocked pump removed {:.0}% of the jitter",
        (1.0 - jitter_buf / jitter_raw.max(1e-9)) * 100.0
    );
}
