//! The full distributed pipeline of Fig. 1, over a congested simulated
//! network: feedback-controlled producer-side dropping versus arbitrary
//! in-network dropping.
//!
//! ```text
//! file ─ pump ─ drop-filter ─ fragment ─ marshal ─▶ netpipe ─▶
//!   unmarshal ─ feedback-sensor ─ defragment ─ decode ─ buffer ─ pump ─ display
//! ```
//!
//! Run with `cargo run --example distributed_video`.

use feedback::{DropLevelController, FeedbackLoop};
use infopipes::{BufferSpec, ClockedPump, FreePump, OnFull, Pipeline};
use mbthread::{Kernel, KernelConfig};
use media::{
    DecodeCost, Decoder, Defragmenter, DisplaySink, Fragmenter, GopStructure, MpegFileSource,
    Packet, PriorityDropFilter,
};
use netpipe::{
    Acceptor, Link, Marshal, PipelineTransportExt, SimConfig, SimTransport, Transport, Unmarshal,
};
use std::time::Duration;

const FPS: f64 = 30.0;
const FRAMES: u64 = 240;
const GOP: GopStructure = GopStructure {
    gop_size: 9,
    b_run: 2,
};

struct Outcome {
    presented: usize,
    decode_ratio: f64,
    net_dropped: u64,
    filter_dropped: u64,
}

fn run(with_feedback: bool) -> Outcome {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let outcome = {
        let pipeline = Pipeline::new(&kernel, "fig1");

        // Consumer node.
        let (inbox, inbox_sender) = pipeline.add_inbox("net-in", BufferSpec::bounded(512));
        let net_pump = pipeline.add_pump("net-pump", FreePump::new());
        let unmarshal = pipeline.add_function("unmarshal", Unmarshal::<Packet>::new("unmarshal"));
        let defrag = pipeline.add_consumer("defragment", Defragmenter::new());
        let decoder = Decoder::new(GOP, DecodeCost::free());
        let dec_stats = decoder.stats_handle();
        let decode = pipeline.add_consumer("decode", decoder);
        let jitter_buf = pipeline.add_buffer_with(
            "jitter-buf",
            BufferSpec::bounded(32).on_full(OnFull::DropOldest),
        );
        let out_pump = pipeline.add_pump("out-pump", ClockedPump::hz(FPS));
        let (display, display_stats) = DisplaySink::new();
        let sink = pipeline.add_consumer("display", display);
        if with_feedback {
            let controller = DropLevelController::new(feedback::readings::RECV_RATE_HZ, 60.0)
                .with_fractions([1.0, 0.67, 0.44]);
            let (fb, _) = FeedbackLoop::with_rate_sensor(
                "feedback",
                feedback::readings::RECV_RATE_HZ,
                15,
                controller,
            );
            let fb = pipeline.add_consumer("feedback", fb);
            let _ = inbox >> net_pump >> unmarshal >> fb >> defrag >> decode;
        } else {
            let _ = inbox >> net_pump >> unmarshal >> defrag >> decode;
        }
        let _ = decode >> jitter_buf >> out_pump >> sink;

        // The congested link: ~40% of the offered bandwidth.
        let transport = SimTransport::new(
            &kernel,
            SimConfig {
                latency: Duration::from_millis(20),
                jitter: Duration::from_millis(2),
                bandwidth_bps: Some(20_000.0),
                queue_bytes: 4_000,
                seed: 99,
            },
        );
        let acceptor = transport.listen("fig1").expect("listen");
        let link = transport.connect("fig1").expect("connect");
        let consumer_end = acceptor.accept().expect("accept");
        consumer_end
            .bind_receiver(Some(inbox_sender), |_| {})
            .expect("bind receiver");

        // Producer node: "frames are pumped through a filter into a
        // netpipe" (Fig. 1).
        let source = pipeline.add_producer(
            "mpeg-file",
            MpegFileSource::new(GOP, FRAMES, FPS, 1000, 1234),
        );
        let prod_pump = pipeline.add_pump("prod-pump", ClockedPump::hz(FPS));
        let (drop_filter, drop_stats) = PriorityDropFilter::new();
        let dropf = pipeline.add_function("drop-filter", drop_filter);
        let frag = pipeline.add_consumer("fragment", Fragmenter::new(512));
        let marshal = pipeline.add_function("marshal", Marshal::<Packet>::new("marshal"));
        let send = pipeline.add_net_sink("net-send", &link);
        let _ = source >> prod_pump >> dropf >> frag >> marshal >> send;

        let running = pipeline.start().expect("composition is valid");
        running.start_flow().expect("start");
        running.wait_quiescent();

        let outcome = Outcome {
            presented: display_stats.lock().count(),
            decode_ratio: dec_stats.lock().decode_ratio(),
            net_dropped: link.stats().dropped,
            filter_dropped: drop_stats.lock().dropped,
        };
        outcome
    };
    kernel.shutdown();
    outcome
}

fn main() {
    println!("Fig. 1 distributed video over a congested simulated link");
    println!("({FRAMES} frames at {FPS} fps; link carries ~40% of the offered rate)\n");
    println!(
        "{:<22} {:>10} {:>14} {:>12} {:>14}",
        "condition", "presented", "decode ratio", "net drops", "filter drops"
    );
    for (label, with_feedback) in [
        ("arbitrary (network)", false),
        ("controlled (feedback)", true),
    ] {
        let o = run(with_feedback);
        println!(
            "{:<22} {:>10} {:>13.0}% {:>12} {:>14}",
            label,
            o.presented,
            o.decode_ratio * 100.0,
            o.net_dropped,
            o.filter_dropped
        );
    }
    println!(
        "\ncontrolled dropping sheds B/P frames before the bottleneck, so what\n\
         arrives is decodable; arbitrary dropping shreds reference frames and\n\
         poisons entire groups of pictures."
    );
}
