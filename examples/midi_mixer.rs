//! The MIDI mixer of §4's motivation: many tiny items through a merge,
//! where per-item thread overhead dominates. Shows the kernel-level cost
//! (context switches and messages per event) of the thread-transparent
//! allocation versus forcing a coroutine per component.

use infopipes::helpers::ActiveRelay;
use infopipes::{FreePump, Pipeline};
use mbthread::{Kernel, KernelConfig};
use media::{MidiSink, MidiSource};

const EVENTS_PER_CHANNEL: u64 = 500;

/// Runs a 2-channel mixer; `active_relays` inserts an active-object relay
/// in each channel (forcing one coroutine per channel), while the default
/// chain is all direct calls.
fn run(active_relays: bool) -> (usize, u64, u64, usize) {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let result = {
        let pipeline = Pipeline::new(&kernel, "mixer");
        let ch0 = pipeline.add_producer("ch0", MidiSource::new(0, EVENTS_PER_CHANNEL, 100));
        let ch1 = pipeline.add_producer("ch1", MidiSource::new(1, EVENTS_PER_CHANNEL, 100));
        let p0 = pipeline.add_pump("p0", FreePump::new());
        let p1 = pipeline.add_pump("p1", FreePump::new());
        let mix = pipeline.add_buffer("mix", 128);
        let pout = pipeline.add_pump("pout", FreePump::new());
        let (sink, out) = MidiSink::new();
        let sink = pipeline.add_consumer("sink", sink);
        if active_relays {
            let r0 = pipeline.add_active("relay0", ActiveRelay::new("relay0"));
            let r1 = pipeline.add_active("relay1", ActiveRelay::new("relay1"));
            let _ = ch0 >> r0 >> p0 >> mix;
            let _ = ch1 >> r1 >> p1 >> mix;
        } else {
            let _ = ch0 >> p0 >> mix;
            let _ = ch1 >> p1 >> mix;
        }
        let _ = mix >> pout >> sink;

        let running = pipeline.start().expect("composition is valid");
        let threads = running.report().total_threads();
        let before = kernel.stats();
        running.start_flow().expect("start");
        running.wait_quiescent();
        let delta = kernel.stats().delta_since(&before);
        let events = out.lock().len();
        (events, delta.context_switches, delta.messages_sent, threads)
    };
    kernel.shutdown();
    result
}

fn main() {
    println!("MIDI mixer: 2 channels x {EVENTS_PER_CHANNEL} tiny events through a merge buffer\n");
    println!(
        "{:<28} {:>8} {:>10} {:>12} {:>16}",
        "configuration", "threads", "events", "ctx switches", "kernel messages"
    );
    for (label, active) in [
        ("thread-transparent (direct)", false),
        ("coroutine per channel", true),
    ] {
        let (events, switches, messages, threads) = run(active);
        println!("{label:<28} {threads:>8} {events:>10} {switches:>12} {messages:>16}");
        assert_eq!(events as u64, 2 * EVENTS_PER_CHANNEL);
    }
    println!(
        "\nthe planner uses direct function calls wherever styles allow, so the\n\
         same pipeline costs far fewer context switches — the paper's argument\n\
         for introducing threads and coroutines only when necessary (§4)."
    );
}
