//! Quickstart: the paper's §4 video-player composition.
//!
//! ```text
//! mpeg_file source("test.mpg");
//! mpeg_decoder decode;
//! clocked_pump pump(30);   // 30 Hz
//! video_display sink;
//! source >> decode >> pump >> sink;
//! send_event(START);
//! ```
//!
//! Run with `cargo run --example quickstart`.

use infopipes::Pipeline;
use mbthread::{Kernel, KernelConfig};
use media::{DecodeCost, Decoder, DisplaySink, GopStructure, MpegFileSource};

fn main() {
    // A virtual-time kernel: the 30 Hz pipeline runs to completion
    // instantly and deterministically. Use `KernelConfig::default()` for
    // wall-clock playback.
    let kernel = Kernel::new(KernelConfig::virtual_time());

    let pipeline = Pipeline::new(&kernel, "player");
    let source = pipeline.add_producer(
        "mpeg-file",
        MpegFileSource::new(GopStructure::ibbp(), 90, 30.0, 1000, 42),
    );
    let decode = pipeline.add_consumer(
        "mpeg-decoder",
        Decoder::new(GopStructure::ibbp(), DecodeCost::free()),
    );
    let pump = pipeline.add_pump("pump", infopipes::ClockedPump::hz(30.0));
    let (display, stats) = DisplaySink::new();
    let sink = pipeline.add_consumer("video-display", display);

    // The composition operator type-checks each connection and panics on
    // incompatible components, like the paper's C++ `>>`.
    let _ = source >> decode >> pump >> sink;

    let running = pipeline.start().expect("composition is valid");
    println!("thread-transparent plan:\n{}", running.report());

    running.start_flow().expect("start");
    running.wait_quiescent();

    let s = stats.lock();
    println!(
        "played {} frames; presentation jitter {:.1} us",
        s.count(),
        s.timing.jitter_us().unwrap_or(0.0)
    );
    assert_eq!(s.count(), 90);
    kernel.shutdown();
}
