//! Facade crate for the whole Infopipes system: re-exports every layer so
//! the root-level integration tests and examples (and downstream users)
//! need a single dependency.
//!
//! Layer map:
//!
//! * [`mbthread`] — message-based user-level threads (§4 substrate)
//! * [`typespec`] — flow typing and QoS algebra (§2.3)
//! * [`infopipes`] — pipelines, planner, runtime (§2–3)
//! * [`media`] — video/audio/MIDI components for the paper's workloads
//! * [`feedback`] — feedback loops and controllers (Fig. 1)
//! * [`netpipe`] — netpipes: marshalling, transports, remote factories (§2.4)

#![warn(missing_docs)]

pub use feedback;
pub use infopipes;
pub use mbthread;
pub use media;
pub use netpipe;
pub use typespec;
