//! Determinism of the virtual clock: the same program produces the same
//! trace, timers and messages interleave identically, and counters match
//! run for run.

use mbthread::{Ctx, Envelope, Flow, Kernel, KernelConfig, Message, Priority, SpawnOptions, Tag};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const TICK: Tag = Tag(1);
const DATA: Tag = Tag(2);
const GO: Tag = Tag(3);

type Trace = Arc<Mutex<Vec<(String, u64)>>>;

/// A small program: two tickers at co-prime periods and a relay that
/// forwards with per-message work, all logging (who, virtual-us).
///
/// Construction follows the same pattern as the pipeline layer: nothing
/// sets a timer until a single in-kernel `GO` fans out to every ticker.
/// While no timer exists the virtual clock cannot advance, so the whole
/// schedule is anchored at t=0 no matter how slowly the external main
/// thread performs the spawns — timers set from `on_start` would race
/// the virtual clock against the spawning thread.
fn run_program() -> (Vec<(String, u64)>, mbthread::KernelStats) {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let trace: Trace = Arc::new(Mutex::new(Vec::new()));

    struct Ticker {
        name: &'static str,
        period: Duration,
        remaining: u32,
        relay: mbthread::ThreadId,
        trace: Trace,
    }
    impl mbthread::CodeFn for Ticker {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, env: Envelope) -> Flow {
            if env.tag() == GO {
                let at = ctx.now() + self.period;
                let _ = ctx.set_timer(at, Message::signal(TICK), None);
                return Flow::Continue;
            }
            self.trace
                .lock()
                .unwrap()
                .push((self.name.to_string(), ctx.now().as_micros()));
            let _ = ctx.send(self.relay, Message::new(DATA, self.name.to_string()));
            self.remaining -= 1;
            if self.remaining == 0 {
                return Flow::Stop;
            }
            let at = ctx.now() + self.period;
            let _ = ctx.set_timer(at, Message::signal(TICK), None);
            Flow::Continue
        }
    }

    let trace_relay = Arc::clone(&trace);
    let relay = kernel
        .spawn(
            SpawnOptions::new("relay").priority(Priority::HIGH),
            move |ctx: &mut Ctx<'_>, env: Envelope| {
                let from = env.expect_body::<String>();
                // Scheduling-visible work.
                let _ = ctx.yield_now();
                trace_relay
                    .lock()
                    .unwrap()
                    .push((format!("relay<-{from}"), ctx.now().as_micros()));
                Flow::Continue
            },
        )
        .unwrap();

    let mut tickers = Vec::new();
    for (name, period_us, count) in [("a", 700u64, 20u32), ("b", 1100, 13)] {
        let id = kernel
            .spawn(
                name,
                Ticker {
                    name: if name == "a" { "a" } else { "b" },
                    period: Duration::from_micros(period_us),
                    remaining: count,
                    relay,
                    trace: Arc::clone(&trace),
                },
            )
            .unwrap();
        tickers.push(id);
    }

    // Single in-kernel starter: fans GO out to every ticker in one
    // message-processing step, atomically with respect to virtual time.
    let starter = kernel
        .spawn("starter", move |ctx: &mut Ctx<'_>, _env: Envelope| {
            for &t in &tickers {
                let _ = ctx.send(t, Message::signal(GO));
            }
            Flow::Stop
        })
        .unwrap();
    let port = kernel.external("main");
    port.send(starter, Message::signal(GO)).unwrap();

    kernel.wait_quiescent();
    let stats = kernel.stats();
    kernel.shutdown();
    let t = trace.lock().unwrap().clone();
    (t, stats)
}

#[test]
fn virtual_time_traces_are_reproducible() {
    let (t1, s1) = run_program();
    let (t2, s2) = run_program();
    assert_eq!(t1, t2, "traces must be identical run to run");
    assert_eq!(s1.messages_sent, s2.messages_sent);
    assert_eq!(s1.timer_fires, s2.timer_fires);
    // 20 + 13 ticks and one relay entry each.
    assert_eq!(t1.len(), 33 * 2);
    // Virtual timestamps follow the periods exactly.
    let a_times: Vec<u64> = t1
        .iter()
        .filter(|(n, _)| n == "a")
        .map(|(_, at)| *at)
        .collect();
    assert_eq!(a_times[0], 700);
    assert!(a_times.windows(2).all(|w| w[1] - w[0] == 700));
}

#[test]
fn trace_is_ordered_by_virtual_time() {
    let (t, _) = run_program();
    assert!(
        t.windows(2).all(|w| w[0].1 <= w[1].1),
        "events must be logged in nondecreasing virtual time"
    );
}

/// The kernel-level construction barrier: timers armed directly from
/// `on_start` — the racy pattern the GO fan-out above exists to avoid —
/// are safe when the clock is frozen during construction, however slowly
/// the external thread spawns.
#[test]
fn freeze_clock_closes_the_construction_race() {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let fires: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    struct EagerTimer {
        fires: Arc<Mutex<Vec<u64>>>,
    }
    impl mbthread::CodeFn for EagerTimer {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            // Armed at construction time, not behind a GO barrier.
            let at = ctx.now() + Duration::from_millis(1);
            let _ = ctx.set_timer(at, Message::signal(TICK), None);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _env: Envelope) -> Flow {
            self.fires.lock().unwrap().push(ctx.now().as_micros());
            Flow::Stop
        }
    }

    let hold = kernel.freeze_clock();
    kernel
        .spawn(
            "eager-a",
            EagerTimer {
                fires: Arc::clone(&fires),
            },
        )
        .unwrap();
    // A deliberately slow external construction phase: without the
    // barrier the kernel goes idle here and the clock jumps to the
    // first deadline before the second thread even exists.
    std::thread::sleep(Duration::from_millis(40));
    assert_eq!(
        kernel.now().as_micros(),
        0,
        "a frozen virtual clock must not advance while construction stalls"
    );
    kernel
        .spawn(
            "eager-b",
            EagerTimer {
                fires: Arc::clone(&fires),
            },
        )
        .unwrap();
    hold.release();

    kernel.wait_quiescent();
    kernel.shutdown();
    assert_eq!(
        *fires.lock().unwrap(),
        vec![1000, 1000],
        "both timers must fire at the same virtual instant, anchored at t=0"
    );
}

/// Holds nest, and dropping a hold releases it: the clock stays frozen
/// until the *last* hold is gone.
#[test]
fn clock_holds_nest_and_release_on_drop() {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let fires: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    struct OneShot {
        fires: Arc<Mutex<Vec<u64>>>,
    }
    impl mbthread::CodeFn for OneShot {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let at = ctx.now() + Duration::from_millis(2);
            let _ = ctx.set_timer(at, Message::signal(TICK), None);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _env: Envelope) -> Flow {
            self.fires.lock().unwrap().push(ctx.now().as_micros());
            Flow::Stop
        }
    }

    let outer = kernel.freeze_clock();
    let inner = kernel.freeze_clock();
    kernel
        .spawn(
            "one-shot",
            OneShot {
                fires: Arc::clone(&fires),
            },
        )
        .unwrap();
    drop(inner); // implicit release
    std::thread::sleep(Duration::from_millis(20));
    assert_eq!(
        kernel.now().as_micros(),
        0,
        "the outer hold must still pin the clock after the inner drops"
    );
    outer.release();
    kernel.wait_quiescent();
    kernel.shutdown();
    assert_eq!(*fires.lock().unwrap(), vec![2000]);
}

/// `ExternalPort::send_at` — the replay kick-off primitive — delivers
/// at exactly the virtual deadline, even when the deadline is scheduled
/// from outside the kernel before the clock starts moving, and refuses
/// unknown targets.
#[test]
fn external_send_at_delivers_at_the_virtual_deadline() {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let fires: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    struct Recorder {
        fires: Arc<Mutex<Vec<u64>>>,
        remaining: u32,
    }
    impl mbthread::CodeFn for Recorder {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _env: Envelope) -> Flow {
            self.fires.lock().unwrap().push(ctx.now().as_micros());
            self.remaining -= 1;
            if self.remaining == 0 {
                Flow::Stop
            } else {
                Flow::Continue
            }
        }
    }

    // Freeze across kick-off so the clock cannot outrun the schedule —
    // the same construction pattern the trace replayer uses.
    let hold = kernel.freeze_clock();
    let thread = kernel
        .spawn(
            "recorder",
            Recorder {
                fires: Arc::clone(&fires),
                remaining: 3,
            },
        )
        .unwrap();
    let port = kernel.external("driver");
    // Scheduled out of order; delivery must follow the deadlines.
    for ms in [30u64, 10, 20] {
        port.send_at(
            thread,
            mbthread::Time::from_nanos(ms * 1_000_000),
            Message::signal(TICK),
        )
        .unwrap();
    }
    assert!(
        port.send_at(
            mbthread::ThreadId::from_raw(9999),
            mbthread::Time::from_nanos(1),
            Message::signal(TICK),
        )
        .is_err(),
        "send_at to an unknown thread must be refused"
    );
    drop(hold);
    kernel.wait_quiescent();
    kernel.shutdown();
    assert_eq!(
        *fires.lock().unwrap(),
        vec![10_000, 20_000, 30_000],
        "deliveries land at their virtual deadlines, in deadline order"
    );
}
