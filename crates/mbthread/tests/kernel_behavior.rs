//! Behavioural tests for the message-based thread kernel: scheduling,
//! synchronous sends, timers, virtual time, priority inheritance, and
//! preemption.

use mbthread::{
    ClockMode, Constraint, Ctx, Envelope, Flow, Kernel, KernelConfig, KernelError, MatchSpec,
    Message, Priority, SpawnOptions, Tag, Time,
};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const DATA: Tag = Tag(1);
const CTL: Tag = Tag(2);
const TICK: Tag = Tag(3);

type Log = Arc<Mutex<Vec<String>>>;

fn log(l: &Log, s: impl Into<String>) {
    l.lock().unwrap().push(s.into());
}

fn entries(l: &Log) -> Vec<String> {
    l.lock().unwrap().clone()
}

#[test]
fn sync_ping_pong_round_trips() {
    let kernel = Kernel::new(KernelConfig::default());
    let server = kernel
        .spawn("server", |ctx: &mut Ctx<'_>, env: Envelope| {
            let n: u64 = *env.message().body_ref::<u64>().unwrap();
            ctx.reply(&env, Message::new(DATA, n * 2)).unwrap();
            Flow::Continue
        })
        .unwrap();
    let port = kernel.external("test");
    for i in 0..100u64 {
        let reply = port.send_sync(server, Message::new(DATA, i)).unwrap();
        assert_eq!(*reply.message().body_ref::<u64>().unwrap(), i * 2);
    }
    kernel.shutdown();
}

#[test]
fn async_messages_are_fifo_per_sender() {
    let kernel = Kernel::new(KernelConfig::default());
    let seen = Arc::new(Mutex::new(Vec::new()));
    let seen2 = Arc::clone(&seen);
    let sink = kernel
        .spawn("sink", move |_: &mut Ctx<'_>, env: Envelope| {
            seen2
                .lock()
                .unwrap()
                .push(*env.message().body_ref::<u64>().unwrap());
            Flow::Continue
        })
        .unwrap();
    let port = kernel.external("test");
    for i in 0..50u64 {
        port.send(sink, Message::new(DATA, i)).unwrap();
    }
    kernel.wait_quiescent();
    assert_eq!(*seen.lock().unwrap(), (0..50).collect::<Vec<u64>>());
    kernel.shutdown();
}

#[test]
fn higher_priority_thread_is_scheduled_first() {
    // Queue work for a low- and a high-priority thread while the kernel is
    // busy, then observe which one runs first.
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let order: Log = Arc::new(Mutex::new(Vec::new()));

    let mk = |name: &'static str, order: Log| {
        move |_: &mut Ctx<'_>, _env: Envelope| {
            log(&order, name);
            Flow::Continue
        }
    };
    let low = kernel
        .spawn(
            SpawnOptions::new("low").priority(Priority::LOW),
            mk("low", Arc::clone(&order)),
        )
        .unwrap();
    let high = kernel
        .spawn(
            SpawnOptions::new("high").priority(Priority::HIGH),
            mk("high", Arc::clone(&order)),
        )
        .unwrap();
    kernel.wait_quiescent();

    // A "gate" thread holds the CPU while both messages are enqueued, so
    // the scheduler has to choose between low and high when it blocks.
    let order2 = Arc::clone(&order);
    let gate = kernel
        .spawn("gate", move |ctx: &mut Ctx<'_>, _env: Envelope| {
            ctx.send_with(low, Message::signal(DATA), None).unwrap();
            ctx.send_with(high, Message::signal(DATA), None).unwrap();
            log(&order2, "gate-done");
            Flow::Continue
        })
        .unwrap();
    let port = kernel.external("test");
    port.send(gate, Message::signal(DATA)).unwrap();
    kernel.wait_quiescent();

    let seen = entries(&order);
    // Waking `high` preempts the NORMAL-priority gate immediately; `low`
    // runs only after both have finished.
    assert_eq!(seen, vec!["high", "gate-done", "low"]);
    kernel.shutdown();
}

#[test]
fn preemption_hands_cpu_to_more_urgent_thread_mid_turn() {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let order: Log = Arc::new(Mutex::new(Vec::new()));

    let order_hi = Arc::clone(&order);
    let urgent = kernel
        .spawn(
            SpawnOptions::new("urgent").priority(Priority::CONTROL),
            move |_: &mut Ctx<'_>, _env: Envelope| {
                log(&order_hi, "urgent-ran");
                Flow::Continue
            },
        )
        .unwrap();
    kernel.wait_quiescent();

    let order_lo = Arc::clone(&order);
    let sender = kernel
        .spawn("sender", move |ctx: &mut Ctx<'_>, _env: Envelope| {
            log(&order_lo, "before-send");
            // Waking a CONTROL-priority thread preempts us immediately.
            ctx.send_with(urgent, Message::signal(DATA), None).unwrap();
            log(&order_lo, "after-send");
            Flow::Continue
        })
        .unwrap();
    let port = kernel.external("test");
    port.send(sender, Message::signal(DATA)).unwrap();
    kernel.wait_quiescent();

    assert_eq!(
        entries(&order),
        vec!["before-send", "urgent-ran", "after-send"]
    );
    kernel.shutdown();
}

#[test]
fn non_preemptive_kernel_defers_urgent_thread() {
    let mut cfg = KernelConfig::virtual_time();
    cfg.preemptive = false;
    let kernel = Kernel::new(cfg);
    let order: Log = Arc::new(Mutex::new(Vec::new()));

    let order_hi = Arc::clone(&order);
    let urgent = kernel
        .spawn(
            SpawnOptions::new("urgent").priority(Priority::CONTROL),
            move |_: &mut Ctx<'_>, _env: Envelope| {
                log(&order_hi, "urgent-ran");
                Flow::Continue
            },
        )
        .unwrap();
    kernel.wait_quiescent();

    let order_lo = Arc::clone(&order);
    let sender = kernel
        .spawn("sender", move |ctx: &mut Ctx<'_>, _env: Envelope| {
            ctx.send_with(urgent, Message::signal(DATA), None).unwrap();
            log(&order_lo, "after-send");
            Flow::Continue
        })
        .unwrap();
    let port = kernel.external("test");
    port.send(sender, Message::signal(DATA)).unwrap();
    kernel.wait_quiescent();

    assert_eq!(entries(&order), vec!["after-send", "urgent-ran"]);
    kernel.shutdown();
}

#[test]
fn virtual_clock_is_deterministic_for_timers() {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let stamps = Arc::new(Mutex::new(Vec::new()));
    let stamps2 = Arc::clone(&stamps);

    struct Ticker {
        period: Duration,
        remaining: u32,
        stamps: Arc<Mutex<Vec<Time>>>,
    }
    impl mbthread::CodeFn for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let at = ctx.now() + self.period;
            let _ = ctx.set_timer(at, Message::signal(TICK), None);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _env: Envelope) -> Flow {
            self.stamps.lock().unwrap().push(ctx.now());
            self.remaining -= 1;
            if self.remaining == 0 {
                return Flow::Stop;
            }
            let at = ctx.now() + self.period;
            let _ = ctx.set_timer(at, Message::signal(TICK), None);
            Flow::Continue
        }
    }

    kernel
        .spawn(
            "ticker",
            Ticker {
                period: Duration::from_millis(10),
                remaining: 5,
                stamps: stamps2,
            },
        )
        .unwrap();
    kernel.wait_quiescent();

    let got: Vec<u64> = stamps
        .lock()
        .unwrap()
        .iter()
        .map(|t| t.as_millis())
        .collect();
    assert_eq!(got, vec![10, 20, 30, 40, 50]);
    kernel.shutdown();
}

#[test]
fn sleep_until_orders_wakeups_by_deadline() {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let order: Log = Arc::new(Mutex::new(Vec::new()));
    let mut ids = Vec::new();
    for (name, delay_ms) in [("c", 30u64), ("a", 10), ("b", 20)] {
        let order = Arc::clone(&order);
        let id = kernel
            .spawn(name, move |ctx: &mut Ctx<'_>, _env: Envelope| {
                ctx.sleep(Duration::from_millis(delay_ms)).unwrap();
                log(&order, name);
                Flow::Stop
            })
            .unwrap();
        ids.push(id);
    }
    let port = kernel.external("test");
    // Kick all three threads.
    for id in ids {
        port.send(id, Message::signal(DATA)).unwrap();
    }
    kernel.wait_quiescent();
    assert_eq!(entries(&order), vec!["a", "b", "c"]);
    kernel.shutdown();
}

#[test]
fn wait_or_delivers_control_while_blocked_for_reply() {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let order: Log = Arc::new(Mutex::new(Vec::new()));

    // The "slow" peer replies only after it receives a NUDGE message.
    let slow = kernel
        .spawn("slow", |ctx: &mut Ctx<'_>, env: Envelope| {
            if env.wants_reply() {
                // Hold the request until nudged.
                let nudge = ctx.receive_matching(&MatchSpec::Tags(vec![TICK])).unwrap();
                drop(nudge);
                ctx.reply(&env, Message::signal(DATA)).unwrap();
            }
            Flow::Continue
        })
        .unwrap();

    let order2 = Arc::clone(&order);
    let client = kernel
        .spawn("client", move |ctx: &mut Ctx<'_>, _env: Envelope| {
            let pending = ctx.begin_sync(slow, Message::signal(DATA)).unwrap();
            let mut pending = Some(pending);
            loop {
                match ctx.wait_or(pending.take().unwrap(), &[CTL]).unwrap() {
                    mbthread::SyncOutcome::Reply(_) => {
                        log(&order2, "reply");
                        break;
                    }
                    mbthread::SyncOutcome::Interrupted(p, ctl) => {
                        assert_eq!(ctl.tag(), CTL);
                        log(&order2, "control");
                        pending = Some(p);
                    }
                }
            }
            Flow::Stop
        })
        .unwrap();

    let port = kernel.external("test");
    port.send(client, Message::signal(DATA)).unwrap();
    // Let the client block on its sync send, then deliver a control event,
    // then let the peer reply.
    std::thread::sleep(Duration::from_millis(20));
    port.send(client, Message::signal(CTL)).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    port.send(slow, Message::signal(TICK)).unwrap();
    kernel.wait_quiescent();

    assert_eq!(entries(&order), vec!["control", "reply"]);
    kernel.shutdown();
}

#[test]
fn receive_matching_leaves_other_messages_queued() {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let order: Log = Arc::new(Mutex::new(Vec::new()));
    let order2 = Arc::clone(&order);
    let t = kernel
        .spawn("selective", move |ctx: &mut Ctx<'_>, env: Envelope| {
            // First delivery: wait specifically for a CTL message even
            // though DATA messages arrive first.
            assert_eq!(env.tag(), Tag(0));
            let ctl = ctx.receive_matching(&MatchSpec::Tags(vec![CTL])).unwrap();
            log(&order2, format!("got-{}", ctl.tag().0));
            // The earlier DATA messages are still queued, in order.
            let d1 = ctx.receive().unwrap();
            let d2 = ctx.receive().unwrap();
            log(&order2, format!("data-{}", d1.expect_body::<u64>()));
            log(&order2, format!("data-{}", d2.expect_body::<u64>()));
            Flow::Stop
        })
        .unwrap();
    let port = kernel.external("test");
    port.send(t, Message::signal(Tag(0))).unwrap();
    port.send(t, Message::new(DATA, 1u64)).unwrap();
    port.send(t, Message::new(DATA, 2u64)).unwrap();
    port.send(t, Message::signal(CTL)).unwrap();
    kernel.wait_quiescent();
    assert_eq!(entries(&order), vec!["got-2", "data-1", "data-2"]);
    kernel.shutdown();
}

#[test]
fn priority_inheritance_resolves_inversion() {
    // Classic inversion: LOW is mid-way through processing an unconstrained
    // message when a HIGH-constraint request queues behind it and a MEDIUM
    // thread becomes runnable. With queue-based inheritance (§4), the
    // queued HIGH request raises LOW's effective priority, so LOW finishes
    // its work before MEDIUM runs; without inheritance, MEDIUM preempts
    // LOW and the HIGH requester is effectively inverted behind MEDIUM.
    for (inherit, expect_low_before_medium) in [(true, true), (false, false)] {
        let mut cfg = KernelConfig::virtual_time();
        cfg.priority_inheritance = inherit;
        let kernel = Kernel::new(cfg);
        let order: Log = Arc::new(Mutex::new(Vec::new()));

        // MEDIUM: logs each time it runs.
        let order_med = Arc::clone(&order);
        let medium = kernel
            .spawn(
                SpawnOptions::new("medium").priority(Priority::NORMAL),
                move |_: &mut Ctx<'_>, _env: Envelope| {
                    log(&order_med, "medium-ran");
                    Flow::Continue
                },
            )
            .unwrap();

        // LOW: first receives WORK (unconstrained, so it runs at static
        // LOW priority). Mid-work it triggers HIGH and MEDIUM, then keeps
        // working across several yields. It answers HIGH's request only in
        // a later code-function invocation.
        let order_low = Arc::clone(&order);
        let kernel2 = kernel.clone();
        let low = kernel
            .spawn(
                SpawnOptions::new("low").priority(Priority::LOW),
                move |ctx: &mut Ctx<'_>, env: Envelope| {
                    if env.wants_reply() {
                        log(&order_low, "low-replied");
                        ctx.reply(&env, Message::signal(DATA)).unwrap();
                        return Flow::Continue;
                    }
                    // WORK message: wake HIGH, which sync-sends to us and
                    // blocks; its request now sits in our queue.
                    let high = *env.message().body_ref::<mbthread::ThreadId>().unwrap();
                    ctx.send_with(high, Message::signal(DATA), None).unwrap();
                    // Make MEDIUM runnable, then do more "work".
                    ctx.send_with(medium, Message::signal(DATA), None).unwrap();
                    for _ in 0..3 {
                        ctx.yield_now().unwrap();
                    }
                    log(&order_low, "low-work-done");
                    let _ = &kernel2;
                    Flow::Continue
                },
            )
            .unwrap();

        // HIGH: sync-sends to LOW with a HIGH constraint.
        let order_high = Arc::clone(&order);
        let high = kernel
            .spawn(
                SpawnOptions::new("high").priority(Priority::HIGH),
                move |ctx: &mut Ctx<'_>, _env: Envelope| {
                    let pending = ctx
                        .begin_sync_with(
                            low,
                            Message::signal(DATA),
                            Some(Constraint::priority(Priority::HIGH)),
                        )
                        .unwrap();
                    ctx.wait(pending).unwrap();
                    log(&order_high, "high-done");
                    Flow::Stop
                },
            )
            .unwrap();
        kernel.wait_quiescent();

        let port = kernel.external("test");
        port.send(low, Message::new(DATA, high)).unwrap();
        kernel.wait_quiescent();

        let seen = entries(&order);
        let low_pos = seen.iter().position(|s| s == "low-work-done").unwrap();
        let med_pos = seen.iter().position(|s| s == "medium-ran").unwrap();
        if expect_low_before_medium {
            assert!(
                low_pos < med_pos,
                "with inheritance, low (boosted by the queued HIGH request) \
                 should finish before medium: {seen:?}"
            );
        } else {
            assert!(
                med_pos < low_pos,
                "without inheritance, medium preempts low: {seen:?}"
            );
        }
        kernel.shutdown();
    }
}

#[test]
fn peer_gone_detected_on_sync_send_to_dying_thread() {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let quitter = kernel
        .spawn("quitter", |_: &mut Ctx<'_>, _env: Envelope| Flow::Stop)
        .unwrap();
    let result = Arc::new(Mutex::new(None));
    let result2 = Arc::clone(&result);
    let caller = kernel
        .spawn("caller", move |ctx: &mut Ctx<'_>, _env: Envelope| {
            let r = ctx.send_sync(quitter, Message::signal(DATA));
            *result2.lock().unwrap() = Some(r.map(|_| ()));
            Flow::Stop
        })
        .unwrap();
    let port = kernel.external("test");
    port.send(caller, Message::signal(DATA)).unwrap();
    kernel.wait_quiescent();
    let got = result.lock().unwrap().take().unwrap();
    assert_eq!(got, Err(KernelError::PeerGone(quitter)));
    kernel.shutdown();
}

#[test]
fn timer_cancel_prevents_delivery() {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let fired = Arc::new(Mutex::new(0u32));
    let fired2 = Arc::clone(&fired);
    let t = kernel
        .spawn("timed", move |ctx: &mut Ctx<'_>, env: Envelope| {
            if env.tag() == TICK {
                *fired2.lock().unwrap() += 1;
                return Flow::Continue;
            }
            // Set two timers, cancel one.
            let keep = ctx.set_timer(
                ctx.now() + Duration::from_millis(5),
                Message::signal(TICK),
                None,
            );
            let cancel = ctx.set_timer(
                ctx.now() + Duration::from_millis(6),
                Message::signal(TICK),
                None,
            );
            assert!(ctx.cancel_timer(cancel));
            let _ = keep;
            Flow::Continue
        })
        .unwrap();
    let port = kernel.external("test");
    port.send(t, Message::signal(DATA)).unwrap();
    kernel.wait_quiescent();
    assert_eq!(*fired.lock().unwrap(), 1);
    assert_eq!(kernel.stats().timer_fires, 1);
    kernel.shutdown();
}

#[test]
fn context_switches_are_counted() {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let a = kernel
        .spawn("a", |ctx: &mut Ctx<'_>, env: Envelope| {
            ctx.reply(&env, Message::signal(DATA)).unwrap();
            Flow::Continue
        })
        .unwrap();
    let port = kernel.external("test");
    kernel.wait_quiescent();
    let before = kernel.stats();
    for _ in 0..10 {
        port.send_sync(a, Message::signal(DATA)).unwrap();
    }
    let delta = kernel.stats().delta_since(&before);
    assert!(delta.messages_sent >= 20, "10 requests + 10 replies");
    assert_eq!(delta.sync_sends, 10);
    kernel.shutdown();
}

#[test]
fn stale_reply_is_rejected() {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let seen = Arc::new(Mutex::new(Vec::new()));
    let seen2 = Arc::clone(&seen);
    let server = kernel
        .spawn("server", move |ctx: &mut Ctx<'_>, env: Envelope| {
            let first = ctx.reply(&env, Message::signal(DATA));
            let second = ctx.reply(&env, Message::signal(DATA));
            seen2.lock().unwrap().push((first.is_ok(), second.is_err()));
            Flow::Continue
        })
        .unwrap();
    let port = kernel.external("test");
    port.send_sync(server, Message::signal(DATA)).unwrap();
    kernel.wait_quiescent();
    assert_eq!(*seen.lock().unwrap(), vec![(true, true)]);
    kernel.shutdown();
}

#[test]
fn real_clock_timers_fire() {
    let kernel = Kernel::new(KernelConfig::default());
    assert_eq!(kernel.clock_mode(), ClockMode::Real);
    let fired = Arc::new(Mutex::new(false));
    let fired2 = Arc::clone(&fired);
    let t = kernel
        .spawn("rt", move |ctx: &mut Ctx<'_>, env: Envelope| {
            if env.tag() == TICK {
                *fired2.lock().unwrap() = true;
                Flow::Stop
            } else {
                let _ = ctx.set_timer(
                    ctx.now() + Duration::from_millis(5),
                    Message::signal(TICK),
                    None,
                );
                Flow::Continue
            }
        })
        .unwrap();
    let port = kernel.external("test");
    port.send(t, Message::signal(DATA)).unwrap();
    // Real time: give it a moment.
    std::thread::sleep(Duration::from_millis(100));
    assert!(*fired.lock().unwrap());
    kernel.shutdown();
}

#[test]
fn external_recv_timeout_expires() {
    let kernel = Kernel::new(KernelConfig::default());
    let port = kernel.external("test");
    let got = port.recv_timeout(&MatchSpec::Any, Duration::from_millis(10));
    assert!(got.is_none());
    kernel.shutdown();
}
