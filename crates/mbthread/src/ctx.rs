//! The thread-side kernel API.
//!
//! A [`Ctx`] is handed to a thread's code function on every invocation; it
//! is the only way a thread interacts with the kernel: sending messages,
//! suspending for further messages, sleeping, and setting timers. All
//! operations are *preemption points*: waking a more urgent thread hands
//! the CPU over immediately (when the kernel is configured preemptive).

use crate::clock::Time;
use crate::constraint::{Constraint, Priority};
use crate::error::{KernelError, SendError};
use crate::kernel::Kernel;
use crate::message::{Envelope, MatchSpec, Message, ReplyToken, Tag};
use crate::record::{CodeFn, RunState, ThreadId};
use crate::sched::{self, KState};
use crate::stats::StatCounters;
use crate::timer::{TimerId, TimerKind};
use parking_lot::{Condvar, MutexGuard};
use std::sync::Arc;
use std::time::Duration;

/// Options for spawning a thread: a name (for diagnostics) and a static
/// priority.
#[derive(Clone, Debug)]
pub struct SpawnOptions {
    /// Diagnostic name, also used for the backing OS thread.
    pub name: String,
    /// Static scheduling priority.
    pub priority: Priority,
}

impl SpawnOptions {
    /// Creates options with the given name and [`Priority::NORMAL`].
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        SpawnOptions {
            name: name.into(),
            priority: Priority::NORMAL,
        }
    }

    /// Sets the static priority.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

impl From<&str> for SpawnOptions {
    fn from(name: &str) -> Self {
        SpawnOptions::new(name)
    }
}

impl From<String> for SpawnOptions {
    fn from(name: String) -> Self {
        SpawnOptions::new(name)
    }
}

/// A synchronous send in flight: proof that a reply token is outstanding.
///
/// Obtain one from [`Ctx::begin_sync`], then consume it with [`Ctx::wait`]
/// or [`Ctx::wait_or`]. Dropping it unclaimed cancels the wait and discards
/// any late reply.
#[derive(Debug)]
pub struct PendingReply {
    kernel: Kernel,
    pub(crate) token: u64,
    pub(crate) to: ThreadId,
    pub(crate) me: ThreadId,
    pub(crate) live: bool,
}

impl PendingReply {
    /// The thread the request was sent to.
    #[must_use]
    pub fn peer(&self) -> ThreadId {
        self.to
    }

    fn consume(&mut self) {
        self.live = false;
    }
}

impl Drop for PendingReply {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        // Cancel the wait: retire the token, stop donating priority, and
        // discard any reply that already landed in our mailbox.
        let mut state = self.kernel.inner.state.lock();
        state.pending_tokens.remove(&self.token);
        if let Some(rec) = state.rec_mut(self.me) {
            if rec.waiting_on == Some(self.to) {
                rec.waiting_on = None;
            }
            let token = ReplyToken(self.token);
            rec.mailbox.retain(|env| env.in_reply != Some(token));
        }
    }
}

/// Outcome of [`Ctx::wait_or`]: either the awaited reply, or an
/// interrupting message (e.g. a control event) with the wait still
/// pending.
#[derive(Debug)]
pub enum SyncOutcome {
    /// The reply arrived; the synchronous send is complete.
    Reply(Envelope),
    /// An envelope matching the interrupt tags arrived first. Handle it,
    /// then resume waiting with the returned [`PendingReply`].
    Interrupted(PendingReply, Envelope),
}

/// The kernel interface available to a running thread.
///
/// See the [crate documentation](crate) for the programming model.
pub struct Ctx<'k> {
    kernel: &'k Kernel,
    me: ThreadId,
    cv: Arc<Condvar>,
}

impl<'k> Ctx<'k> {
    pub(crate) fn new(kernel: &'k Kernel, me: ThreadId) -> Self {
        let cv = {
            let state = kernel.inner.state.lock();
            Arc::clone(&state.rec(me).expect("ctx thread exists").cv)
        };
        Ctx { kernel, me, cv }
    }

    /// This thread's id.
    #[must_use]
    pub fn id(&self) -> ThreadId {
        self.me
    }

    /// The kernel this thread belongs to.
    #[must_use]
    pub fn kernel(&self) -> &Kernel {
        self.kernel
    }

    /// Current kernel time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.kernel.now()
    }

    /// Spawns a sibling thread (see [`Kernel::spawn`]).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Shutdown`] if the kernel is shutting down.
    pub fn spawn(
        &self,
        opts: impl Into<SpawnOptions>,
        code: impl CodeFn,
    ) -> Result<ThreadId, KernelError> {
        self.kernel.spawn(opts, code)
    }

    /// The constraint of the message currently being processed, if any.
    /// New messages sent by this thread inherit it by default, which is how
    /// a pump's constraint propagates across its coroutine set.
    #[must_use]
    pub fn current_constraint(&self) -> Option<Constraint> {
        let state = self.kernel.inner.state.lock();
        state.rec(self.me).and_then(|r| r.cur)
    }

    /// Adopts a new current constraint mid-processing. Coroutine glue uses
    /// this when a fresh request arrives inside a long-running handler:
    /// "messages between coroutines inherit the constraint from the
    /// message received by the sending component" (§4), so the latest
    /// received constraint must govern subsequent sends.
    pub fn adopt_constraint(&mut self, constraint: Option<Constraint>) {
        let mut state = self.kernel.inner.state.lock();
        if let Some(rec) = state.rec_mut(self.me) {
            rec.cur = constraint;
            rec.processing = true;
        }
    }

    // ------------------------------------------------------------------
    // Sending
    // ------------------------------------------------------------------

    /// Sends a message asynchronously. The message inherits the constraint
    /// of the message this thread is currently processing.
    ///
    /// # Errors
    ///
    /// Fails if the target does not exist, has terminated, or the kernel is
    /// shutting down.
    pub fn send(&mut self, to: ThreadId, msg: Message) -> Result<(), SendError> {
        let constraint = self.current_constraint();
        self.send_with(to, msg, constraint)
    }

    /// Sends a message asynchronously with an explicit constraint
    /// (`None` sends an unconstrained message).
    ///
    /// # Errors
    ///
    /// Fails if the target does not exist, has terminated, or the kernel is
    /// shutting down.
    pub fn send_with(
        &mut self,
        to: ThreadId,
        msg: Message,
        constraint: Option<Constraint>,
    ) -> Result<(), SendError> {
        let inner = &self.kernel.inner;
        let mut state = inner.state.lock();
        let seq = state.send_seq;
        state.send_seq += 1;
        let env = Envelope {
            from: Some(self.me),
            msg,
            constraint,
            reply_to: None,
            in_reply: None,
            seq,
        };
        sched::enqueue(&mut state, &inner.stats, to, env)?;
        inner.cv_global.notify_all();
        let _ = self.maybe_preempt(&mut state);
        Ok(())
    }

    /// Starts a synchronous send: enqueues the request and returns a
    /// [`PendingReply`] that must be consumed with [`Ctx::wait`] or
    /// [`Ctx::wait_or`]. While the reply is outstanding, this thread
    /// donates its urgency to the receiver (priority inheritance).
    ///
    /// # Errors
    ///
    /// Fails if the target does not exist, has terminated, or the kernel is
    /// shutting down.
    pub fn begin_sync(&mut self, to: ThreadId, msg: Message) -> Result<PendingReply, SendError> {
        let constraint = self.current_constraint();
        self.begin_sync_with(to, msg, constraint)
    }

    /// [`Ctx::begin_sync`] with an explicit constraint.
    ///
    /// # Errors
    ///
    /// Fails if the target does not exist, has terminated, or the kernel is
    /// shutting down.
    pub fn begin_sync_with(
        &mut self,
        to: ThreadId,
        msg: Message,
        constraint: Option<Constraint>,
    ) -> Result<PendingReply, SendError> {
        let inner = &self.kernel.inner;
        let mut state = inner.state.lock();
        let token = state.next_token;
        state.next_token += 1;
        let seq = state.send_seq;
        state.send_seq += 1;
        let env = Envelope {
            from: Some(self.me),
            msg,
            constraint,
            reply_to: Some(ReplyToken(token)),
            in_reply: None,
            seq,
        };
        sched::enqueue(&mut state, &inner.stats, to, env)?;
        StatCounters::bump(&inner.stats.sync_sends);
        state.pending_tokens.insert(token);
        if let Some(rec) = state.rec_mut(self.me) {
            rec.waiting_on = Some(to);
        }
        inner.cv_global.notify_all();
        let _ = self.maybe_preempt(&mut state);
        Ok(PendingReply {
            kernel: self.kernel.clone(),
            token,
            to,
            me: self.me,
            live: true,
        })
    }

    /// Blocks until the reply to `pending` arrives.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::PeerGone`] if the receiver terminated without
    /// replying, or [`KernelError::Shutdown`].
    pub fn wait(&mut self, mut pending: PendingReply) -> Result<Envelope, KernelError> {
        let spec = MatchSpec::Reply(pending.token);
        let out = self.blocking_receive(&spec, true);
        pending.consume();
        self.clear_waiting_on();
        out
    }

    /// Blocks until either the reply to `pending` arrives or a message with
    /// one of `interrupt_tags` does. This is how a component blocked in a
    /// `push` or `pull` stays receptive to control events (§4 of the
    /// paper): handle the interrupt, then call `wait_or` again with the
    /// returned pending reply.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::PeerGone`] if the receiver terminated without
    /// replying, or [`KernelError::Shutdown`].
    pub fn wait_or(
        &mut self,
        mut pending: PendingReply,
        interrupt_tags: &[Tag],
    ) -> Result<SyncOutcome, KernelError> {
        let spec = MatchSpec::ReplyOrTags(pending.token, interrupt_tags.to_vec());
        let env = match self.blocking_receive(&spec, true) {
            Ok(env) => env,
            Err(e) => {
                pending.consume();
                self.clear_waiting_on();
                return Err(e);
            }
        };
        if env.in_reply == Some(ReplyToken(pending.token)) {
            pending.consume();
            self.clear_waiting_on();
            Ok(SyncOutcome::Reply(env))
        } else {
            Ok(SyncOutcome::Interrupted(pending, env))
        }
    }

    /// Sends synchronously and blocks for the reply: `begin_sync` + `wait`.
    ///
    /// # Errors
    ///
    /// Fails if the target is unknown, terminated before replying, or the
    /// kernel is shutting down.
    pub fn send_sync(&mut self, to: ThreadId, msg: Message) -> Result<Envelope, KernelError> {
        let pending = self.begin_sync(to, msg)?;
        self.wait(pending)
    }

    /// Replies to a synchronous request. Consumes the envelope's reply
    /// token, so replying twice to the same envelope fails.
    ///
    /// # Errors
    ///
    /// [`SendError::NotARequest`] if `env` was not a synchronous request
    /// (or was already replied to); [`SendError::UnknownThread`] if the
    /// requester has terminated.
    pub fn reply(&mut self, env: &Envelope, msg: Message) -> Result<(), SendError> {
        let token = env.reply_to.ok_or(SendError::NotARequest)?;
        let to = env.from.ok_or(SendError::NotARequest)?;
        let inner = &self.kernel.inner;
        let mut state = inner.state.lock();
        // Each request may be answered once: the token is retired here, so
        // a second reply (or a reply after the waiter gave up) fails.
        if !state.pending_tokens.remove(&token.0) {
            return Err(SendError::StaleReply);
        }
        let seq = state.send_seq;
        state.send_seq += 1;
        let reply_env = Envelope {
            from: Some(self.me),
            msg,
            constraint: self.constraint_of(&state),
            reply_to: None,
            in_reply: Some(token),
            seq,
        };
        sched::enqueue(&mut state, &inner.stats, to, reply_env)?;
        inner.cv_global.notify_all();
        let _ = self.maybe_preempt(&mut state);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Receiving
    // ------------------------------------------------------------------

    /// Suspends until any message arrives. Used for mid-processing waits;
    /// the constraint of the outer message being processed is unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Shutdown`] when the kernel shuts down.
    pub fn receive(&mut self) -> Result<Envelope, KernelError> {
        self.blocking_receive(&MatchSpec::Any, false)
    }

    /// Suspends until a message matching `spec` arrives; non-matching
    /// messages stay queued in arrival order.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Shutdown`] when the kernel shuts down.
    pub fn receive_matching(&mut self, spec: &MatchSpec) -> Result<Envelope, KernelError> {
        self.blocking_receive(spec, false)
    }

    /// Takes a matching message from the mailbox without blocking.
    #[must_use]
    pub fn try_receive(&mut self, spec: &MatchSpec) -> Option<Envelope> {
        let mut state = self.kernel.inner.state.lock();
        let rec = state.rec_mut(self.me)?;
        let idx = rec.find_match(spec)?;
        rec.mailbox.remove(idx)
    }

    /// Top-level receive for the thread main loop: also records the
    /// received message's constraint as the thread's current constraint.
    pub(crate) fn main_receive(&mut self) -> Result<Envelope, KernelError> {
        let env = self.blocking_receive(&MatchSpec::Any, false)?;
        let mut state = self.kernel.inner.state.lock();
        if let Some(rec) = state.rec_mut(self.me) {
            rec.cur = env.constraint();
            rec.processing = true;
        }
        Ok(env)
    }

    pub(crate) fn clear_current_constraint(&mut self) {
        let mut state = self.kernel.inner.state.lock();
        if let Some(rec) = state.rec_mut(self.me) {
            rec.cur = None;
            rec.processing = false;
        }
    }

    // ------------------------------------------------------------------
    // Time
    // ------------------------------------------------------------------

    /// Suspends this thread until the given kernel time.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Shutdown`] when the kernel shuts down.
    pub fn sleep_until(&mut self, at: Time) -> Result<(), KernelError> {
        let inner = &self.kernel.inner;
        let mut state = inner.state.lock();
        if at <= inner.now(&state) {
            return self.yield_cpu(&mut state);
        }
        sched::add_timer(&mut state, at, TimerKind::Wake(self.me));
        {
            let rec = state.rec_mut(self.me).ok_or(KernelError::Shutdown)?;
            rec.sleeping = true;
            rec.state = RunState::Blocked;
        }
        debug_assert_eq!(state.running, Some(self.me));
        state.running = None;
        inner.reschedule(&mut state);
        self.park(&mut state)
    }

    /// Suspends this thread for the given duration (in kernel time).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Shutdown`] when the kernel shuts down.
    pub fn sleep(&mut self, d: Duration) -> Result<(), KernelError> {
        let at = self.now() + d;
        self.sleep_until(at)
    }

    /// Offers the CPU to any other runnable thread.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Shutdown`] when the kernel shuts down.
    pub fn yield_now(&mut self) -> Result<(), KernelError> {
        let mut state = self.kernel.inner.state.lock();
        self.yield_cpu(&mut state)
    }

    /// Asks the kernel to deliver `msg` to this thread at the given time,
    /// with an optional constraint. The thread keeps receiving in the
    /// meantime — unlike a sleep, a timer delivery leaves the thread
    /// receptive to other messages.
    #[must_use]
    pub fn set_timer(&mut self, at: Time, msg: Message, constraint: Option<Constraint>) -> TimerId {
        let inner = &self.kernel.inner;
        let mut state = inner.state.lock();
        let id = sched::add_timer(
            &mut state,
            at,
            TimerKind::Deliver {
                to: self.me,
                msg,
                constraint,
            },
        );
        // The dispatcher may need to shorten its sleep.
        inner.cv_global.notify_all();
        id
    }

    /// Cancels a pending timer; returns whether it had not yet fired.
    pub fn cancel_timer(&mut self, id: TimerId) -> bool {
        let mut state = self.kernel.inner.state.lock();
        sched::cancel_timer(&mut state, id)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn constraint_of(&self, state: &KState) -> Option<Constraint> {
        state.rec(self.me).and_then(|r| r.cur)
    }

    fn clear_waiting_on(&mut self) {
        let mut state = self.kernel.inner.state.lock();
        if let Some(rec) = state.rec_mut(self.me) {
            rec.waiting_on = None;
        }
    }

    /// Parks until this thread is first granted the CPU.
    pub(crate) fn park_initial(&mut self) -> Result<(), KernelError> {
        let mut state = self.kernel.inner.state.lock();
        self.park(&mut state)
    }

    /// Waits (with the lock held on entry) until this thread is Running.
    fn park(&self, state: &mut MutexGuard<'_, KState>) -> Result<(), KernelError> {
        loop {
            if state.shutdown {
                return Err(KernelError::Shutdown);
            }
            match state.rec(self.me) {
                Some(rec) if rec.state == RunState::Running => return Ok(()),
                Some(_) => {}
                None => return Err(KernelError::Shutdown),
            }
            self.cv.wait(state);
        }
    }

    /// The core blocking receive: takes a matching message or gives up the
    /// CPU until one arrives. With `check_peer`, also fails when the peer
    /// of an outstanding synchronous send terminates.
    fn blocking_receive(
        &mut self,
        spec: &MatchSpec,
        check_peer: bool,
    ) -> Result<Envelope, KernelError> {
        let inner = &self.kernel.inner;
        let mut state = inner.state.lock();
        loop {
            if state.shutdown {
                return Err(KernelError::Shutdown);
            }
            {
                let rec = state.rec_mut(self.me).ok_or(KernelError::Shutdown)?;
                if check_peer {
                    if let Some(peer) = rec.peer_gone.take() {
                        rec.waiting_on = None;
                        return Err(KernelError::PeerGone(peer));
                    }
                }
                if let Some(idx) = rec.find_match(spec) {
                    let env = rec.mailbox.remove(idx).expect("index from find_match");
                    return Ok(env);
                }
                rec.state = RunState::Blocked;
                rec.wait = Some(spec.clone());
            }
            debug_assert_eq!(state.running, Some(self.me));
            state.running = None;
            inner.reschedule(&mut state);
            self.park(&mut state)?;
        }
    }

    /// Gives up the CPU, staying runnable; returns once rescheduled.
    fn yield_cpu(&self, state: &mut MutexGuard<'_, KState>) -> Result<(), KernelError> {
        let inner = &self.kernel.inner;
        if state.shutdown {
            return Err(KernelError::Shutdown);
        }
        let seq = state.ready_seq;
        state.ready_seq += 1;
        {
            let rec = state.rec_mut(self.me).ok_or(KernelError::Shutdown)?;
            rec.state = RunState::Runnable;
            rec.ready_seq = seq;
        }
        debug_assert_eq!(state.running, Some(self.me));
        state.running = None;
        inner.reschedule(state);
        self.park(state)
    }

    /// After waking another thread: hand over the CPU if that thread is now
    /// more urgent than we are.
    fn maybe_preempt(&self, state: &mut MutexGuard<'_, KState>) -> Result<(), KernelError> {
        let inner = &self.kernel.inner;
        if !inner.cfg.preemptive || state.running != Some(self.me) {
            return Ok(());
        }
        let my_eff = sched::effective(state, &inner.cfg, self.me, &mut Vec::new());
        let someone_better = state.threads.iter().any(|(&id, rec)| {
            id != self.me
                && !rec.external
                && rec.state == RunState::Runnable
                && sched::effective(state, &inner.cfg, id, &mut Vec::new()).urgency_cmp(&my_eff)
                    == std::cmp::Ordering::Greater
        });
        if someone_better {
            self.yield_cpu(state)
        } else {
            Ok(())
        }
    }
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx").field("thread", &self.me).finish()
    }
}
