//! Error types for kernel operations.

use crate::record::ThreadId;
use std::error::Error;
use std::fmt;

/// Errors returned by blocking kernel operations ([`Ctx::receive`](crate::Ctx::receive)
/// (crate::Ctx::receive), sleeps, synchronous sends).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// The kernel is shutting down; the thread should unwind and return.
    Shutdown,
    /// The peer thread terminated before replying to a synchronous send.
    PeerGone(ThreadId),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Shutdown => write!(f, "kernel is shutting down"),
            KernelError::PeerGone(id) => {
                write!(f, "peer {id} terminated before replying")
            }
        }
    }
}

impl Error for KernelError {}

/// Errors returned by send operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SendError {
    /// The kernel is shutting down.
    Shutdown,
    /// The destination thread does not exist or has terminated.
    UnknownThread(ThreadId),
    /// A reply was sent to a request whose sender is no longer waiting
    /// (it timed out, unwound, or already received a reply).
    StaleReply,
    /// The envelope carries no reply token, so it cannot be replied to.
    NotARequest,
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::Shutdown => write!(f, "kernel is shutting down"),
            SendError::UnknownThread(id) => write!(f, "no such thread: {id}"),
            SendError::StaleReply => write!(f, "reply target is no longer waiting"),
            SendError::NotARequest => write!(f, "envelope was not a synchronous request"),
        }
    }
}

impl Error for SendError {}

impl From<SendError> for KernelError {
    fn from(e: SendError) -> Self {
        match e {
            SendError::Shutdown => KernelError::Shutdown,
            SendError::UnknownThread(id) => KernelError::PeerGone(id),
            SendError::StaleReply | SendError::NotARequest => KernelError::Shutdown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty_and_lowercase() {
        for e in [KernelError::Shutdown, KernelError::PeerGone(ThreadId(3))] {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
        for e in [
            SendError::Shutdown,
            SendError::UnknownThread(ThreadId(1)),
            SendError::StaleReply,
            SendError::NotARequest,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn send_error_converts_to_kernel_error() {
        assert_eq!(
            KernelError::from(SendError::UnknownThread(ThreadId(7))),
            KernelError::PeerGone(ThreadId(7))
        );
        assert_eq!(
            KernelError::from(SendError::Shutdown),
            KernelError::Shutdown
        );
    }
}
