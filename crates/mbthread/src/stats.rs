//! Kernel statistics, used by the benchmark harness to count context
//! switches and messages per pipeline item (experiments E1, E2, E6).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters maintained by the kernel.
#[derive(Debug, Default)]
pub(crate) struct StatCounters {
    pub(crate) context_switches: AtomicU64,
    pub(crate) messages_sent: AtomicU64,
    pub(crate) sync_sends: AtomicU64,
    pub(crate) timer_fires: AtomicU64,
    pub(crate) threads_spawned: AtomicU64,
}

impl StatCounters {
    pub(crate) fn snapshot(&self) -> KernelStats {
        KernelStats {
            context_switches: self.context_switches.load(Ordering::Relaxed),
            messages_sent: self.messages_sent.load(Ordering::Relaxed),
            sync_sends: self.sync_sends.load(Ordering::Relaxed),
            timer_fires: self.timer_fires.load(Ordering::Relaxed),
            threads_spawned: self.threads_spawned.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of kernel activity counters.
///
/// Obtain one with [`Kernel::stats`](crate::Kernel::stats); subtract two
/// snapshots with [`KernelStats::delta_since`] to measure the cost of a
/// workload in context switches and messages.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Number of times the CPU was handed from one thread to a *different*
    /// thread.
    pub context_switches: u64,
    /// Total envelopes enqueued (async + sync + replies + timer
    /// deliveries).
    pub messages_sent: u64,
    /// Synchronous sends initiated.
    pub sync_sends: u64,
    /// Timers that fired.
    pub timer_fires: u64,
    /// Threads spawned over the kernel's lifetime.
    pub threads_spawned: u64,
}

impl KernelStats {
    /// The counters as `(name, value)` pairs, in a fixed order — the
    /// enumeration observability exporters iterate instead of hard-coding
    /// the field list.
    #[must_use]
    pub fn counters(&self) -> [(&'static str, u64); 5] {
        [
            ("context_switches", self.context_switches),
            ("messages_sent", self.messages_sent),
            ("sync_sends", self.sync_sends),
            ("timer_fires", self.timer_fires),
            ("threads_spawned", self.threads_spawned),
        ]
    }

    /// Counter increases since the `earlier` snapshot.
    #[must_use]
    pub fn delta_since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            context_switches: self.context_switches - earlier.context_switches,
            messages_sent: self.messages_sent - earlier.messages_sent,
            sync_sends: self.sync_sends - earlier.sync_sends,
            timer_fires: self.timer_fires - earlier.timer_fires,
            threads_spawned: self.threads_spawned - earlier.threads_spawned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = KernelStats {
            context_switches: 10,
            messages_sent: 20,
            sync_sends: 5,
            timer_fires: 2,
            threads_spawned: 3,
        };
        let b = KernelStats {
            context_switches: 4,
            messages_sent: 9,
            sync_sends: 1,
            timer_fires: 0,
            threads_spawned: 3,
        };
        let d = a.delta_since(&b);
        assert_eq!(d.context_switches, 6);
        assert_eq!(d.messages_sent, 11);
        assert_eq!(d.sync_sends, 4);
        assert_eq!(d.timer_fires, 2);
        assert_eq!(d.threads_spawned, 0);
    }

    #[test]
    fn counters_snapshot_matches_bumps() {
        let c = StatCounters::default();
        StatCounters::bump(&c.messages_sent);
        StatCounters::bump(&c.messages_sent);
        StatCounters::bump(&c.context_switches);
        let s = c.snapshot();
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.context_switches, 1);
        assert_eq!(s.sync_sends, 0);
    }
}
