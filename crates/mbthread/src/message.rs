//! Messages, envelopes, and mailbox match specifications.
//!
//! All inter-thread communication is carried by [`Message`]s wrapped in
//! [`Envelope`]s. An envelope records the sender, an optional scheduling
//! [`Constraint`], and — for synchronous sends — a reply token that routes
//! the answer back to the waiting thread. Network packets, timer
//! expirations, and OS signals are mapped to messages by the platform, so a
//! code function sees a single uniform event interface.

use crate::constraint::Constraint;
use crate::record::ThreadId;
use std::any::Any;
use std::fmt;

/// A small integer identifying the meaning of a message.
///
/// Tags are how code functions dispatch on incoming messages and how
/// [`MatchSpec`]s select which messages can interrupt a blocked operation.
/// Higher layers define their own tag constants; tag values have no meaning
/// to the kernel itself.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag(pub u32);

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag:{}", self.0)
    }
}

/// The payload of a message: any sendable value, type-erased.
pub type Body = Box<dyn Any + Send>;

/// A tagged, type-erased message body.
pub struct Message {
    tag: Tag,
    body: Body,
}

impl Message {
    /// Creates a message with the given tag and payload.
    #[must_use]
    pub fn new<T: Any + Send>(tag: Tag, body: T) -> Self {
        Message {
            tag,
            body: Box::new(body),
        }
    }

    /// Creates a message with a tag and no payload.
    #[must_use]
    pub fn signal(tag: Tag) -> Self {
        Message::new(tag, ())
    }

    /// The message tag.
    #[must_use]
    pub fn tag(&self) -> Tag {
        self.tag
    }

    /// Borrows the body if it has type `T`.
    #[must_use]
    pub fn body_ref<T: Any>(&self) -> Option<&T> {
        self.body.downcast_ref::<T>()
    }

    /// Consumes the message and extracts the body as `T`.
    ///
    /// # Errors
    ///
    /// Returns the message unchanged if the body is not a `T`, so callers
    /// can recover and try another type.
    pub fn into_body<T: Any>(self) -> Result<T, Message> {
        match self.body.downcast::<T>() {
            Ok(b) => Ok(*b),
            Err(body) => Err(Message {
                tag: self.tag,
                body,
            }),
        }
    }

    /// Moves the body out of the message if it is a `T`, leaving `()` in
    /// its place. Useful when the message must be kept (e.g. to reply to
    /// its envelope) after the payload has been consumed.
    pub fn take_body<T: Any + Send>(&mut self) -> Option<T> {
        if !self.body.is::<T>() {
            return None;
        }
        let body = std::mem::replace(&mut self.body, Box::new(()));
        match body.downcast::<T>() {
            Ok(b) => Some(*b),
            Err(_) => unreachable!("checked is::<T>() above"),
        }
    }
}

impl fmt::Debug for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Message").field("tag", &self.tag).finish()
    }
}

/// A sequence number uniquely identifying a pending synchronous send.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct ReplyToken(pub(crate) u64);

/// A message in flight, together with its routing metadata.
pub struct Envelope {
    pub(crate) from: Option<ThreadId>,
    pub(crate) msg: Message,
    pub(crate) constraint: Option<Constraint>,
    /// Set when this envelope is a synchronous request: replies must carry
    /// this token back to `from`.
    pub(crate) reply_to: Option<ReplyToken>,
    /// Set when this envelope *is* a reply to the given token.
    pub(crate) in_reply: Option<ReplyToken>,
    /// Kernel-wide send sequence number; preserves FIFO order in traces.
    pub(crate) seq: u64,
}

impl Envelope {
    /// The sending thread, if the message came from inside the kernel.
    /// `None` for messages injected from an [`ExternalPort`](crate::ExternalPort)
    /// (crate::ExternalPort) or by a timer.
    #[must_use]
    pub fn from(&self) -> Option<ThreadId> {
        self.from
    }

    /// The carried message.
    #[must_use]
    pub fn message(&self) -> &Message {
        &self.msg
    }

    /// Mutable access to the carried message, e.g. to
    /// [`Message::take_body`] while keeping the envelope for a later
    /// reply.
    pub fn message_mut(&mut self) -> &mut Message {
        &mut self.msg
    }

    /// The message tag (shorthand for `self.message().tag()`).
    #[must_use]
    pub fn tag(&self) -> Tag {
        self.msg.tag()
    }

    /// The scheduling constraint attached by the sender, if any.
    #[must_use]
    pub fn constraint(&self) -> Option<Constraint> {
        self.constraint
    }

    /// Whether the sender is blocked waiting for a reply to this envelope.
    #[must_use]
    pub fn wants_reply(&self) -> bool {
        self.reply_to.is_some()
    }

    /// Consumes the envelope, returning the message.
    #[must_use]
    pub fn into_message(self) -> Message {
        self.msg
    }

    /// Consumes the envelope and extracts a body of type `T`.
    ///
    /// # Panics
    ///
    /// Panics if the body is not a `T`; use [`Message::into_body`] via
    /// [`Envelope::into_message`] for a fallible extraction.
    #[must_use]
    #[track_caller]
    pub fn expect_body<T: Any>(self) -> T {
        let tag = self.tag();
        match self.msg.into_body::<T>() {
            Ok(b) => b,
            Err(_) => panic!(
                "message {tag} does not carry a {}",
                std::any::type_name::<T>()
            ),
        }
    }
}

impl fmt::Debug for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Envelope")
            .field("from", &self.from)
            .field("tag", &self.msg.tag())
            .field("constraint", &self.constraint)
            .field("wants_reply", &self.wants_reply())
            .field("seq", &self.seq)
            .finish()
    }
}

/// Selects which envelopes a blocked receive accepts.
///
/// A thread suspended in a receive (or blocked in a synchronous send) is
/// woken only by envelopes matching its spec; everything else stays queued
/// in arrival order. This is how the Infopipe layer keeps a component
/// "responsive to control events" while it is blocked in a `push` or `pull`
/// (§4): it waits with a spec matching *either* the expected data reply *or*
/// any control tag.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum MatchSpec {
    /// Accept any envelope.
    #[default]
    Any,
    /// Accept envelopes whose tag is in the given set.
    Tags(Vec<Tag>),
    /// Accept only the reply to the given pending token.
    Reply(u64),
    /// Accept the reply to the given token, or any envelope whose tag is in
    /// the set (used to stay receptive to control events while blocked).
    ReplyOrTags(u64, Vec<Tag>),
}

impl MatchSpec {
    /// Whether `env` satisfies this spec.
    #[must_use]
    pub fn matches(&self, env: &Envelope) -> bool {
        match self {
            MatchSpec::Any => true,
            MatchSpec::Tags(tags) => tags.contains(&env.msg.tag()),
            MatchSpec::Reply(tok) => env.in_reply == Some(ReplyToken(*tok)),
            MatchSpec::ReplyOrTags(tok, tags) => {
                env.in_reply == Some(ReplyToken(*tok)) || tags.contains(&env.msg.tag())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(tag: Tag, in_reply: Option<u64>) -> Envelope {
        Envelope {
            from: None,
            msg: Message::signal(tag),
            constraint: None,
            reply_to: None,
            in_reply: in_reply.map(ReplyToken),
            seq: 0,
        }
    }

    #[test]
    fn message_body_round_trip() {
        let m = Message::new(Tag(7), String::from("payload"));
        assert_eq!(m.tag(), Tag(7));
        assert_eq!(m.body_ref::<String>().unwrap(), "payload");
        assert!(m.body_ref::<u32>().is_none());
        let s = m.into_body::<String>().unwrap();
        assert_eq!(s, "payload");
    }

    #[test]
    fn into_body_returns_message_on_type_mismatch() {
        let m = Message::new(Tag(1), 3u32);
        let m = m.into_body::<String>().unwrap_err();
        assert_eq!(m.tag(), Tag(1));
        assert_eq!(m.into_body::<u32>().unwrap(), 3);
    }

    #[test]
    fn match_spec_any_and_tags() {
        assert!(MatchSpec::Any.matches(&env(Tag(1), None)));
        let spec = MatchSpec::Tags(vec![Tag(1), Tag(2)]);
        assert!(spec.matches(&env(Tag(2), None)));
        assert!(!spec.matches(&env(Tag(3), None)));
    }

    #[test]
    fn match_spec_reply_routing() {
        let spec = MatchSpec::Reply(9);
        assert!(spec.matches(&env(Tag(0), Some(9))));
        assert!(!spec.matches(&env(Tag(0), Some(8))));
        assert!(!spec.matches(&env(Tag(0), None)));

        let both = MatchSpec::ReplyOrTags(9, vec![Tag(5)]);
        assert!(both.matches(&env(Tag(5), None)));
        assert!(both.matches(&env(Tag(0), Some(9))));
        assert!(!both.matches(&env(Tag(4), Some(8))));
    }

    #[test]
    #[should_panic(expected = "does not carry")]
    fn expect_body_panics_on_mismatch() {
        let e = env(Tag(1), None);
        let _: u32 = e.expect_body::<u32>();
    }
}
