//! Kernel timers: deadlines that wake sleeping threads or deliver messages.
//!
//! Timers are the bridge between time and the message interface: a clocked
//! pump, for example, asks the kernel to deliver a `TICK` message at an
//! absolute deadline and keeps receiving — so it stays receptive to control
//! events while it waits, exactly as §4 of the paper requires.

use crate::clock::Time;
use crate::constraint::Constraint;
use crate::message::Message;
use crate::record::ThreadId;
use std::cmp::Ordering;
use std::fmt;

/// Handle for cancelling a pending timer.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct TimerId(pub(crate) u64);

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer:{}", self.0)
    }
}

/// What happens when a timer fires.
pub(crate) enum TimerKind {
    /// Wake a thread blocked in a sleep.
    Wake(ThreadId),
    /// Deliver a message to a thread's mailbox.
    Deliver {
        to: ThreadId,
        msg: Message,
        constraint: Option<Constraint>,
    },
}

pub(crate) struct TimerEntry {
    pub(crate) kind: TimerKind,
    /// Lazily-cancelled timers stay in the heap but are skipped on fire.
    pub(crate) cancelled: bool,
}

/// Min-heap key: earliest deadline first, then creation order.
#[derive(Copy, Clone, PartialEq, Eq)]
pub(crate) struct TimerKey {
    pub(crate) at: Time,
    pub(crate) id: TimerId,
}

impl Ord for TimerKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest deadline
        // (and among equal deadlines the earliest-created timer) on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.id.0.cmp(&self.id.0))
    }
}

impl PartialOrd for TimerKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn heap_pops_earliest_deadline_first() {
        let mut heap = BinaryHeap::new();
        heap.push(TimerKey {
            at: Time::from_millis(5),
            id: TimerId(0),
        });
        heap.push(TimerKey {
            at: Time::from_millis(1),
            id: TimerId(1),
        });
        heap.push(TimerKey {
            at: Time::from_millis(3),
            id: TimerId(2),
        });
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop()).map(|k| k.id.0).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn equal_deadlines_fire_in_creation_order() {
        let mut heap = BinaryHeap::new();
        for id in [2u64, 0, 1] {
            heap.push(TimerKey {
                at: Time::from_millis(1),
                id: TimerId(id),
            });
        }
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop()).map(|k| k.id.0).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }
}
