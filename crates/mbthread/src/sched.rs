//! Scheduler internals: kernel state, effective-constraint computation,
//! dispatch, message enqueueing, and timer firing.
//!
//! All of this runs under the single kernel mutex, which is what gives the
//! package its uniprocessor semantics: at most one user thread executes at
//! any instant, and every scheduling decision is a serialized state
//! transition.

use crate::clock::{ClockMode, Time};
use crate::constraint::{Constraint, Priority};
use crate::error::SendError;
use crate::message::Envelope;
use crate::record::{RunState, ThreadId, ThreadRec};
use crate::stats::StatCounters;
use crate::timer::{TimerEntry, TimerId, TimerKey, TimerKind};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};

/// Everything the scheduler knows, guarded by the kernel mutex.
pub(crate) struct KState {
    pub(crate) threads: BTreeMap<ThreadId, ThreadRec>,
    pub(crate) running: Option<ThreadId>,
    /// Previous occupant of the CPU, for context-switch counting.
    pub(crate) last_running: Option<ThreadId>,
    pub(crate) shutdown: bool,
    /// Current virtual time (ignored under the real clock).
    pub(crate) vnow: Time,
    /// Active construction barriers ([`Kernel::freeze_clock`]): while
    /// nonzero the virtual clock must not jump to a timer deadline, so a
    /// program can finish spawning threads and arming timers from
    /// external threads without racing the clock.
    pub(crate) clock_holds: u32,
    pub(crate) next_thread: u64,
    pub(crate) next_token: u64,
    pub(crate) next_timer: u64,
    pub(crate) send_seq: u64,
    pub(crate) ready_seq: u64,
    pub(crate) timers: BinaryHeap<TimerKey>,
    pub(crate) timer_entries: HashMap<u64, TimerEntry>,
    /// Reply tokens of synchronous sends that have not been answered yet;
    /// replying to a token not in this set is a stale reply.
    pub(crate) pending_tokens: HashSet<u64>,
    /// First panic observed in a user thread (name, message).
    pub(crate) panic: Option<(String, String)>,
}

impl KState {
    pub(crate) fn new() -> Self {
        KState {
            threads: BTreeMap::new(),
            running: None,
            last_running: None,
            shutdown: false,
            vnow: Time::ZERO,
            clock_holds: 0,
            next_thread: 0,
            next_token: 0,
            next_timer: 0,
            send_seq: 0,
            ready_seq: 0,
            timers: BinaryHeap::new(),
            timer_entries: HashMap::new(),
            pending_tokens: HashSet::new(),
            panic: None,
        }
    }

    pub(crate) fn alloc_thread_id(&mut self) -> ThreadId {
        let id = ThreadId(self.next_thread);
        self.next_thread += 1;
        id
    }

    pub(crate) fn rec(&self, id: ThreadId) -> Option<&ThreadRec> {
        self.threads.get(&id)
    }

    pub(crate) fn rec_mut(&mut self, id: ThreadId) -> Option<&mut ThreadRec> {
        self.threads.get_mut(&id)
    }

    /// Marks a blocked or freshly created thread ready to run.
    pub(crate) fn make_runnable(&mut self, id: ThreadId) {
        let seq = self.ready_seq;
        self.ready_seq += 1;
        if let Some(rec) = self.threads.get_mut(&id) {
            debug_assert!(
                rec.state != RunState::Running,
                "make_runnable on running thread {id}"
            );
            if rec.state != RunState::Done {
                rec.state = RunState::Runnable;
                rec.wait = None;
                rec.ready_seq = seq;
            }
        }
    }

    /// The earliest pending (non-cancelled) timer deadline.
    pub(crate) fn next_timer_deadline(&mut self) -> Option<Time> {
        while let Some(top) = self.timers.peek() {
            match self.timer_entries.get(&top.id.0) {
                Some(entry) if !entry.cancelled => return Some(top.at),
                _ => {
                    // Cancelled or already fired: discard lazily.
                    let key = self.timers.pop().expect("peeked entry exists");
                    self.timer_entries.remove(&key.id.0);
                }
            }
        }
        None
    }

    pub(crate) fn has_runnable(&self) -> bool {
        self.threads
            .values()
            .any(|r| r.state == RunState::Runnable && !r.external)
    }

    /// True when nothing can make progress without external input: no
    /// thread running or runnable and no pending timers.
    pub(crate) fn is_idle(&mut self) -> bool {
        self.running.is_none() && !self.has_runnable() && self.next_timer_deadline().is_none()
    }
}

/// Scheduler behaviour switches (a copy of the user-facing config).
#[derive(Copy, Clone, Debug)]
pub(crate) struct SchedConfig {
    pub(crate) clock: ClockMode,
    pub(crate) priority_inheritance: bool,
    pub(crate) preemptive: bool,
    pub(crate) priority_scheduling: bool,
}

/// Computes the effective constraint of a thread per §4 of the paper:
/// the constraint of the message currently being processed, or — while the
/// thread waits for the CPU — the constraint of the first queued message;
/// with priority inheritance, additionally the most urgent constraint among
/// all queued messages and among threads synchronously waiting on this one.
pub(crate) fn effective(
    state: &KState,
    cfg: &SchedConfig,
    id: ThreadId,
    visited: &mut Vec<ThreadId>,
) -> Constraint {
    let Some(rec) = state.rec(id) else {
        return Constraint::priority(Priority::LOW);
    };
    let mut eff = Constraint::priority(rec.static_pri);
    if rec.processing {
        if let Some(cur) = rec.cur {
            eff = eff.max_urgency(cur);
        }
    } else if rec.state == RunState::Runnable {
        // Waiting for the CPU with no message in progress: the head of the
        // incoming queue determines urgency.
        if let Some(c) = rec.mailbox.front().and_then(|e| e.constraint()) {
            eff = eff.max_urgency(c);
        }
    }
    if cfg.priority_inheritance {
        // Queue-based inheritance: a more urgent queued message raises the
        // thread processing a less urgent one.
        for env in &rec.mailbox {
            if let Some(c) = env.constraint() {
                eff = eff.max_urgency(c);
            }
        }
        // Donation chains: threads blocked on us in a synchronous send lend
        // us their urgency (classic priority inheritance).
        if visited.len() < 16 && !visited.contains(&id) {
            visited.push(id);
            let waiters: Vec<ThreadId> = state
                .threads
                .iter()
                .filter(|(_, r)| r.waiting_on == Some(id))
                .map(|(wid, _)| *wid)
                .collect();
            for w in waiters {
                eff = eff.max_urgency(effective(state, cfg, w, visited));
            }
            visited.pop();
        }
    }
    eff
}

/// Picks the next thread to run: most urgent effective constraint first,
/// FIFO among equals. With `priority_scheduling` off, pure FIFO by the
/// moment each thread became runnable (the E7 ablation).
pub(crate) fn pick_next(state: &KState, cfg: &SchedConfig) -> Option<ThreadId> {
    let mut best: Option<(ThreadId, Constraint, u64)> = None;
    for (&id, rec) in &state.threads {
        if rec.state != RunState::Runnable || rec.external {
            continue;
        }
        let eff = effective(state, cfg, id, &mut Vec::new());
        match &best {
            None => best = Some((id, eff, rec.ready_seq)),
            Some((_, beff, bseq)) => {
                let better = if cfg.priority_scheduling {
                    match eff.urgency_cmp(beff) {
                        Ordering::Greater => true,
                        Ordering::Equal => rec.ready_seq < *bseq,
                        Ordering::Less => false,
                    }
                } else {
                    rec.ready_seq < *bseq
                };
                if better {
                    best = Some((id, eff, rec.ready_seq));
                }
            }
        }
    }
    best.map(|(id, _, _)| id)
}

/// Hands the CPU to `id`: marks it running and unparks its OS thread.
pub(crate) fn grant_cpu(state: &mut KState, stats: &StatCounters, id: ThreadId) {
    debug_assert!(state.running.is_none());
    if state.last_running != Some(id) {
        StatCounters::bump(&stats.context_switches);
        state.last_running = Some(id);
    }
    state.running = Some(id);
    let rec = state.rec_mut(id).expect("granted thread exists");
    rec.state = RunState::Running;
    rec.cv.notify_one();
}

/// If the CPU is free, fires due timers and dispatches the best runnable
/// thread. Called whenever a thread gives up the CPU and periodically by
/// the dispatcher.
pub(crate) fn reschedule(state: &mut KState, cfg: &SchedConfig, stats: &StatCounters, now: Time) {
    fire_due_timers(state, stats, now);
    if state.running.is_none() && !state.shutdown {
        if let Some(next) = pick_next(state, cfg) {
            grant_cpu(state, stats, next);
        }
    }
}

/// Fires every timer whose deadline has passed.
pub(crate) fn fire_due_timers(state: &mut KState, stats: &StatCounters, now: Time) {
    loop {
        let due = match state.timers.peek() {
            Some(top) if top.at <= now => *top,
            _ => break,
        };
        state.timers.pop();
        let Some(entry) = state.timer_entries.remove(&due.id.0) else {
            continue;
        };
        if entry.cancelled {
            continue;
        }
        StatCounters::bump(&stats.timer_fires);
        match entry.kind {
            TimerKind::Wake(id) => {
                let asleep = state
                    .rec(id)
                    .is_some_and(|r| r.sleeping && r.state == RunState::Blocked);
                if asleep {
                    if let Some(rec) = state.rec_mut(id) {
                        rec.sleeping = false;
                    }
                    state.make_runnable(id);
                }
            }
            TimerKind::Deliver {
                to,
                msg,
                constraint,
            } => {
                let seq = state.send_seq;
                state.send_seq += 1;
                let env = Envelope {
                    from: None,
                    msg,
                    constraint,
                    reply_to: None,
                    in_reply: None,
                    seq,
                };
                // A dead target silently drops the delivery.
                let _ = enqueue(state, stats, to, env);
            }
        }
    }
}

/// Appends an envelope to `to`'s mailbox and wakes the target if it is
/// blocked on a matching receive. Returns whether the target should now be
/// considered for preemption.
pub(crate) fn enqueue(
    state: &mut KState,
    stats: &StatCounters,
    to: ThreadId,
    env: Envelope,
) -> Result<(), SendError> {
    if state.shutdown {
        return Err(SendError::Shutdown);
    }
    let rec = state
        .threads
        .get_mut(&to)
        .ok_or(SendError::UnknownThread(to))?;
    if rec.state == RunState::Done {
        return Err(SendError::UnknownThread(to));
    }
    StatCounters::bump(&stats.messages_sent);
    let external = rec.external;
    let matched = rec.wait.as_ref().is_some_and(|spec| spec.matches(&env));
    rec.mailbox.push_back(env);
    if external {
        // External ports are OS threads waiting on their own condvar; they
        // are not scheduled, just notified.
        rec.cv.notify_all();
    } else if matched && rec.state == RunState::Blocked && !rec.sleeping {
        state.make_runnable(to);
    }
    Ok(())
}

/// Creates a timer entry and registers it.
pub(crate) fn add_timer(state: &mut KState, at: Time, kind: TimerKind) -> TimerId {
    let id = TimerId(state.next_timer);
    state.next_timer += 1;
    state.timers.push(TimerKey { at, id });
    state.timer_entries.insert(
        id.0,
        TimerEntry {
            kind,
            cancelled: false,
        },
    );
    id
}

/// Cancels a pending timer; returns whether it was still pending.
pub(crate) fn cancel_timer(state: &mut KState, id: TimerId) -> bool {
    match state.timer_entries.get_mut(&id.0) {
        Some(entry) if !entry.cancelled => {
            entry.cancelled = true;
            true
        }
        _ => false,
    }
}

/// Terminates a thread: releases the CPU if it held it, and fails any
/// synchronous senders blocked on it.
pub(crate) fn terminate(state: &mut KState, id: ThreadId) {
    if state.running == Some(id) {
        state.running = None;
    }
    if let Some(rec) = state.rec_mut(id) {
        rec.state = RunState::Done;
        rec.wait = None;
        rec.mailbox.clear();
    }
    let orphans: Vec<ThreadId> = state
        .threads
        .iter()
        .filter(|(_, r)| r.waiting_on == Some(id) && r.state == RunState::Blocked)
        .map(|(wid, _)| *wid)
        .collect();
    for w in orphans {
        if let Some(rec) = state.rec_mut(w) {
            rec.peer_gone = Some(id);
            if rec.external {
                rec.cv.notify_all();
                continue;
            }
        }
        state.make_runnable(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Message, Tag};

    fn cfg() -> SchedConfig {
        SchedConfig {
            clock: ClockMode::Virtual,
            priority_inheritance: true,
            preemptive: true,
            priority_scheduling: true,
        }
    }

    fn spawn_rec(state: &mut KState, pri: Priority) -> ThreadId {
        let id = state.alloc_thread_id();
        state
            .threads
            .insert(id, ThreadRec::new(format!("t{}", id.0), pri, false));
        state.make_runnable(id);
        id
    }

    #[test]
    fn pick_prefers_higher_priority() {
        let mut state = KState::new();
        let stats = StatCounters::default();
        let low = spawn_rec(&mut state, Priority::LOW);
        let high = spawn_rec(&mut state, Priority::HIGH);
        assert_eq!(pick_next(&state, &cfg()), Some(high));
        grant_cpu(&mut state, &stats, high);
        assert_eq!(state.running, Some(high));
        assert_eq!(pick_next(&state, &cfg()), Some(low));
    }

    #[test]
    fn pick_is_fifo_among_equal_priorities() {
        let mut state = KState::new();
        let first = spawn_rec(&mut state, Priority::NORMAL);
        let _second = spawn_rec(&mut state, Priority::NORMAL);
        assert_eq!(pick_next(&state, &cfg()), Some(first));
    }

    #[test]
    fn fifo_mode_ignores_priorities() {
        let mut state = KState::new();
        let low_first = spawn_rec(&mut state, Priority::LOW);
        let _high_later = spawn_rec(&mut state, Priority::HIGH);
        let mut c = cfg();
        c.priority_scheduling = false;
        assert_eq!(pick_next(&state, &c), Some(low_first));
    }

    #[test]
    fn queued_message_constraint_raises_effective_priority() {
        let mut state = KState::new();
        let stats = StatCounters::default();
        let t = spawn_rec(&mut state, Priority::LOW);
        let env = Envelope {
            from: None,
            msg: Message::signal(Tag(1)),
            constraint: Some(Constraint::priority(Priority::CONTROL)),
            reply_to: None,
            in_reply: None,
            seq: 0,
        };
        enqueue(&mut state, &stats, t, env).unwrap();
        let eff = effective(&state, &cfg(), t, &mut Vec::new());
        assert_eq!(eff.priority, Priority::CONTROL);

        // Without inheritance the head-of-queue rule still applies while
        // waiting for the CPU.
        let mut c = cfg();
        c.priority_inheritance = false;
        let eff = effective(&state, &c, t, &mut Vec::new());
        assert_eq!(eff.priority, Priority::CONTROL);
    }

    #[test]
    fn inheritance_covers_non_head_messages_only_when_enabled() {
        let mut state = KState::new();
        let stats = StatCounters::default();
        let t = spawn_rec(&mut state, Priority::LOW);
        // Mark the thread as processing a NORMAL message, with a CONTROL
        // message queued behind it.
        state.rec_mut(t).unwrap().cur = Some(Constraint::priority(Priority::NORMAL));
        state.rec_mut(t).unwrap().processing = true;
        let env = Envelope {
            from: None,
            msg: Message::signal(Tag(1)),
            constraint: Some(Constraint::priority(Priority::CONTROL)),
            reply_to: None,
            in_reply: None,
            seq: 0,
        };
        enqueue(&mut state, &stats, t, env).unwrap();

        let eff_pi = effective(&state, &cfg(), t, &mut Vec::new());
        assert_eq!(eff_pi.priority, Priority::CONTROL);

        let mut c = cfg();
        c.priority_inheritance = false;
        let eff_nopi = effective(&state, &c, t, &mut Vec::new());
        assert_eq!(eff_nopi.priority, Priority::NORMAL);
    }

    #[test]
    fn donation_flows_through_sync_waits() {
        let mut state = KState::new();
        let holder = spawn_rec(&mut state, Priority::LOW);
        let waiter = spawn_rec(&mut state, Priority::HIGH);
        state.rec_mut(waiter).unwrap().state = RunState::Blocked;
        state.rec_mut(waiter).unwrap().waiting_on = Some(holder);
        let eff = effective(&state, &cfg(), holder, &mut Vec::new());
        assert_eq!(eff.priority, Priority::HIGH);

        let mut c = cfg();
        c.priority_inheritance = false;
        let eff = effective(&state, &c, holder, &mut Vec::new());
        assert_eq!(eff.priority, Priority::LOW);
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        let mut state = KState::new();
        let stats = StatCounters::default();
        let t = spawn_rec(&mut state, Priority::NORMAL);
        state.rec_mut(t).unwrap().state = RunState::Blocked;
        state.rec_mut(t).unwrap().sleeping = true;

        let early = add_timer(&mut state, Time::from_millis(1), TimerKind::Wake(t));
        let _late = add_timer(
            &mut state,
            Time::from_millis(5),
            TimerKind::Deliver {
                to: t,
                msg: Message::signal(Tag(9)),
                constraint: None,
            },
        );
        assert_eq!(state.next_timer_deadline(), Some(Time::from_millis(1)));
        assert!(cancel_timer(&mut state, early));
        assert!(!cancel_timer(&mut state, early));
        assert_eq!(state.next_timer_deadline(), Some(Time::from_millis(5)));

        fire_due_timers(&mut state, &stats, Time::from_millis(10));
        // The wake was cancelled, so the thread still sleeps, but the
        // delivery landed in its mailbox.
        assert!(state.rec(t).unwrap().sleeping);
        assert_eq!(state.rec(t).unwrap().mailbox.len(), 1);
        assert_eq!(state.next_timer_deadline(), None);
    }

    #[test]
    fn terminate_fails_sync_waiters() {
        let mut state = KState::new();
        let dead = spawn_rec(&mut state, Priority::NORMAL);
        let waiter = spawn_rec(&mut state, Priority::NORMAL);
        state.rec_mut(waiter).unwrap().state = RunState::Blocked;
        state.rec_mut(waiter).unwrap().waiting_on = Some(dead);
        terminate(&mut state, dead);
        assert_eq!(state.rec(waiter).unwrap().peer_gone, Some(dead));
        assert_eq!(state.rec(waiter).unwrap().state, RunState::Runnable);
        assert_eq!(state.rec(dead).unwrap().state, RunState::Done);
    }

    #[test]
    fn enqueue_to_done_thread_fails() {
        let mut state = KState::new();
        let stats = StatCounters::default();
        let t = spawn_rec(&mut state, Priority::NORMAL);
        terminate(&mut state, t);
        let env = Envelope {
            from: None,
            msg: Message::signal(Tag(0)),
            constraint: None,
            reply_to: None,
            in_reply: None,
            seq: 0,
        };
        assert_eq!(
            enqueue(&mut state, &stats, t, env).unwrap_err(),
            SendError::UnknownThread(t)
        );
    }
}
