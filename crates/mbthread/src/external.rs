//! Mailboxes for OS threads outside the kernel.
//!
//! An [`ExternalPort`] lets ordinary OS threads — `main`, a network
//! receiver, a test harness — exchange messages with kernel threads. This
//! is how the platform maps "network packets and signals from the operating
//! system" to messages (§4): the OS-facing thread blocks on real I/O and
//! injects what it reads as messages through its port.
//!
//! Ports are not scheduled: they do not take part in the kernel's
//! uniprocessor discipline and their receive operations block the calling
//! OS thread in real time (even when the kernel runs on the virtual
//! clock).

use crate::clock::Time;
use crate::constraint::Constraint;
use crate::error::{KernelError, SendError};
use crate::kernel::Kernel;
use crate::message::{Envelope, MatchSpec, Message, ReplyToken};
use crate::record::{RunState, ThreadId};
use crate::sched::{self};
use crate::stats::StatCounters;
use crate::timer::{TimerId, TimerKind};
use parking_lot::Condvar;
use std::sync::Arc;
use std::time::Duration;

/// A mailbox connecting an external OS thread to a [`Kernel`].
///
/// Created by [`Kernel::external`]. Dropping the port terminates its
/// mailbox; kernel threads synchronously waiting on it observe
/// [`KernelError::PeerGone`].
pub struct ExternalPort {
    kernel: Kernel,
    id: ThreadId,
    cv: Arc<Condvar>,
}

impl ExternalPort {
    pub(crate) fn new(kernel: Kernel, id: ThreadId) -> Self {
        let cv = {
            let state = kernel.inner.state.lock();
            Arc::clone(&state.rec(id).expect("external record exists").cv)
        };
        ExternalPort { kernel, id, cv }
    }

    /// The thread id kernel threads can use to send messages to this port.
    #[must_use]
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// The kernel this port belongs to.
    #[must_use]
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Sends a message to a kernel thread, without a constraint.
    ///
    /// # Errors
    ///
    /// Fails if the target does not exist, has terminated, or the kernel is
    /// shutting down.
    pub fn send(&self, to: ThreadId, msg: Message) -> Result<(), SendError> {
        self.send_with(to, msg, None)
    }

    /// Sends a message to a kernel thread with an explicit constraint.
    ///
    /// # Errors
    ///
    /// Fails if the target does not exist, has terminated, or the kernel is
    /// shutting down.
    pub fn send_with(
        &self,
        to: ThreadId,
        msg: Message,
        constraint: Option<Constraint>,
    ) -> Result<(), SendError> {
        let inner = &self.kernel.inner;
        let mut state = inner.state.lock();
        let seq = state.send_seq;
        state.send_seq += 1;
        let env = Envelope {
            from: Some(self.id),
            msg,
            constraint,
            reply_to: None,
            in_reply: None,
            seq,
        };
        sched::enqueue(&mut state, &inner.stats, to, env)?;
        // Kick the dispatcher in case the kernel was idle.
        inner.reschedule(&mut state);
        Ok(())
    }

    /// Schedules `msg` for delivery to a kernel thread at the absolute
    /// kernel time `at` — timestamped delivery from outside the kernel.
    ///
    /// This is the injection point for *replayed* traffic: an external
    /// driver (e.g. a trace replayer assembling its session) can schedule
    /// work at a recorded virtual timestamp before the virtual clock
    /// starts advancing, instead of racing the kernel with an immediate
    /// send. A deadline at or before the current kernel time delivers as
    /// soon as the kernel next dispatches. Like all timer deliveries, a
    /// target that terminates before the deadline silently drops the
    /// message.
    ///
    /// # Errors
    ///
    /// Fails if the target does not exist (or already terminated) or the
    /// kernel is shutting down.
    pub fn send_at(&self, to: ThreadId, at: Time, msg: Message) -> Result<TimerId, SendError> {
        let inner = &self.kernel.inner;
        let mut state = inner.state.lock();
        if state.shutdown {
            return Err(SendError::Shutdown);
        }
        if state.rec(to).is_none() {
            return Err(SendError::UnknownThread(to));
        }
        let id = sched::add_timer(
            &mut state,
            at,
            TimerKind::Deliver {
                to,
                msg,
                constraint: None,
            },
        );
        // The dispatcher may need to shorten its sleep for the new
        // deadline.
        inner.reschedule(&mut state);
        Ok(id)
    }

    /// Sends a message and blocks the calling OS thread until the kernel
    /// thread replies.
    ///
    /// # Errors
    ///
    /// Fails if the target is unknown, terminates before replying, or the
    /// kernel shuts down.
    pub fn send_sync(&self, to: ThreadId, msg: Message) -> Result<Envelope, KernelError> {
        let inner = &self.kernel.inner;
        let token = {
            let mut state = inner.state.lock();
            let token = state.next_token;
            state.next_token += 1;
            let seq = state.send_seq;
            state.send_seq += 1;
            let env = Envelope {
                from: Some(self.id),
                msg,
                constraint: None,
                reply_to: Some(ReplyToken(token)),
                in_reply: None,
                seq,
            };
            sched::enqueue(&mut state, &inner.stats, to, env).map_err(KernelError::from)?;
            StatCounters::bump(&inner.stats.sync_sends);
            state.pending_tokens.insert(token);
            if let Some(rec) = state.rec_mut(self.id) {
                rec.waiting_on = Some(to);
            }
            inner.reschedule(&mut state);
            token
        };
        let spec = MatchSpec::Reply(token);
        let out = self.blocking_recv(&spec, None);
        let mut state = inner.state.lock();
        state.pending_tokens.remove(&token);
        if let Some(rec) = state.rec_mut(self.id) {
            rec.waiting_on = None;
        }
        out.ok_or(KernelError::Shutdown).and_then(|r| r)
    }

    /// Blocks until a message matching `spec` arrives at this port.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Shutdown`] when the kernel shuts down.
    pub fn recv_matching(&self, spec: &MatchSpec) -> Result<Envelope, KernelError> {
        self.blocking_recv(spec, None).expect("no timeout given")
    }

    /// Blocks until any message arrives at this port.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Shutdown`] when the kernel shuts down.
    pub fn recv(&self) -> Result<Envelope, KernelError> {
        self.recv_matching(&MatchSpec::Any)
    }

    /// Like [`ExternalPort::recv_matching`] with a wall-clock timeout;
    /// `None` on timeout.
    pub fn recv_timeout(&self, spec: &MatchSpec, timeout: Duration) -> Option<Envelope> {
        self.blocking_recv(spec, Some(timeout)).and_then(Result::ok)
    }

    /// Current kernel time (convenience).
    #[must_use]
    pub fn now(&self) -> Time {
        self.kernel.now()
    }

    /// Waits on the port's condvar until a matching message is queued.
    /// Outer `None` = timed out; inner `Err` = shutdown/peer-gone.
    fn blocking_recv(
        &self,
        spec: &MatchSpec,
        timeout: Option<Duration>,
    ) -> Option<Result<Envelope, KernelError>> {
        let inner = &self.kernel.inner;
        let deadline = timeout.map(|d| std::time::Instant::now() + d);
        let mut state = inner.state.lock();
        loop {
            if state.shutdown {
                return Some(Err(KernelError::Shutdown));
            }
            {
                let Some(rec) = state.rec_mut(self.id) else {
                    return Some(Err(KernelError::Shutdown));
                };
                if let Some(peer) = rec.peer_gone.take() {
                    rec.waiting_on = None;
                    return Some(Err(KernelError::PeerGone(peer)));
                }
                if let Some(idx) = rec.find_match(spec) {
                    let env = rec.mailbox.remove(idx).expect("index from find_match");
                    return Some(Ok(env));
                }
            }
            match deadline {
                Some(dl) => {
                    let now = std::time::Instant::now();
                    if now >= dl {
                        return None;
                    }
                    let res = self.cv.wait_for(&mut state, dl - now);
                    if res.timed_out() {
                        // Re-check the mailbox once more before reporting
                        // the timeout.
                        let rec = state.rec_mut(self.id)?;
                        if let Some(idx) = rec.find_match(spec) {
                            let env = rec.mailbox.remove(idx).expect("index from find_match");
                            return Some(Ok(env));
                        }
                        return None;
                    }
                }
                None => self.cv.wait(&mut state),
            }
        }
    }
}

impl Drop for ExternalPort {
    fn drop(&mut self) {
        let inner = &self.kernel.inner;
        let mut state = inner.state.lock();
        if state.rec(self.id).is_some() {
            sched::terminate(&mut state, self.id);
            // terminate() keeps the record for diagnostics; mark it Done so
            // senders fail fast.
            if let Some(rec) = state.rec_mut(self.id) {
                rec.state = RunState::Done;
            }
            inner.reschedule(&mut state);
        }
    }
}

impl std::fmt::Debug for ExternalPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExternalPort")
            .field("id", &self.id)
            .finish()
    }
}
