//! The kernel: owns all threads, the clock, and the dispatcher.

use crate::clock::{ClockMode, Time};
use crate::constraint::Priority;
use crate::ctx::{Ctx, SpawnOptions};
use crate::error::KernelError;
use crate::external::ExternalPort;
use crate::record::{CodeFn, Flow, ThreadId, ThreadRec};
use crate::sched::{self, KState, SchedConfig};
use crate::stats::{KernelStats, StatCounters};
use parking_lot::{Condvar, Mutex};
use std::fmt;
use std::fmt::Write as _;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

std::thread_local! {
    /// True on OS threads that back kernel threads (user threads and the
    /// dispatcher); used to reject blocking kernel-management calls that
    /// would deadlock if made from inside.
    static IS_KERNEL_THREAD: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

pub(crate) fn on_kernel_thread() -> bool {
    IS_KERNEL_THREAD.with(|c| c.get())
}

/// Configuration for a [`Kernel`].
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// Real or virtual time; see [`ClockMode`].
    pub clock: ClockMode,
    /// Enables the priority-inheritance scheme of §4: a thread's effective
    /// priority is raised by more urgent messages waiting in its queue and
    /// by threads synchronously blocked on it.
    pub priority_inheritance: bool,
    /// Enables preemption at message operations: a thread that wakes a more
    /// urgent thread yields the CPU to it immediately.
    pub preemptive: bool,
    /// Enables priority scheduling altogether; with this off the scheduler
    /// is plain FIFO (used by the control-latency ablation experiment).
    pub priority_scheduling: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            clock: ClockMode::Real,
            priority_inheritance: true,
            preemptive: true,
            priority_scheduling: true,
        }
    }
}

impl KernelConfig {
    /// A default-configured kernel on the virtual clock, for deterministic
    /// tests.
    #[must_use]
    pub fn virtual_time() -> Self {
        KernelConfig {
            clock: ClockMode::Virtual,
            ..KernelConfig::default()
        }
    }
}

pub(crate) struct KernelInner {
    pub(crate) state: Mutex<KState>,
    /// Notified on every scheduling-relevant state change; the dispatcher
    /// and quiescence waiters sleep on it.
    pub(crate) cv_global: Condvar,
    pub(crate) epoch: std::time::Instant,
    pub(crate) cfg: SchedConfig,
    pub(crate) stats: StatCounters,
    pub(crate) joins: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl KernelInner {
    /// Current kernel time under the lock-holder's view of the world.
    pub(crate) fn now(&self, state: &KState) -> Time {
        match self.cfg.clock {
            ClockMode::Real => {
                Time::from_nanos(u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX))
            }
            ClockMode::Virtual => state.vnow,
        }
    }

    pub(crate) fn reschedule(&self, state: &mut KState) {
        let now = self.now(state);
        sched::reschedule(state, &self.cfg, &self.stats, now);
        self.cv_global.notify_all();
    }
}

/// A handle to a message-based thread kernel.
///
/// The kernel owns a set of user-level threads with uniprocessor semantics
/// (at most one runs at a time), a timer wheel, and a clock. Handles are
/// cheap to clone; the kernel itself lives until [`Kernel::shutdown`].
///
/// See the [crate documentation](crate) for the programming model and an
/// example.
#[derive(Clone)]
pub struct Kernel {
    pub(crate) inner: Arc<KernelInner>,
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut state = self.inner.state.lock();
        f.debug_struct("Kernel")
            .field("clock", &self.inner.cfg.clock)
            .field("threads", &state.threads.len())
            .field("running", &state.running)
            .field("now", &self.inner.now(&state))
            .field("idle", &state.is_idle())
            .finish()
    }
}

impl Kernel {
    /// Creates a kernel and starts its dispatcher.
    #[must_use]
    pub fn new(cfg: KernelConfig) -> Kernel {
        let inner = Arc::new(KernelInner {
            state: Mutex::new(KState::new()),
            cv_global: Condvar::new(),
            epoch: std::time::Instant::now(),
            cfg: SchedConfig {
                clock: cfg.clock,
                priority_inheritance: cfg.priority_inheritance,
                preemptive: cfg.preemptive,
                priority_scheduling: cfg.priority_scheduling,
            },
            stats: StatCounters::default(),
            joins: Mutex::new(Vec::new()),
        });
        let kernel = Kernel {
            inner: Arc::clone(&inner),
        };
        let dispatcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("mbthread-dispatcher".into())
                .spawn(move || dispatcher_main(&inner))
                .expect("spawn dispatcher")
        };
        kernel.inner.joins.lock().push(dispatcher);
        kernel
    }

    /// The clock mode this kernel runs under.
    #[must_use]
    pub fn clock_mode(&self) -> ClockMode {
        self.inner.cfg.clock
    }

    /// Current kernel time.
    #[must_use]
    pub fn now(&self) -> Time {
        let state = self.inner.state.lock();
        self.inner.now(&state)
    }

    /// A snapshot of the kernel's activity counters.
    #[must_use]
    pub fn stats(&self) -> KernelStats {
        self.inner.stats.snapshot()
    }

    /// Spawns a user-level thread running `code`.
    ///
    /// The thread starts runnable: its [`CodeFn::on_start`] hook runs as
    /// soon as it is first scheduled, after which the code function is
    /// invoked once per received message.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Shutdown`] if the kernel is shutting down.
    pub fn spawn(
        &self,
        opts: impl Into<SpawnOptions>,
        code: impl CodeFn,
    ) -> Result<ThreadId, KernelError> {
        let opts = opts.into();
        let id = {
            let mut state = self.inner.state.lock();
            if state.shutdown {
                return Err(KernelError::Shutdown);
            }
            let id = state.alloc_thread_id();
            state
                .threads
                .insert(id, ThreadRec::new(opts.name.clone(), opts.priority, false));
            state.make_runnable(id);
            StatCounters::bump(&self.inner.stats.threads_spawned);
            self.inner.reschedule(&mut state);
            id
        };
        let inner = Arc::clone(&self.inner);
        let code = Box::new(code);
        let handle = std::thread::Builder::new()
            .name(format!("mbt-{}", opts.name))
            .spawn(move || thread_main(&inner, id, code))
            .expect("spawn backing OS thread");
        self.inner.joins.lock().push(handle);
        Ok(id)
    }

    /// Creates a mailbox for an OS thread outside the kernel (e.g. `main`
    /// in an example, or a network receiver). The port can send messages to
    /// kernel threads — including synchronously — and receive replies, but
    /// does not participate in kernel scheduling.
    #[must_use]
    pub fn external(&self, name: &str) -> ExternalPort {
        let id = {
            let mut state = self.inner.state.lock();
            let id = state.alloc_thread_id();
            state
                .threads
                .insert(id, ThreadRec::new(name.to_owned(), Priority::NORMAL, true));
            id
        };
        ExternalPort::new(self.clone(), id)
    }

    /// Raises a **construction barrier**: until the returned
    /// [`ClockHold`] is [released](ClockHold::release) (or dropped), the
    /// virtual clock will not jump to a timer deadline.
    ///
    /// This closes the virtual-clock construction race: a program that
    /// arms timers while an external thread is still spawning kernel
    /// threads would otherwise see the clock leap to the first deadline
    /// *between* spawns, making traces depend on how fast the spawning
    /// thread runs. Freeze the clock first, build the whole program,
    /// then release — every timer armed during construction fires
    /// relative to the same t=0 anchor, no matter how slowly the
    /// external thread assembled things. (The pipeline layer's explicit
    /// `start_flow` barrier is the same idea one level up; this makes
    /// raw mbthread programs deterministic by default.)
    ///
    /// Holds nest: the clock stays frozen until every hold is released.
    /// Under the real clock this is a no-op (wall time cannot be held
    /// back). Threads keep running and messages keep flowing while the
    /// clock is frozen — only the idle-time jump is gated.
    ///
    /// Do not call [`Kernel::wait_quiescent`] while a hold is alive and
    /// a timer is armed: quiescence then requires the very clock jump
    /// the hold forbids, so the wait cannot complete until the hold is
    /// released. Release first, then wait.
    pub fn freeze_clock(&self) -> ClockHold {
        {
            let mut state = self.inner.state.lock();
            state.clock_holds += 1;
        }
        ClockHold {
            kernel: self.clone(),
            released: false,
        }
    }

    /// Blocks the calling (non-kernel) thread until the kernel is idle: no
    /// thread running or runnable and no pending timer. Under the virtual
    /// clock this means all work that can happen has happened.
    ///
    /// # Panics
    ///
    /// Panics if called from inside a kernel thread, which would deadlock.
    pub fn wait_quiescent(&self) {
        assert!(
            !on_kernel_thread(),
            "wait_quiescent must not be called from a kernel thread"
        );
        let mut state = self.inner.state.lock();
        loop {
            if state.shutdown || state.is_idle() {
                return;
            }
            self.inner.cv_global.wait(&mut state);
        }
    }

    /// Whether shutdown has been initiated.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.inner.state.lock().shutdown
    }

    /// A human-readable dump of every thread's state, for debugging
    /// deadlocks.
    #[must_use]
    pub fn thread_dump(&self) -> String {
        let state = self.inner.state.lock();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "kernel @ {} (running: {:?})",
            self.inner.now(&state),
            state.running
        );
        for (id, rec) in &state.threads {
            let _ = writeln!(
                out,
                "  {id} {:24} {:?} queued={} wait={:?} sleeping={} cur={:?} ext={}",
                rec.name,
                rec.state,
                rec.mailbox.len(),
                rec.wait,
                rec.sleeping,
                rec.cur,
                rec.external,
            );
        }
        out
    }

    /// Shuts the kernel down: blocked operations in every thread return
    /// [`KernelError::Shutdown`], all backing OS threads are joined, and
    /// the dispatcher exits. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if called from inside a kernel thread, or (re-)panics with
    /// the first panic message captured from a user thread.
    pub fn shutdown(&self) {
        assert!(
            !on_kernel_thread(),
            "shutdown must not be called from a kernel thread"
        );
        let panic_info = {
            let mut state = self.inner.state.lock();
            state.shutdown = true;
            for rec in state.threads.values() {
                rec.cv.notify_all();
            }
            self.inner.cv_global.notify_all();
            state.panic.clone()
        };
        let handles: Vec<_> = std::mem::take(&mut *self.inner.joins.lock());
        for handle in handles {
            let _ = handle.join();
        }
        if let Some((name, msg)) = panic_info {
            panic!("kernel thread '{name}' panicked: {msg}");
        }
    }
}

/// An active construction barrier from [`Kernel::freeze_clock`]: the
/// virtual clock cannot jump to a timer deadline while this (or any
/// other hold) is alive. Released explicitly with [`ClockHold::release`]
/// or implicitly on drop.
#[must_use = "the clock unfreezes when the hold is dropped"]
pub struct ClockHold {
    kernel: Kernel,
    released: bool,
}

impl ClockHold {
    /// Lowers the barrier. When the last hold is released the kernel
    /// resumes advancing virtual time normally.
    pub fn release(mut self) {
        self.do_release();
    }

    fn do_release(&mut self) {
        if self.released {
            return;
        }
        self.released = true;
        let mut state = self.kernel.inner.state.lock();
        state.clock_holds = state.clock_holds.saturating_sub(1);
        // Wake the dispatcher so a now-permitted jump happens promptly.
        self.kernel.inner.cv_global.notify_all();
    }
}

impl Drop for ClockHold {
    fn drop(&mut self) {
        self.do_release();
    }
}

impl fmt::Debug for ClockHold {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClockHold")
            .field("released", &self.released)
            .finish()
    }
}

/// Main loop of a user-level thread's backing OS thread.
fn thread_main(inner: &Arc<KernelInner>, me: ThreadId, mut code: Box<dyn CodeFn>) {
    IS_KERNEL_THREAD.with(|c| c.set(true));
    let kernel = Kernel {
        inner: Arc::clone(inner),
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        let mut ctx = Ctx::new(&kernel, me);
        // Wait to be scheduled for the first time.
        if ctx.park_initial().is_err() {
            return;
        }
        code.on_start(&mut ctx);
        while let Ok(env) = ctx.main_receive() {
            let flow = code.on_message(&mut ctx, env);
            ctx.clear_current_constraint();
            if flow == Flow::Stop {
                break;
            }
        }
    }));

    let mut state = inner.state.lock();
    if let Err(payload) = result {
        let msg = panic_message(payload.as_ref());
        let name = state
            .rec(me)
            .map_or_else(|| me.to_string(), |r| r.name.clone());
        if state.panic.is_none() {
            state.panic = Some((name, msg));
        }
        // A panicking thread poisons the kernel: everything shuts down so
        // the failure is loud rather than a silent hang.
        state.shutdown = true;
        for rec in state.threads.values() {
            rec.cv.notify_all();
        }
    }
    sched::terminate(&mut state, me);
    inner.reschedule(&mut state);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// The dispatcher: fires timers, advances virtual time when the kernel is
/// otherwise blocked, and grants the CPU when no user thread is in a
/// position to do so itself.
fn dispatcher_main(inner: &Arc<KernelInner>) {
    IS_KERNEL_THREAD.with(|c| c.set(true));
    let mut state = inner.state.lock();
    loop {
        if state.shutdown {
            // Wake everyone so blocked threads observe shutdown.
            for rec in state.threads.values() {
                rec.cv.notify_all();
            }
            inner.cv_global.notify_all();
            return;
        }
        let now = inner.now(&state);
        sched::reschedule(&mut state, &inner.cfg, &inner.stats, now);

        if state.running.is_none() && !state.has_runnable() {
            match state.next_timer_deadline() {
                Some(at) => match inner.cfg.clock {
                    ClockMode::Virtual => {
                        if state.clock_holds > 0 {
                            // A construction barrier is up: the program is
                            // still being assembled from outside, so do
                            // not jump to the deadline — wait for the
                            // release (or for new work) instead.
                            inner.cv_global.wait(&mut state);
                            continue;
                        }
                        // Everything is blocked: jump time forward to the
                        // next deadline. This is the only place virtual
                        // time advances.
                        state.vnow = state.vnow.max(at);
                        continue;
                    }
                    ClockMode::Real => {
                        let dur = at - now;
                        let _ = inner
                            .cv_global
                            .wait_for(&mut state, dur.max(Duration::from_micros(50)));
                    }
                },
                None => {
                    // Fully idle: tell quiescence waiters, then sleep until
                    // external input arrives.
                    inner.cv_global.notify_all();
                    inner.cv_global.wait(&mut state);
                }
            }
        } else {
            // Work is in progress; sleep until the next timer (real time)
            // or until a state change needs us.
            match (inner.cfg.clock, state.next_timer_deadline()) {
                (ClockMode::Real, Some(at)) => {
                    let dur = at - inner.now(&state);
                    let _ = inner
                        .cv_global
                        .wait_for(&mut state, dur.max(Duration::from_micros(50)));
                }
                _ => {
                    inner.cv_global.wait(&mut state);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Message, Tag};

    #[test]
    fn kernel_starts_and_shuts_down_cleanly() {
        let kernel = Kernel::new(KernelConfig::default());
        assert!(!kernel.is_shutdown());
        kernel.shutdown();
        assert!(kernel.is_shutdown());
        // Idempotent.
        kernel.shutdown();
    }

    #[test]
    fn spawn_after_shutdown_fails() {
        let kernel = Kernel::new(KernelConfig::default());
        kernel.shutdown();
        let err = kernel
            .spawn("late", |_: &mut Ctx<'_>, _| Flow::Stop)
            .unwrap_err();
        assert_eq!(err, KernelError::Shutdown);
    }

    #[test]
    fn debug_and_dump_are_nonempty() {
        let kernel = Kernel::new(KernelConfig::virtual_time());
        kernel
            .spawn("idler", |_: &mut Ctx<'_>, _| Flow::Stop)
            .unwrap();
        kernel.wait_quiescent();
        assert!(format!("{kernel:?}").contains("Kernel"));
        assert!(kernel.thread_dump().contains("idler"));
        kernel.shutdown();
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn user_thread_panic_is_reported_at_shutdown() {
        let kernel = Kernel::new(KernelConfig::default());
        let id = kernel
            .spawn("bomb", |_: &mut Ctx<'_>, _env| -> Flow { panic!("boom") })
            .unwrap();
        let port = kernel.external("main");
        port.send(id, Message::signal(Tag(0))).unwrap();
        // Let the bomb go off before collecting the report.
        kernel.wait_quiescent();
        kernel.shutdown();
    }
}
