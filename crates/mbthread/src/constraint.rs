//! Priorities and message constraints.
//!
//! The scheduler orders threads by *urgency*: a total order over
//! [`Constraint`]s in which a higher [`Priority`] always wins and, between
//! equal priorities, an earlier deadline wins (earliest-deadline-first
//! within a priority band). A thread's *effective* constraint is derived
//! from the message it is processing, per §4 of the paper.

use crate::clock::Time;
use std::cmp::Ordering;
use std::fmt;

/// A static scheduling priority. Larger values are more urgent.
///
/// Priorities order threads that have no message constraint, and act as the
/// priority component of a [`Constraint`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub i32);

impl Priority {
    /// The default priority for data-processing threads.
    pub const NORMAL: Priority = Priority(0);
    /// A background priority below [`Priority::NORMAL`].
    pub const LOW: Priority = Priority(-10);
    /// An elevated priority for latency-sensitive threads (e.g. audio
    /// pumps).
    pub const HIGH: Priority = Priority(10);
    /// The priority at which control events are delivered. The paper
    /// executes control handlers "with higher priority than potentially
    /// long-running data processing" (§2.2), so this sits above
    /// [`Priority::HIGH`].
    pub const CONTROL: Priority = Priority(100);
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A scheduling constraint attached to a message.
///
/// Constraints travel with messages: the effective priority of a thread is
/// derived from the constraint of the message that the thread is currently
/// processing or, if the thread is waiting for the CPU, from the constraint
/// of the first message in its incoming queue. In the Infopipe layer, pumps
/// assign constraints and messages between coroutines inherit the constraint
/// of the message the sender is processing, so one pump's constraint governs
/// scheduling across its entire coroutine set.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// The priority band of this constraint.
    pub priority: Priority,
    /// An optional absolute deadline. Among equal priorities, earlier
    /// deadlines are scheduled first; a missing deadline is least urgent
    /// within the band.
    pub deadline: Option<Time>,
}

impl Constraint {
    /// Creates a constraint with the given priority and no deadline.
    #[must_use]
    pub const fn priority(priority: Priority) -> Self {
        Constraint {
            priority,
            deadline: None,
        }
    }

    /// Creates a constraint with a priority and an absolute deadline.
    #[must_use]
    pub const fn with_deadline(priority: Priority, deadline: Time) -> Self {
        Constraint {
            priority,
            deadline: Some(deadline),
        }
    }

    /// Compares two constraints by urgency. `Greater` means `self` is more
    /// urgent and should run first.
    #[must_use]
    pub fn urgency_cmp(&self, other: &Constraint) -> Ordering {
        self.priority.cmp(&other.priority).then_with(|| {
            // Within a priority band, an earlier deadline is more urgent,
            // and any deadline beats no deadline.
            match (self.deadline, other.deadline) {
                (Some(a), Some(b)) => b.cmp(&a),
                (Some(_), None) => Ordering::Greater,
                (None, Some(_)) => Ordering::Less,
                (None, None) => Ordering::Equal,
            }
        })
    }

    /// Returns the more urgent of two constraints.
    #[must_use]
    pub fn max_urgency(self, other: Constraint) -> Constraint {
        if self.urgency_cmp(&other) == Ordering::Less {
            other
        } else {
            self
        }
    }
}

impl Default for Constraint {
    fn default() -> Self {
        Constraint::priority(Priority::NORMAL)
    }
}

impl From<Priority> for Constraint {
    fn from(p: Priority) -> Self {
        Constraint::priority(p)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.deadline {
            Some(d) => write!(f, "{}@{}", self.priority, d),
            None => write!(f, "{}", self.priority),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_dominates_deadline() {
        let low_soon = Constraint::with_deadline(Priority::LOW, Time::from_nanos(1));
        let high_late = Constraint::with_deadline(Priority::HIGH, Time::from_secs(100));
        assert_eq!(high_late.urgency_cmp(&low_soon), Ordering::Greater);
    }

    #[test]
    fn earlier_deadline_wins_within_band() {
        let soon = Constraint::with_deadline(Priority::NORMAL, Time::from_millis(1));
        let late = Constraint::with_deadline(Priority::NORMAL, Time::from_millis(2));
        assert_eq!(soon.urgency_cmp(&late), Ordering::Greater);
        assert_eq!(soon.max_urgency(late), soon);
    }

    #[test]
    fn deadline_beats_no_deadline() {
        let with = Constraint::with_deadline(Priority::NORMAL, Time::from_secs(1));
        let without = Constraint::priority(Priority::NORMAL);
        assert_eq!(with.urgency_cmp(&without), Ordering::Greater);
        assert_eq!(without.urgency_cmp(&with), Ordering::Less);
        assert_eq!(without.urgency_cmp(&without), Ordering::Equal);
    }

    #[test]
    fn control_priority_tops_bands() {
        assert!(Priority::CONTROL > Priority::HIGH);
        assert!(Priority::HIGH > Priority::NORMAL);
        assert!(Priority::NORMAL > Priority::LOW);
    }
}
