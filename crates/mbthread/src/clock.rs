//! Kernel time: a nanosecond counter since kernel start, backed by either
//! the OS monotonic clock or a virtual clock that only advances when the
//! kernel is otherwise idle.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in kernel time, measured in nanoseconds since the kernel epoch
/// (the instant the [`Kernel`](crate::Kernel) was created).
///
/// `Time` is used for timer deadlines, message constraints, and statistics.
/// Under [`ClockMode::Virtual`] it has no relation to wall-clock time.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(u64);

impl Time {
    /// The kernel epoch.
    pub const ZERO: Time = Time(0);

    /// The largest representable time; useful as an "infinitely far"
    /// deadline sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from nanoseconds since the kernel epoch.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        Time(nanos)
    }

    /// Creates a time from microseconds since the kernel epoch.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        Time(micros * 1_000)
    }

    /// Creates a time from milliseconds since the kernel epoch.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        Time(millis * 1_000_000)
    }

    /// Creates a time from seconds since the kernel epoch.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Time(secs * 1_000_000_000)
    }

    /// Nanoseconds since the kernel epoch.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the kernel epoch.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since the kernel epoch.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The time elapsed since `earlier`, or [`Duration::ZERO`] if `earlier`
    /// is in the future.
    #[must_use]
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`Time::MAX`].
    #[must_use]
    pub fn saturating_add(self, d: Duration) -> Time {
        Time(self.0.saturating_add(duration_to_nanos(d)))
    }
}

fn duration_to_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl Add<Duration> for Time {
    type Output = Time;

    fn add(self, rhs: Duration) -> Time {
        self.saturating_add(rhs)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;

    /// Returns the duration between two times, saturating to zero if `rhs`
    /// is later than `self`.
    fn sub(self, rhs: Time) -> Duration {
        self.saturating_since(rhs)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0 / 1_000;
        let frac = self.0 % 1_000;
        write!(f, "t+{us}.{frac:03}us")
    }
}

/// Selects the time source driving the kernel's timers and [`Time`] values.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum ClockMode {
    /// Use the OS monotonic clock. Timers fire in real time; this is the
    /// mode used by examples and benchmarks.
    #[default]
    Real,
    /// Use a virtual clock that jumps straight to the next timer deadline
    /// whenever every thread in the kernel is blocked. Pipelines become
    /// deterministic: a clocked pump "running" at 30 Hz executes its ticks
    /// back-to-back with virtual timestamps exactly 1/30 s apart.
    Virtual,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = Time::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!(t.as_micros(), 5_000);
        assert_eq!(t.as_millis(), 5);
        let later = t + Duration::from_micros(250);
        assert_eq!(later.as_nanos(), 5_250_000);
        assert_eq!(later - t, Duration::from_micros(250));
        // Subtraction saturates rather than panicking.
        assert_eq!(t - later, Duration::ZERO);
    }

    #[test]
    fn time_saturates_at_max() {
        let t = Time::MAX.saturating_add(Duration::from_secs(1));
        assert_eq!(t, Time::MAX);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Time::from_micros(3)).is_empty());
        assert_eq!(format!("{}", Time::from_nanos(1_500)), "t+1.500us");
    }

    #[test]
    fn ordering_follows_nanos() {
        assert!(Time::from_nanos(1) < Time::from_nanos(2));
        assert!(Time::ZERO < Time::MAX);
    }
}
