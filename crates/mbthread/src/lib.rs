//! A message-based user-level thread package.
//!
//! This crate reproduces the threading substrate described in §4 of
//! *Thread Transparency in Information Flow Middleware* (Koster, Black,
//! Huang, Walpole, Pu; Middleware 2001): a user-level thread package in
//! which
//!
//! * each thread consists of a **code function** and a **queue for incoming
//!   messages**; the code function is invoked once per received message and
//!   may suspend mid-call waiting for further messages,
//! * inter-thread communication is performed by **sending messages**, either
//!   asynchronously or synchronously (send and wait for the reply),
//! * scheduling is controlled by **static thread priorities** and by
//!   **constraints attached to messages**: the effective priority of a
//!   thread is derived from the constraint of the message it is currently
//!   processing, or, while it waits for the CPU, from the constraint of the
//!   first message in its incoming queue,
//! * an optional **priority-inheritance** scheme raises a thread's effective
//!   priority when a message with a higher constraint than the one being
//!   processed is waiting in its queue,
//! * timers and external events (network packets, signals) are **mapped to
//!   messages**, so all stimuli arrive through the uniform message
//!   interface.
//!
//! Like the paper's platform, the package has *uniprocessor semantics*: at
//! most one thread of a [`Kernel`] executes at any instant. Each user-level
//! thread is backed by an OS thread, but a kernel-wide hand-off protocol
//! guarantees mutual exclusion, which is what makes the Infopipe layer's
//! synchronized-object components and coroutine sets correct without any
//! per-component locks. A context switch is therefore a park/unpark pair —
//! the microsecond-scale cost that §4 of the paper reports, two orders of
//! magnitude above a plain function call.
//!
//! The kernel clock can be **real** or **virtual**. Under the virtual clock,
//! time advances only when every thread is blocked, which makes timing-
//! dependent pipelines (clocked pumps, network latency models) fully
//! deterministic in tests.
//!
//! # Example
//!
//! ```
//! use mbthread::{Flow, Kernel, KernelConfig, Message, Tag};
//!
//! # fn main() {
//! let kernel = Kernel::new(KernelConfig::default());
//! const PING: Tag = Tag(1);
//!
//! let echo = kernel
//!     .spawn("echo", |ctx: &mut mbthread::Ctx<'_>, env: mbthread::Envelope| {
//!         // Reply to every message with the same body.
//!         let n: u64 = *env.message().body_ref::<u64>().unwrap();
//!         ctx.reply(&env, Message::new(PING, n + 1)).ok();
//!         Flow::Continue
//!     })
//!     .unwrap();
//!
//! let port = kernel.external("main");
//! let reply = port.send_sync(echo, Message::new(PING, 41u64)).unwrap();
//! assert_eq!(*reply.message().body_ref::<u64>().unwrap(), 42);
//! kernel.shutdown();
//! # }
//! ```

mod clock;
mod constraint;
mod ctx;
mod error;
mod external;
mod kernel;
mod message;
mod record;
mod sched;
mod stats;
mod timer;

pub use clock::{ClockMode, Time};
pub use constraint::{Constraint, Priority};
pub use ctx::{Ctx, PendingReply, SpawnOptions, SyncOutcome};
pub use error::{KernelError, SendError};
pub use external::ExternalPort;
pub use kernel::{ClockHold, Kernel, KernelConfig};
pub use message::{Body, Envelope, MatchSpec, Message, Tag};
pub use record::{CodeFn, Flow, ThreadId};
pub use stats::KernelStats;
pub use timer::TimerId;
