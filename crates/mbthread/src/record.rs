//! Per-thread bookkeeping: identities, run states, and the code-function
//! trait that user threads implement.

use crate::constraint::{Constraint, Priority};
use crate::ctx::Ctx;
use crate::message::{Envelope, MatchSpec};
use parking_lot::Condvar;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Identifies a thread within its [`Kernel`](crate::Kernel).
///
/// Thread ids are never reused within a kernel's lifetime.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub(crate) u64);

impl ThreadId {
    /// Constructs a thread id from a raw value. Only meaningful within the
    /// kernel that issued it; intended for tests and diagnostics.
    #[doc(hidden)]
    #[must_use]
    pub fn from_raw(raw: u64) -> ThreadId {
        ThreadId(raw)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread:{}", self.0)
    }
}

/// Tells the kernel whether a code function wants to keep running after
/// handling a message.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Flow {
    /// Wait for the next message.
    #[default]
    Continue,
    /// Terminate this thread; its resources are released once the code
    /// function returns.
    Stop,
}

/// The behaviour of a user-level thread.
///
/// Unlike a conventional thread body, a code function is not called once at
/// thread creation: it is invoked **each time a message is received**, like
/// an event handler — but it may suspend mid-call (via [`Ctx::receive`],
/// synchronous sends, or sleeps) and be preempted at message operations, so
/// threads behave like extended finite state machines with real stacks.
///
/// Closures of type `FnMut(&mut Ctx<'_>, Envelope) -> Flow` implement this
/// trait, which is the common way to spawn simple threads; implement the
/// trait directly when per-thread state or a start hook is needed.
pub trait CodeFn: Send + 'static {
    /// Called once, before any message is delivered, when the thread is
    /// first scheduled. Useful for self-posting an initial tick.
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// Called once per received message.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, env: Envelope) -> Flow;
}

impl<F> CodeFn for F
where
    F: FnMut(&mut Ctx<'_>, Envelope) -> Flow + Send + 'static,
{
    fn on_message(&mut self, ctx: &mut Ctx<'_>, env: Envelope) -> Flow {
        self(ctx, env)
    }
}

/// Scheduler-visible state of a thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum RunState {
    /// Ready to run, waiting for the CPU.
    Runnable,
    /// The single thread currently executing.
    Running,
    /// Suspended waiting for a matching message (spec in
    /// [`ThreadRec::wait`]) or for a timer ([`ThreadRec::sleeping`]).
    Blocked,
    /// Terminated; kept for diagnostics until the kernel is dropped.
    Done,
}

/// Kernel-internal record for one thread (user-level or external port).
pub(crate) struct ThreadRec {
    pub(crate) name: String,
    pub(crate) static_pri: Priority,
    pub(crate) mailbox: VecDeque<Envelope>,
    pub(crate) state: RunState,
    /// Match spec for a blocked receive; `None` while not receive-blocked.
    pub(crate) wait: Option<MatchSpec>,
    /// True while blocked in a sleep (woken by a timer, not a message).
    pub(crate) sleeping: bool,
    /// Constraint of the message currently being processed (set by the
    /// thread main loop around each top-level delivery).
    pub(crate) cur: Option<Constraint>,
    /// True while the thread is inside a top-level message delivery, even
    /// if that message carried no constraint. Distinguishes "preempted
    /// mid-processing" from "waiting to dequeue the next message".
    pub(crate) processing: bool,
    /// The thread this one is blocked on in a synchronous send, for
    /// priority-inheritance donation chains.
    pub(crate) waiting_on: Option<ThreadId>,
    /// Set when the peer this thread was synchronously waiting on
    /// terminated; the blocked operation returns an error.
    pub(crate) peer_gone: Option<ThreadId>,
    /// Sequence stamp of the moment this thread last became runnable, for
    /// FIFO tie-breaking among equal urgencies.
    pub(crate) ready_seq: u64,
    /// Parks the backing OS thread (paired with the kernel mutex).
    pub(crate) cv: Arc<Condvar>,
    /// External ports are mailboxes for OS threads outside the kernel's
    /// uniprocessor discipline; they are never scheduled.
    pub(crate) external: bool,
}

impl ThreadRec {
    pub(crate) fn new(name: String, static_pri: Priority, external: bool) -> Self {
        ThreadRec {
            name,
            static_pri,
            mailbox: VecDeque::new(),
            state: if external {
                RunState::Blocked
            } else {
                RunState::Runnable
            },
            wait: None,
            sleeping: false,
            cur: None,
            processing: false,
            waiting_on: None,
            peer_gone: None,
            ready_seq: 0,
            cv: Arc::new(Condvar::new()),
            external,
        }
    }

    /// Index of the first queued envelope matching `spec`.
    pub(crate) fn find_match(&self, spec: &MatchSpec) -> Option<usize> {
        self.mailbox.iter().position(|env| spec.matches(env))
    }
}

impl fmt::Debug for ThreadRec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadRec")
            .field("name", &self.name)
            .field("state", &self.state)
            .field("queued", &self.mailbox.len())
            .field("wait", &self.wait)
            .field("sleeping", &self.sleeping)
            .field("cur", &self.cur)
            .finish()
    }
}
