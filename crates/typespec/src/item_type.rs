//! Item types: the runtime description of a flow's data format.
//!
//! The Infopipe engine is dynamically typed at connection points (items
//! travel as type-erased boxes), so "dynamic type-checking and evaluation
//! of possible compositions" (§2.3) works over these descriptors: a Rust
//! `TypeId` plus a human-readable name, with a wildcard for components that
//! handle any item (plain byte pipes, counters, tees).

use std::any::TypeId;
use std::fmt;

/// The format of the items in a flow.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ItemType {
    name: String,
    /// `None` for the wildcard and for named-only formats negotiated over
    /// the wire (a remote peer cannot share our `TypeId`s).
    id: Option<TypeId>,
}

impl ItemType {
    /// The item type for the Rust type `T`.
    #[must_use]
    pub fn of<T: 'static>() -> ItemType {
        ItemType {
            name: std::any::type_name::<T>().to_owned(),
            id: Some(TypeId::of::<T>()),
        }
    }

    /// A wildcard that matches any item type ("don't care").
    #[must_use]
    pub fn any() -> ItemType {
        ItemType {
            name: "*".to_owned(),
            id: None,
        }
    }

    /// A named format without a Rust type identity, as used when specs are
    /// marshalled across a netpipe.
    #[must_use]
    pub fn named(name: impl Into<String>) -> ItemType {
        ItemType {
            name: name.into(),
            id: None,
        }
    }

    /// The human-readable format name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this is the wildcard type.
    #[must_use]
    pub fn is_any(&self) -> bool {
        self.id.is_none() && self.name == "*"
    }

    /// Whether items of this type can flow where `other` is expected.
    ///
    /// The wildcard is compatible with everything. Two typed descriptors
    /// must have the same `TypeId`; descriptors that lost their `TypeId`
    /// in marshalling fall back to name equality.
    #[must_use]
    pub fn compatible_with(&self, other: &ItemType) -> bool {
        if self.is_any() || other.is_any() {
            return true;
        }
        match (self.id, other.id) {
            (Some(a), Some(b)) => a == b,
            _ => self.name == other.name,
        }
    }

    /// The more specific of two compatible types (a wildcard defers to the
    /// other side); `None` when incompatible.
    #[must_use]
    pub fn meet(&self, other: &ItemType) -> Option<ItemType> {
        if !self.compatible_with(other) {
            return None;
        }
        if self.is_any() {
            Some(other.clone())
        } else {
            Some(self.clone())
        }
    }
}

impl Default for ItemType {
    fn default() -> Self {
        ItemType::any()
    }
}

impl fmt::Display for ItemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_descriptors_match_by_type_id() {
        assert!(ItemType::of::<u32>().compatible_with(&ItemType::of::<u32>()));
        assert!(!ItemType::of::<u32>().compatible_with(&ItemType::of::<u64>()));
    }

    #[test]
    fn wildcard_matches_everything() {
        let any = ItemType::any();
        assert!(any.is_any());
        assert!(any.compatible_with(&ItemType::of::<String>()));
        assert!(ItemType::of::<String>().compatible_with(&any));
        assert!(any.compatible_with(&any));
    }

    #[test]
    fn named_formats_match_by_name() {
        let a = ItemType::named("mpeg-frame");
        let b = ItemType::named("mpeg-frame");
        let c = ItemType::named("raw-frame");
        assert!(a.compatible_with(&b));
        assert!(!a.compatible_with(&c));
        // A named format is compatible with a typed one only via name.
        assert!(!a.compatible_with(&ItemType::of::<u32>()));
    }

    #[test]
    fn meet_prefers_the_specific_side() {
        let any = ItemType::any();
        let typed = ItemType::of::<u8>();
        assert_eq!(any.meet(&typed), Some(typed.clone()));
        assert_eq!(typed.meet(&any), Some(typed.clone()));
        assert_eq!(typed.meet(&ItemType::of::<u16>()), None);
    }

    #[test]
    fn display_shows_name() {
        assert_eq!(ItemType::named("pcm").to_string(), "pcm");
        assert_eq!(ItemType::any().to_string(), "*");
    }
}
