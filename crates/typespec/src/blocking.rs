//! Blocking behaviour: what happens when a push meets a full buffer or a
//! pull meets an empty one (§2.3, third property).

use std::fmt;

/// Behaviour of a `push` into a component that cannot accept the item
/// immediately.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum OnFull {
    /// Suspend the pushing thread until space is available.
    #[default]
    Block,
    /// Drop the newly pushed item.
    DropNewest,
    /// Drop the oldest stored item to make room (keeps the flow fresh,
    /// useful for live video).
    DropOldest,
}

impl OnFull {
    /// Whether this policy can suspend the caller.
    #[must_use]
    pub fn may_block(self) -> bool {
        self == OnFull::Block
    }
}

impl fmt::Display for OnFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OnFull::Block => "block",
            OnFull::DropNewest => "drop-newest",
            OnFull::DropOldest => "drop-oldest",
        };
        f.write_str(s)
    }
}

/// Behaviour of a `pull` from a component with nothing to deliver.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum OnEmpty {
    /// Suspend the pulling thread until an item is available.
    #[default]
    Block,
    /// Return no item (`None`), letting the caller decide.
    ReturnNone,
}

impl OnEmpty {
    /// Whether this policy can suspend the caller.
    #[must_use]
    pub fn may_block(self) -> bool {
        self == OnEmpty::Block
    }
}

impl fmt::Display for OnEmpty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OnEmpty::Block => "block",
            OnEmpty::ReturnNone => "return-none",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_block() {
        assert_eq!(OnFull::default(), OnFull::Block);
        assert_eq!(OnEmpty::default(), OnEmpty::Block);
        assert!(OnFull::Block.may_block());
        assert!(!OnFull::DropNewest.may_block());
        assert!(!OnFull::DropOldest.may_block());
        assert!(OnEmpty::Block.may_block());
        assert!(!OnEmpty::ReturnNone.may_block());
    }

    #[test]
    fn displays_are_nonempty() {
        for p in [OnFull::Block, OnFull::DropNewest, OnFull::DropOldest] {
            assert!(!p.to_string().is_empty());
        }
        for p in [OnEmpty::Block, OnEmpty::ReturnNone] {
            assert!(!p.to_string().is_empty());
        }
    }
}
