//! Typespec transformations: how components derive the spec at their
//! output from the spec at their input.
//!
//! "We do not associate a fixed Typespec with each component, but let each
//! pipeline component transform a Typespec on each port to Typespecs on its
//! other ports" (§2.3). A decoder, for instance, maps a compressed-frame
//! spec to a raw-frame spec; a netpipe rewrites the location property; a
//! rate limiter narrows the frame-rate range.

use crate::error::TypeError;
use crate::typespec::Typespec;

/// A component's Typespec transformation from its in-port to its out-port.
///
/// Implementations analyse the information about the flow at one port and
/// derive information about the flow at the other, or reject flows they
/// cannot process. Closures `Fn(&Typespec) -> Result<Typespec, TypeError>`
/// implement this trait.
pub trait SpecTransform: Send {
    /// Derives the output spec from the input spec.
    ///
    /// # Errors
    ///
    /// A [`TypeError`] when the component cannot process this flow.
    fn transform(&self, input: &Typespec) -> Result<Typespec, TypeError>;
}

impl<F> SpecTransform for F
where
    F: Fn(&Typespec) -> Result<Typespec, TypeError> + Send,
{
    fn transform(&self, input: &Typespec) -> Result<Typespec, TypeError> {
        self(input)
    }
}

/// The transformation of a component that passes flows through unchanged
/// (plain pipes, counters, sensors).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IdentityTransform;

impl SpecTransform for IdentityTransform {
    fn transform(&self, input: &Typespec) -> Result<Typespec, TypeError> {
        Ok(input.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item_type::ItemType;
    use crate::qos::{QosKey, QosRange};

    #[test]
    fn identity_preserves_the_spec() {
        let spec = Typespec::of::<u64>().with_qos(QosKey::LatencyMs, QosRange::at_most(5.0));
        assert_eq!(IdentityTransform.transform(&spec).unwrap(), spec);
    }

    #[test]
    fn closures_are_transforms() {
        // A "decoder": compressed bytes in, raw frames out, rate preserved.
        let decode = |input: &Typespec| -> Result<Typespec, TypeError> {
            if !input.item().compatible_with(&ItemType::named("compressed")) {
                return Err(TypeError::Rejected("decoder needs compressed input".into()));
            }
            Ok(input.clone().map_item(ItemType::named("raw")))
        };
        let spec = Typespec::with_item_type(ItemType::named("compressed"))
            .with_qos(QosKey::FrameRateHz, QosRange::exactly(30.0));
        let out = decode.transform(&spec).unwrap();
        assert_eq!(out.item(), &ItemType::named("raw"));
        assert_eq!(out.qos(&QosKey::FrameRateHz), Some(QosRange::exactly(30.0)));

        let bad = Typespec::with_item_type(ItemType::named("raw"));
        assert!(decode.transform(&bad).is_err());
    }
}
