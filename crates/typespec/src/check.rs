//! Connection- and chain-level type checking.

use crate::error::TypeError;
use crate::polarity::Polarity;
use crate::transform::SpecTransform;
use crate::typespec::Typespec;

/// Checks one connection: an upstream out-port offering `offered` with
/// polarity `out_pol`, joined to a downstream in-port accepting `accepted`
/// with polarity `in_pol`.
///
/// Returns the agreed flow spec and the resolved (possibly induced)
/// polarities of the two ports.
///
/// # Errors
///
/// A [`TypeError`] when polarities clash or the specs have no common flow.
pub fn check_connection(
    offered: &Typespec,
    out_pol: Polarity,
    accepted: &Typespec,
    in_pol: Polarity,
) -> Result<(Typespec, Polarity, Polarity), TypeError> {
    let (out_res, in_res) = out_pol.unify(in_pol)?;
    let agreed = offered.intersect(accepted)?;
    Ok((agreed, out_res, in_res))
}

/// Threads a source spec through a chain of component transformations,
/// checking each stage's acceptance spec along the way.
///
/// `stages` pairs each component's required input spec with its
/// transformation. Returns the spec offered at the end of the chain.
///
/// # Errors
///
/// The first [`TypeError`] raised by an unsatisfiable stage.
pub fn check_chain(
    source: &Typespec,
    stages: &[(&Typespec, &dyn SpecTransform)],
) -> Result<Typespec, TypeError> {
    let mut flowing = source.clone();
    for (accepts, transform) in stages {
        let agreed = flowing.intersect(accepts)?;
        flowing = transform.transform(&agreed)?;
    }
    Ok(flowing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item_type::ItemType;
    use crate::qos::{QosKey, QosRange};
    use crate::transform::IdentityTransform;

    #[test]
    fn connection_resolves_polarity_and_spec() {
        let offered = Typespec::of::<u32>().with_qos(QosKey::FrameRateHz, QosRange::new(1.0, 60.0));
        let accepted = Typespec::new().with_qos(QosKey::FrameRateHz, QosRange::at_most(30.0));
        let (agreed, out_p, in_p) = check_connection(
            &offered,
            Polarity::Positive,
            &accepted,
            Polarity::Polymorphic,
        )
        .unwrap();
        assert_eq!(out_p, Polarity::Positive);
        assert_eq!(in_p, Polarity::Negative);
        assert_eq!(
            agreed.qos(&QosKey::FrameRateHz),
            Some(QosRange::new(1.0, 30.0))
        );
    }

    #[test]
    fn connection_rejects_polarity_clash_before_specs() {
        let spec = Typespec::new();
        let err =
            check_connection(&spec, Polarity::Negative, &spec, Polarity::Negative).unwrap_err();
        assert!(matches!(err, TypeError::PolarityClash(_, _)));
    }

    #[test]
    fn chain_threads_transformations() {
        let source = Typespec::with_item_type(ItemType::named("compressed"))
            .with_qos(QosKey::FrameRateHz, QosRange::new(0.0, 60.0));

        let decoder_accepts = Typespec::with_item_type(ItemType::named("compressed"));
        let decode = |input: &Typespec| -> Result<Typespec, TypeError> {
            Ok(input.clone().map_item(ItemType::named("raw")))
        };

        let sink_accepts = Typespec::with_item_type(ItemType::named("raw"))
            .with_qos(QosKey::FrameRateHz, QosRange::at_most(30.0));

        let out = check_chain(
            &source,
            &[
                (&decoder_accepts, &decode),
                (&sink_accepts, &IdentityTransform),
            ],
        )
        .unwrap();
        assert_eq!(out.item(), &ItemType::named("raw"));
        assert_eq!(
            out.qos(&QosKey::FrameRateHz),
            Some(QosRange::new(0.0, 30.0))
        );
    }

    #[test]
    fn chain_fails_when_stage_cannot_accept() {
        let source = Typespec::with_item_type(ItemType::named("raw"));
        let decoder_accepts = Typespec::with_item_type(ItemType::named("compressed"));
        let err = check_chain(&source, &[(&decoder_accepts, &IdentityTransform)]).unwrap_err();
        assert!(matches!(err, TypeError::ItemMismatch { .. }));
    }
}
