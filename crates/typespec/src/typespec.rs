//! The [`Typespec`] itself: the bundle of flow properties at one port.

use crate::blocking::{OnEmpty, OnFull};
use crate::error::TypeError;
use crate::item_type::ItemType;
use crate::qos::{QosKey, QosMap, QosRange};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

/// Describes an information flow at one port of a pipeline component.
///
/// Specs are built incrementally: sources supply what they can produce,
/// every stage transforms the spec ([`SpecTransform`](crate::SpecTransform))
/// and connections intersect the two sides' requirements
/// ([`Typespec::intersect`]). Properties not mentioned are unconstrained.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Typespec {
    item: ItemType,
    qos: QosMap,
    on_full: Option<OnFull>,
    on_empty: Option<OnEmpty>,
    /// Control events the upstream flow can emit toward this port.
    events_offered: BTreeSet<String>,
    /// Control events a component requires its peers to understand.
    events_required: BTreeSet<String>,
    /// The node this end of the flow lives on; changed only by netpipes.
    location: Option<String>,
    /// Free-form extension properties ("Typespecs are extensible and new
    /// properties can be added as needed", §2.3).
    props: BTreeMap<String, String>,
}

impl Typespec {
    /// An unconstrained spec with the wildcard item type.
    #[must_use]
    pub fn new() -> Typespec {
        Typespec::default()
    }

    /// A spec for flows of Rust type `T`.
    #[must_use]
    pub fn of<T: 'static>() -> Typespec {
        Typespec {
            item: ItemType::of::<T>(),
            ..Typespec::default()
        }
    }

    /// A spec with an explicit item type.
    #[must_use]
    pub fn with_item_type(item: ItemType) -> Typespec {
        Typespec {
            item,
            ..Typespec::default()
        }
    }

    /// The item type of the flow.
    #[must_use]
    pub fn item(&self) -> &ItemType {
        &self.item
    }

    /// Replaces the item type (what transformers do to a spec).
    #[must_use]
    pub fn map_item(mut self, item: ItemType) -> Typespec {
        self.item = item;
        self
    }

    /// Adds or narrows a QoS constraint, builder style.
    #[must_use]
    pub fn with_qos(mut self, key: QosKey, range: QosRange) -> Typespec {
        self.qos.set(key, range);
        self
    }

    /// The QoS range for a dimension, if constrained.
    #[must_use]
    pub fn qos(&self, key: &QosKey) -> Option<QosRange> {
        self.qos.get(key)
    }

    /// All QoS constraints.
    #[must_use]
    pub fn qos_map(&self) -> &QosMap {
        &self.qos
    }

    /// Mutable access to the QoS constraints (for components that update
    /// ranges in place).
    pub fn qos_map_mut(&mut self) -> &mut QosMap {
        &mut self.qos
    }

    /// Sets the full-buffer behaviour of the flow.
    #[must_use]
    pub fn with_on_full(mut self, policy: OnFull) -> Typespec {
        self.on_full = Some(policy);
        self
    }

    /// The declared full-buffer behaviour, if any.
    #[must_use]
    pub fn on_full(&self) -> Option<OnFull> {
        self.on_full
    }

    /// Sets the empty-buffer behaviour of the flow.
    #[must_use]
    pub fn with_on_empty(mut self, policy: OnEmpty) -> Typespec {
        self.on_empty = Some(policy);
        self
    }

    /// The declared empty-buffer behaviour, if any.
    #[must_use]
    pub fn on_empty(&self) -> Option<OnEmpty> {
        self.on_empty
    }

    /// Declares that the flow can deliver the named control event.
    #[must_use]
    pub fn offering_event(mut self, name: impl Into<String>) -> Typespec {
        self.events_offered.insert(name.into());
        self
    }

    /// Declares that a component requires peers to understand the named
    /// control event (e.g. a resizer needs `window-resize` from the
    /// display).
    #[must_use]
    pub fn requiring_event(mut self, name: impl Into<String>) -> Typespec {
        self.events_required.insert(name.into());
        self
    }

    /// Control events offered by the flow.
    pub fn events_offered(&self) -> impl Iterator<Item = &str> {
        self.events_offered.iter().map(String::as_str)
    }

    /// Control events required of the flow.
    pub fn events_required(&self) -> impl Iterator<Item = &str> {
        self.events_required.iter().map(String::as_str)
    }

    /// Sets the location property (done by netpipes and factories only).
    #[must_use]
    pub fn at_location(mut self, node: impl Into<String>) -> Typespec {
        self.location = Some(node.into());
        self
    }

    /// The node this end of the flow lives on, if known.
    #[must_use]
    pub fn location(&self) -> Option<&str> {
        self.location.as_deref()
    }

    /// Sets a free-form extension property.
    #[must_use]
    pub fn with_prop(mut self, key: impl Into<String>, value: impl Into<String>) -> Typespec {
        self.props.insert(key.into(), value.into());
        self
    }

    /// Reads a free-form extension property.
    #[must_use]
    pub fn prop(&self, key: &str) -> Option<&str> {
        self.props.get(key).map(String::as_str)
    }

    /// Intersects two specs into the most general spec satisfying both.
    ///
    /// Item types must be compatible (the more specific wins); QoS ranges
    /// are intersected dimension-wise; blocking behaviours must agree when
    /// both declared; offered events accumulate; required events of either
    /// side must be offered by the union of offers or stay required;
    /// locations must agree when both known.
    ///
    /// # Errors
    ///
    /// Any [`TypeError`] describing the first incompatibility found.
    pub fn intersect(&self, other: &Typespec) -> Result<Typespec, TypeError> {
        let item = self
            .item
            .meet(&other.item)
            .ok_or_else(|| TypeError::ItemMismatch {
                expected: other.item.clone(),
                found: self.item.clone(),
            })?;
        let qos = self.qos.intersect(&other.qos)?;
        let on_full = match (self.on_full, other.on_full) {
            (Some(a), Some(b)) if a != b => {
                return Err(TypeError::Rejected(format!(
                    "conflicting full-buffer behaviour: {a} vs {b}"
                )));
            }
            (a, b) => a.or(b),
        };
        let on_empty = match (self.on_empty, other.on_empty) {
            (Some(a), Some(b)) if a != b => {
                return Err(TypeError::Rejected(format!(
                    "conflicting empty-buffer behaviour: {a} vs {b}"
                )));
            }
            (a, b) => a.or(b),
        };
        let location = match (&self.location, &other.location) {
            (Some(a), Some(b)) if a != b => {
                return Err(TypeError::Rejected(format!(
                    "flow endpoints on different nodes without a netpipe: {a} vs {b}"
                )));
            }
            (a, b) => a.clone().or_else(|| b.clone()),
        };
        let mut props = self.props.clone();
        for (k, v) in &other.props {
            if let Some(mine) = props.get(k) {
                if mine != v {
                    return Err(TypeError::Rejected(format!(
                        "conflicting property '{k}': '{mine}' vs '{v}'"
                    )));
                }
            } else {
                props.insert(k.clone(), v.clone());
            }
        }
        let events_offered: BTreeSet<String> = self
            .events_offered
            .union(&other.events_offered)
            .cloned()
            .collect();
        let events_required: BTreeSet<String> = self
            .events_required
            .union(&other.events_required)
            .cloned()
            .collect();
        Ok(Typespec {
            item,
            qos,
            on_full,
            on_empty,
            events_offered,
            events_required,
            location,
            props,
        })
    }

    /// Checks that this spec (an offer) satisfies `requirement`: item types
    /// compatible, every QoS dimension the requirement constrains is met by
    /// a subrange here, and every required event is offered.
    ///
    /// # Errors
    ///
    /// The first [`TypeError`] describing why the offer is insufficient.
    pub fn satisfy(&self, requirement: &Typespec) -> Result<(), TypeError> {
        if !self.item.compatible_with(&requirement.item) {
            return Err(TypeError::ItemMismatch {
                expected: requirement.item.clone(),
                found: self.item.clone(),
            });
        }
        if !self.qos.satisfies(&requirement.qos) {
            // Find the offending dimension for a useful error message.
            for (key, want) in requirement.qos.iter() {
                match self.qos.get(key) {
                    Some(have) if have.is_subrange_of(want) => {}
                    Some(have) => {
                        return Err(TypeError::QosDisjoint {
                            key: key.clone(),
                            left: have,
                            right: *want,
                        });
                    }
                    None => {
                        return Err(TypeError::Rejected(format!(
                            "required QoS dimension {key} is unspecified"
                        )));
                    }
                }
            }
        }
        for ev in &requirement.events_required {
            if !self.events_offered.contains(ev) {
                return Err(TypeError::MissingEvent(ev.clone()));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Typespec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow<{}>", self.item)?;
        if let Some(loc) = &self.location {
            write!(f, "@{loc}")?;
        }
        for (key, range) in self.qos.iter() {
            write!(f, " {key}={range}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_narrows_qos_and_keeps_specific_item() {
        let a = Typespec::new().with_qos(QosKey::FrameRateHz, QosRange::new(10.0, 60.0));
        let b = Typespec::of::<u32>().with_qos(QosKey::FrameRateHz, QosRange::at_most(24.0));
        let m = a.intersect(&b).unwrap();
        assert_eq!(m.item(), &ItemType::of::<u32>());
        assert_eq!(m.qos(&QosKey::FrameRateHz), Some(QosRange::new(10.0, 24.0)));
    }

    #[test]
    fn intersect_rejects_item_mismatch() {
        let a = Typespec::of::<u32>();
        let b = Typespec::of::<String>();
        assert!(matches!(
            a.intersect(&b),
            Err(TypeError::ItemMismatch { .. })
        ));
    }

    #[test]
    fn intersect_rejects_conflicting_blocking() {
        let a = Typespec::new().with_on_full(OnFull::Block);
        let b = Typespec::new().with_on_full(OnFull::DropOldest);
        assert!(a.intersect(&b).is_err());
        // Agreeing or one-sided declarations are fine.
        let c = Typespec::new().with_on_full(OnFull::Block);
        assert_eq!(a.intersect(&c).unwrap().on_full(), Some(OnFull::Block));
        assert_eq!(
            a.intersect(&Typespec::new()).unwrap().on_full(),
            Some(OnFull::Block)
        );
    }

    #[test]
    fn intersect_rejects_cross_node_flows() {
        let a = Typespec::new().at_location("producer");
        let b = Typespec::new().at_location("consumer");
        assert!(a.intersect(&b).is_err());
        let same = Typespec::new().at_location("producer");
        assert_eq!(a.intersect(&same).unwrap().location(), Some("producer"));
    }

    #[test]
    fn satisfy_checks_events() {
        let offer = Typespec::new().offering_event("window-resize");
        let need = Typespec::new().requiring_event("window-resize");
        assert!(offer.satisfy(&need).is_ok());
        let missing = Typespec::new().requiring_event("frame-release");
        assert_eq!(
            offer.satisfy(&missing),
            Err(TypeError::MissingEvent("frame-release".into()))
        );
    }

    #[test]
    fn satisfy_requires_known_subranges() {
        let offer = Typespec::new().with_qos(QosKey::LatencyMs, QosRange::new(5.0, 20.0));
        let need = Typespec::new().with_qos(QosKey::LatencyMs, QosRange::at_most(50.0));
        assert!(offer.satisfy(&need).is_ok());
        let tight = Typespec::new().with_qos(QosKey::LatencyMs, QosRange::at_most(10.0));
        assert!(matches!(
            offer.satisfy(&tight),
            Err(TypeError::QosDisjoint { .. })
        ));
        let unknown = Typespec::new().with_qos(QosKey::JitterMs, QosRange::at_most(1.0));
        assert!(matches!(
            offer.satisfy(&unknown),
            Err(TypeError::Rejected(_))
        ));
    }

    #[test]
    fn props_round_trip_and_conflict() {
        let a = Typespec::new().with_prop("codec", "synthetic-mpeg");
        assert_eq!(a.prop("codec"), Some("synthetic-mpeg"));
        assert_eq!(a.prop("absent"), None);
        let b = Typespec::new().with_prop("codec", "raw");
        assert!(a.intersect(&b).is_err());
        let ok = Typespec::new().with_prop("gop", "12");
        let m = a.intersect(&ok).unwrap();
        assert_eq!(m.prop("codec"), Some("synthetic-mpeg"));
        assert_eq!(m.prop("gop"), Some("12"));
    }

    #[test]
    fn display_mentions_item_and_qos() {
        let s = Typespec::of::<u8>()
            .at_location("n1")
            .with_qos(QosKey::FrameRateHz, QosRange::exactly(30.0));
        let text = s.to_string();
        assert!(text.contains("u8"));
        assert!(text.contains("n1"));
        assert!(text.contains("frame-rate-hz"));
    }
}
