//! Typespecs: descriptions of the information flows an Infopipe supports.
//!
//! A [`Typespec`] captures the properties of a flow at one port of a
//! pipeline component (§2.3 of *Thread Transparency in Information Flow
//! Middleware*):
//!
//! * the **item type** — the format of the information items,
//! * the **polarity** of ports — whether items are pushed or pulled, with
//!   polymorphic components (filters) acquiring an *induced* polarity when
//!   composed,
//! * the **blocking behaviour** when an operation cannot be performed
//!   immediately (block, drop, or return nothing),
//! * the **control events** a component can send or react to,
//! * **QoS parameter ranges** — frame rates, latency, jitter, bandwidth —
//!   which narrow as specs flow through a pipeline,
//! * a **location** property, changed only by netpipes, that lets type
//!   checking track distribution.
//!
//! Typespecs are *incremental*: components do not carry a fixed spec but
//! **transform** a spec on one port into the spec on their other ports
//! (see [`SpecTransform`]). Composition type-checks by threading a spec
//! from the source through every transformation and checking each
//! connection with [`check_connection`].
//!
//! Undefined properties follow "don't know / don't care" semantics: a
//! property absent from a spec does not constrain composition; when two
//! specs are intersected, only properties present on both sides must agree.
//!
//! # Example
//!
//! ```
//! use typespec::{Polarity, QosKey, QosRange, Typespec};
//!
//! // A source offering 15–60 fps video frames.
//! let offered = Typespec::of::<u32>().with_qos(QosKey::FrameRateHz, QosRange::new(15.0, 60.0));
//! // A sink that can render at most 30 fps.
//! let wanted = Typespec::of::<u32>().with_qos(QosKey::FrameRateHz, QosRange::at_most(30.0));
//! let agreed = offered.intersect(&wanted).unwrap();
//! assert_eq!(
//!     agreed.qos(&QosKey::FrameRateHz).unwrap(),
//!     QosRange::new(15.0, 30.0)
//! );
//! // Push connects to pull; two pushes clash.
//! assert!(Polarity::Positive.connects_to(Polarity::Negative));
//! assert!(!Polarity::Positive.connects_to(Polarity::Positive));
//! ```

mod blocking;
mod check;
mod error;
mod item_type;
mod polarity;
mod qos;
mod transform;
#[allow(clippy::module_inception)]
mod typespec;

pub use blocking::{OnEmpty, OnFull};
pub use check::{check_chain, check_connection};
pub use error::TypeError;
pub use item_type::ItemType;
pub use polarity::{induce_chain, Polarity};
pub use qos::{QosKey, QosMap, QosRange};
pub use transform::{IdentityTransform, SpecTransform};
pub use typespec::Typespec;
