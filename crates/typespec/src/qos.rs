//! QoS parameters: named dimensions with closed ranges of acceptable
//! values.
//!
//! Sources supply achievable ranges, sinks and users restrict them, and
//! intermediate components narrow or shift them. Even without hard
//! guarantees these ranges are "valuable hints to the rest of the
//! pipeline" (§2.3) — the feedback toolkit trades one dimension against
//! another inside them.

use crate::error::TypeError;
use std::collections::BTreeMap;
use std::fmt;

/// A QoS dimension.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QosKey {
    /// Video frame rate in Hz.
    FrameRateHz,
    /// Audio sample rate in Hz.
    SampleRateHz,
    /// End-to-end latency in milliseconds.
    LatencyMs,
    /// Inter-item jitter in milliseconds.
    JitterMs,
    /// Throughput in bytes per second.
    BandwidthBps,
    /// Spatial resolution in total pixels.
    ResolutionPx,
    /// Any application-defined dimension.
    Custom(String),
}

impl fmt::Display for QosKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QosKey::FrameRateHz => f.write_str("frame-rate-hz"),
            QosKey::SampleRateHz => f.write_str("sample-rate-hz"),
            QosKey::LatencyMs => f.write_str("latency-ms"),
            QosKey::JitterMs => f.write_str("jitter-ms"),
            QosKey::BandwidthBps => f.write_str("bandwidth-bps"),
            QosKey::ResolutionPx => f.write_str("resolution-px"),
            QosKey::Custom(s) => write!(f, "custom:{s}"),
        }
    }
}

/// A closed range `[min, max]` of acceptable values for one dimension.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct QosRange {
    min: f64,
    max: f64,
}

impl QosRange {
    /// A range from `min` to `max` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or either bound is NaN.
    #[must_use]
    pub fn new(min: f64, max: f64) -> QosRange {
        assert!(!min.is_nan() && !max.is_nan(), "QoS bounds must not be NaN");
        assert!(min <= max, "QoS range requires min <= max ({min} > {max})");
        QosRange { min, max }
    }

    /// The single-point range `[v, v]`.
    #[must_use]
    pub fn exactly(v: f64) -> QosRange {
        QosRange::new(v, v)
    }

    /// The range `[v, +inf)`.
    #[must_use]
    pub fn at_least(v: f64) -> QosRange {
        QosRange::new(v, f64::INFINITY)
    }

    /// The range `(-inf, v]`.
    #[must_use]
    pub fn at_most(v: f64) -> QosRange {
        QosRange::new(f64::NEG_INFINITY, v)
    }

    /// Lower bound.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Whether `v` lies within the range.
    #[must_use]
    pub fn contains(&self, v: f64) -> bool {
        v >= self.min && v <= self.max
    }

    /// The overlap of two ranges, or `None` if they are disjoint.
    #[must_use]
    pub fn intersect(&self, other: &QosRange) -> Option<QosRange> {
        let min = self.min.max(other.min);
        let max = self.max.min(other.max);
        (min <= max).then(|| QosRange::new(min, max))
    }

    /// Whether this range lies entirely within `other`.
    #[must_use]
    pub fn is_subrange_of(&self, other: &QosRange) -> bool {
        self.min >= other.min && self.max <= other.max
    }

    /// Clamps a value into the range.
    #[must_use]
    pub fn clamp(&self, v: f64) -> f64 {
        v.clamp(self.min, self.max)
    }
}

impl fmt::Display for QosRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.min, self.max)
    }
}

/// A set of QoS constraints: one range per constrained dimension.
///
/// Absent dimensions are unconstrained ("don't know / don't care").
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QosMap {
    ranges: BTreeMap<QosKey, QosRange>,
}

impl QosMap {
    /// An empty (fully unconstrained) map.
    #[must_use]
    pub fn new() -> QosMap {
        QosMap::default()
    }

    /// Sets the range for a dimension, returning the previous range.
    pub fn set(&mut self, key: QosKey, range: QosRange) -> Option<QosRange> {
        self.ranges.insert(key, range)
    }

    /// The range constraining `key`, if any.
    #[must_use]
    pub fn get(&self, key: &QosKey) -> Option<QosRange> {
        self.ranges.get(key).copied()
    }

    /// Removes the constraint on `key`.
    pub fn clear(&mut self, key: &QosKey) -> Option<QosRange> {
        self.ranges.remove(key)
    }

    /// Number of constrained dimensions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether no dimension is constrained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Iterates over the constrained dimensions.
    pub fn iter(&self) -> impl Iterator<Item = (&QosKey, &QosRange)> {
        self.ranges.iter()
    }

    /// Intersects two maps dimension-wise. Dimensions present on only one
    /// side are carried through unchanged (the other side doesn't care).
    ///
    /// # Errors
    ///
    /// [`TypeError::QosDisjoint`] when a dimension constrained by both
    /// sides has no overlap.
    pub fn intersect(&self, other: &QosMap) -> Result<QosMap, TypeError> {
        let mut out = self.clone();
        for (key, range) in &other.ranges {
            match out.ranges.get(key) {
                None => {
                    out.ranges.insert(key.clone(), *range);
                }
                Some(mine) => match mine.intersect(range) {
                    Some(meet) => {
                        out.ranges.insert(key.clone(), meet);
                    }
                    None => {
                        return Err(TypeError::QosDisjoint {
                            key: key.clone(),
                            left: *mine,
                            right: *range,
                        });
                    }
                },
            }
        }
        Ok(out)
    }

    /// Whether every constraint in `other` is satisfied by this map: each
    /// dimension `other` constrains must be constrained here to a
    /// subrange.
    #[must_use]
    pub fn satisfies(&self, other: &QosMap) -> bool {
        other.ranges.iter().all(|(key, theirs)| {
            self.ranges
                .get(key)
                .is_some_and(|mine| mine.is_subrange_of(theirs))
        })
    }
}

impl FromIterator<(QosKey, QosRange)> for QosMap {
    fn from_iter<I: IntoIterator<Item = (QosKey, QosRange)>>(iter: I) -> Self {
        QosMap {
            ranges: iter.into_iter().collect(),
        }
    }
}

impl Extend<(QosKey, QosRange)> for QosMap {
    fn extend<I: IntoIterator<Item = (QosKey, QosRange)>>(&mut self, iter: I) {
        self.ranges.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_intersection_overlaps() {
        let a = QosRange::new(10.0, 30.0);
        let b = QosRange::new(20.0, 60.0);
        assert_eq!(a.intersect(&b), Some(QosRange::new(20.0, 30.0)));
        let c = QosRange::new(40.0, 50.0);
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn range_membership_and_clamp() {
        let r = QosRange::new(5.0, 10.0);
        assert!(r.contains(5.0));
        assert!(r.contains(10.0));
        assert!(!r.contains(10.1));
        assert_eq!(r.clamp(12.0), 10.0);
        assert_eq!(r.clamp(1.0), 5.0);
        assert_eq!(r.clamp(7.5), 7.5);
    }

    #[test]
    fn half_open_constructors() {
        assert!(QosRange::at_least(3.0).contains(1e12));
        assert!(!QosRange::at_least(3.0).contains(2.9));
        assert!(QosRange::at_most(3.0).contains(-1e12));
        assert!(QosRange::exactly(4.0).contains(4.0));
        assert!(!QosRange::exactly(4.0).contains(4.1));
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn inverted_range_panics() {
        let _ = QosRange::new(2.0, 1.0);
    }

    #[test]
    fn map_intersection_carries_one_sided_constraints() {
        let a: QosMap = [(QosKey::FrameRateHz, QosRange::new(10.0, 60.0))]
            .into_iter()
            .collect();
        let b: QosMap = [
            (QosKey::FrameRateHz, QosRange::at_most(30.0)),
            (QosKey::LatencyMs, QosRange::at_most(100.0)),
        ]
        .into_iter()
        .collect();
        let m = a.intersect(&b).unwrap();
        assert_eq!(m.get(&QosKey::FrameRateHz), Some(QosRange::new(10.0, 30.0)));
        assert_eq!(m.get(&QosKey::LatencyMs), Some(QosRange::at_most(100.0)));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn map_intersection_fails_on_disjoint_dimension() {
        let a: QosMap = [(QosKey::FrameRateHz, QosRange::new(50.0, 60.0))]
            .into_iter()
            .collect();
        let b: QosMap = [(QosKey::FrameRateHz, QosRange::new(10.0, 20.0))]
            .into_iter()
            .collect();
        let err = a.intersect(&b).unwrap_err();
        assert!(matches!(err, TypeError::QosDisjoint { .. }));
    }

    #[test]
    fn satisfies_requires_subranges() {
        let offered: QosMap = [(QosKey::FrameRateHz, QosRange::new(25.0, 30.0))]
            .into_iter()
            .collect();
        let wanted: QosMap = [(QosKey::FrameRateHz, QosRange::new(10.0, 60.0))]
            .into_iter()
            .collect();
        assert!(offered.satisfies(&wanted));
        assert!(!wanted.satisfies(&offered));
        // A dimension the requirement constrains but we don't know fails.
        let strict: QosMap = [(QosKey::LatencyMs, QosRange::at_most(10.0))]
            .into_iter()
            .collect();
        assert!(!offered.satisfies(&strict));
        // An empty requirement is always satisfied.
        assert!(offered.satisfies(&QosMap::new()));
    }
}
