//! Type-checking errors reported when composing pipeline stages.

use crate::item_type::ItemType;
use crate::polarity::Polarity;
use crate::qos::{QosKey, QosRange};
use std::error::Error;
use std::fmt;

/// An incompatibility detected while composing Infopipe components.
///
/// The composition operator surfaces these when two connected ports cannot
/// support a common flow, mirroring the paper's `>>` operator that throws
/// on incompatible components (§4).
#[derive(Clone, Debug, PartialEq)]
pub enum TypeError {
    /// Two ports with the same fixed polarity were connected (e.g. two
    /// pushing out-ports).
    PolarityClash(Polarity, Polarity),
    /// The upstream item type does not match what the downstream port
    /// accepts.
    ItemMismatch {
        /// What the downstream port accepts.
        expected: ItemType,
        /// What the upstream port produces.
        found: ItemType,
    },
    /// A QoS dimension constrained by both sides has no overlapping range.
    QosDisjoint {
        /// The dimension in conflict.
        key: QosKey,
        /// The upstream range.
        left: QosRange,
        /// The downstream range.
        right: QosRange,
    },
    /// The downstream component requires a control event capability the
    /// upstream flow does not provide.
    MissingEvent(String),
    /// A component-specific transformation rejected the flow.
    Rejected(String),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::PolarityClash(a, b) => {
                write!(f, "ports with equal polarity cannot connect ({a} to {b})")
            }
            TypeError::ItemMismatch { expected, found } => {
                write!(f, "item type mismatch: expected {expected}, found {found}")
            }
            TypeError::QosDisjoint { key, left, right } => {
                write!(f, "no overlap for {key}: {left} vs {right}")
            }
            TypeError::MissingEvent(name) => {
                write!(f, "required control event capability missing: {name}")
            }
            TypeError::Rejected(reason) => write!(f, "composition rejected: {reason}"),
        }
    }
}

impl Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = TypeError::PolarityClash(Polarity::Positive, Polarity::Positive);
        assert!(e.to_string().contains("polarity"));
        let e = TypeError::ItemMismatch {
            expected: ItemType::named("a"),
            found: ItemType::named("b"),
        };
        assert!(e.to_string().contains("expected a"));
        let e = TypeError::QosDisjoint {
            key: QosKey::LatencyMs,
            left: QosRange::new(0.0, 1.0),
            right: QosRange::new(2.0, 3.0),
        };
        assert!(e.to_string().contains("latency-ms"));
        assert!(TypeError::MissingEvent("resize".into())
            .to_string()
            .contains("resize"));
        assert!(!TypeError::Rejected("nope".into()).to_string().is_empty());
    }
}
