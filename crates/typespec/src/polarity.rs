//! Port polarity: the push/pull algebra of §2.3.
//!
//! Activity is represented by assigning each port a positive or negative
//! polarity: a positive out-port makes calls to `push`, a negative out-port
//! can receive a `pull`; a positive in-port makes calls to `pull`, a
//! negative in-port is willing to receive a `push`. Ports with opposite
//! polarity may be connected; connecting two ports of the same fixed
//! polarity is an error. Components without a fixed polarity (filters,
//! filter chains) are *polymorphic* (`α → α`): connecting one end to a
//! fixed port *induces* the complementary polarity at the other end.

use crate::error::TypeError;
use std::fmt;

/// The polarity of a port.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// The active side: this port makes calls (push for an out-port, pull
    /// for an in-port).
    Positive,
    /// The passive side: this port receives calls.
    Negative,
    /// Undetermined (`α`): acquires an induced polarity when connected to
    /// a fixed port.
    #[default]
    Polymorphic,
}

impl Polarity {
    /// The polarity that can legally face this one across a connection.
    /// Polymorphic is its own complement (two polymorphic ports compose,
    /// deferring resolution).
    #[must_use]
    pub fn complement(self) -> Polarity {
        match self {
            Polarity::Positive => Polarity::Negative,
            Polarity::Negative => Polarity::Positive,
            Polarity::Polymorphic => Polarity::Polymorphic,
        }
    }

    /// Whether a port of this polarity may be connected to one of `other`.
    #[must_use]
    pub fn connects_to(self, other: Polarity) -> bool {
        !matches!(
            (self, other),
            (Polarity::Positive, Polarity::Positive) | (Polarity::Negative, Polarity::Negative)
        )
    }

    /// Resolves the pair of polarities after connecting two ports,
    /// inducing fixed polarities into polymorphic ports.
    ///
    /// # Errors
    ///
    /// [`TypeError::PolarityClash`] when both ports have the same fixed
    /// polarity.
    pub fn unify(self, other: Polarity) -> Result<(Polarity, Polarity), TypeError> {
        match (self, other) {
            (Polarity::Positive, Polarity::Positive) | (Polarity::Negative, Polarity::Negative) => {
                Err(TypeError::PolarityClash(self, other))
            }
            (Polarity::Polymorphic, Polarity::Polymorphic) => {
                Ok((Polarity::Polymorphic, Polarity::Polymorphic))
            }
            (Polarity::Polymorphic, fixed) => Ok((fixed.complement(), fixed)),
            (fixed, Polarity::Polymorphic) => Ok((fixed, fixed.complement())),
            (a, b) => Ok((a, b)),
        }
    }

    /// Whether this polarity is fixed (not polymorphic).
    #[must_use]
    pub fn is_fixed(self) -> bool {
        self != Polarity::Polymorphic
    }
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Polarity::Positive => "+",
            Polarity::Negative => "-",
            Polarity::Polymorphic => "α",
        };
        f.write_str(s)
    }
}

/// Propagates an induced polarity through a chain of polymorphic
/// components, as when one end of a filter chain is connected to a fixed
/// port (§2.3, "induced polarity").
///
/// Given the polarity now imposed at the upstream end of the chain and the
/// number of chained polymorphic components, returns the polarity each
/// component's downstream port acquires. In this in-out model every
/// component simply passes the driving direction along, so all downstream
/// ports share the imposed activity direction.
#[must_use]
pub fn induce_chain(imposed: Polarity, chain_len: usize) -> Vec<Polarity> {
    // A filter whose in-port received polarity `p` exposes the same
    // activity direction downstream: if items are pushed into it, it pushes
    // onward; if items are pulled from it, it pulls onward.
    (0..chain_len).map(|_| imposed).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complement_is_involutive_for_fixed() {
        assert_eq!(Polarity::Positive.complement(), Polarity::Negative);
        assert_eq!(Polarity::Negative.complement(), Polarity::Positive);
        assert_eq!(Polarity::Polymorphic.complement(), Polarity::Polymorphic);
        for p in [
            Polarity::Positive,
            Polarity::Negative,
            Polarity::Polymorphic,
        ] {
            assert_eq!(p.complement().complement(), p);
        }
    }

    #[test]
    fn opposite_fixed_polarities_connect() {
        assert!(Polarity::Positive.connects_to(Polarity::Negative));
        assert!(Polarity::Negative.connects_to(Polarity::Positive));
    }

    #[test]
    fn equal_fixed_polarities_clash() {
        assert!(!Polarity::Positive.connects_to(Polarity::Positive));
        assert!(!Polarity::Negative.connects_to(Polarity::Negative));
        assert!(Polarity::Positive.unify(Polarity::Positive).is_err());
        assert!(Polarity::Negative.unify(Polarity::Negative).is_err());
    }

    #[test]
    fn polymorphic_connects_to_everything() {
        for p in [
            Polarity::Positive,
            Polarity::Negative,
            Polarity::Polymorphic,
        ] {
            assert!(Polarity::Polymorphic.connects_to(p));
            assert!(p.connects_to(Polarity::Polymorphic));
        }
    }

    #[test]
    fn unify_induces_complement() {
        let (a, b) = Polarity::Polymorphic.unify(Polarity::Positive).unwrap();
        assert_eq!((a, b), (Polarity::Negative, Polarity::Positive));
        let (a, b) = Polarity::Negative.unify(Polarity::Polymorphic).unwrap();
        assert_eq!((a, b), (Polarity::Negative, Polarity::Positive));
        let (a, b) = Polarity::Polymorphic.unify(Polarity::Polymorphic).unwrap();
        assert_eq!((a, b), (Polarity::Polymorphic, Polarity::Polymorphic));
    }

    #[test]
    fn induced_chain_propagates_direction() {
        assert_eq!(
            induce_chain(Polarity::Negative, 3),
            vec![Polarity::Negative; 3]
        );
        assert!(induce_chain(Polarity::Positive, 0).is_empty());
    }

    #[test]
    fn display_is_nonempty() {
        for p in [
            Polarity::Positive,
            Polarity::Negative,
            Polarity::Polymorphic,
        ] {
            assert!(!p.to_string().is_empty());
        }
    }
}
