//! Property-based tests for the Typespec algebra.

use proptest::prelude::*;
use typespec::{induce_chain, ItemType, Polarity, QosKey, QosMap, QosRange, Typespec};

fn arb_polarity() -> impl Strategy<Value = Polarity> {
    prop_oneof![
        Just(Polarity::Positive),
        Just(Polarity::Negative),
        Just(Polarity::Polymorphic),
    ]
}

fn arb_range() -> impl Strategy<Value = QosRange> {
    (-1e6..1e6f64, 0.0..1e6f64).prop_map(|(lo, width)| QosRange::new(lo, lo + width))
}

fn arb_key() -> impl Strategy<Value = QosKey> {
    prop_oneof![
        Just(QosKey::FrameRateHz),
        Just(QosKey::LatencyMs),
        Just(QosKey::JitterMs),
        Just(QosKey::BandwidthBps),
        "[a-z]{1,8}".prop_map(QosKey::Custom),
    ]
}

fn arb_qos_map() -> impl Strategy<Value = QosMap> {
    proptest::collection::vec((arb_key(), arb_range()), 0..6)
        .prop_map(|entries| entries.into_iter().collect())
}

proptest! {
    /// Connecting any two ports succeeds exactly when they are not both
    /// the same fixed polarity, and unify never produces two ports of the
    /// same fixed polarity.
    #[test]
    fn unify_is_sound(a in arb_polarity(), b in arb_polarity()) {
        match a.unify(b) {
            Ok((ra, rb)) => {
                prop_assert!(a.connects_to(b));
                prop_assert!(
                    !(ra == rb && ra.is_fixed()),
                    "unify produced {ra} to {rb}"
                );
                // Fixed inputs are never changed by unification.
                if a.is_fixed() { prop_assert_eq!(ra, a); }
                if b.is_fixed() { prop_assert_eq!(rb, b); }
            }
            Err(_) => prop_assert!(!a.connects_to(b)),
        }
    }

    /// connects_to is symmetric.
    #[test]
    fn connectivity_is_symmetric(a in arb_polarity(), b in arb_polarity()) {
        prop_assert_eq!(a.connects_to(b), b.connects_to(a));
    }

    /// An induced polarity through a chain matches the imposed direction
    /// at every link.
    #[test]
    fn induced_chains_are_uniform(fixed in prop_oneof![
        Just(Polarity::Positive), Just(Polarity::Negative)
    ], len in 0usize..16) {
        let chain = induce_chain(fixed, len);
        prop_assert_eq!(chain.len(), len);
        prop_assert!(chain.iter().all(|p| *p == fixed));
    }

    /// Range intersection is commutative and yields a subrange of both.
    #[test]
    fn range_intersection_laws(a in arb_range(), b in arb_range()) {
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        prop_assert_eq!(ab, ba);
        if let Some(m) = ab {
            prop_assert!(m.is_subrange_of(&a));
            prop_assert!(m.is_subrange_of(&b));
        }
        // Self-intersection is identity.
        prop_assert_eq!(a.intersect(&a), Some(a));
    }

    /// Map intersection is commutative, idempotent, and monotone: the
    /// result satisfies both inputs.
    #[test]
    fn qos_map_intersection_laws(a in arb_qos_map(), b in arb_qos_map()) {
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        match (ab, ba) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(&x, &y);
                prop_assert!(x.satisfies(&a) || a.iter().any(|(k, _)| x.get(k).is_none()),
                    "result must not widen any input dimension");
                // Every dimension of the result is a subrange of whichever
                // inputs constrain it.
                for (k, r) in x.iter() {
                    if let Some(ra) = a.get(k) { prop_assert!(r.is_subrange_of(&ra)); }
                    if let Some(rb) = b.get(k) { prop_assert!(r.is_subrange_of(&rb)); }
                }
            }
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "asymmetric outcome: {x:?} vs {y:?}"),
        }
        // Idempotence.
        let aa = a.intersect(&a).expect("self-intersection never fails");
        prop_assert_eq!(aa, a);
    }

    /// satisfies() agrees with intersect(): an offer that satisfies a
    /// requirement always intersects with it without narrowing below the
    /// offer.
    #[test]
    fn satisfies_implies_compatible(a in arb_qos_map(), b in arb_qos_map()) {
        if a.satisfies(&b) {
            let m = a.intersect(&b);
            prop_assert!(m.is_ok(), "satisfying maps must intersect");
        }
    }

    /// Typespec intersection keeps item compatibility and is commutative
    /// on the QoS dimension values.
    #[test]
    fn typespec_intersection_laws(qa in arb_qos_map(), qb in arb_qos_map()) {
        let mut a = Typespec::of::<u32>();
        *a.qos_map_mut() = qa;
        let mut b = Typespec::new();
        *b.qos_map_mut() = qb;
        match (a.intersect(&b), b.intersect(&a)) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.qos_map(), y.qos_map());
                prop_assert!(x.item().compatible_with(&ItemType::of::<u32>()));
            }
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "asymmetric outcome: {x:?} vs {y:?}"),
        }
    }
}
