//! E8 — §4's priority inheritance: a HIGH-priority thread synchronously
//! waits on a LOW-priority thread while MEDIUM-priority threads compete
//! for the CPU. With the inheritance scheme the queued HIGH request
//! boosts LOW; without it, LOW starves and the HIGH thread is inverted.
//!
//! Reported: how many MEDIUM work units run while HIGH waits (0 is
//! perfect), plus the wall time of the scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbthread::{
    Constraint, Ctx, Envelope, Flow, Kernel, KernelConfig, Message, Priority, SpawnOptions, Tag,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const WORK: Tag = Tag(1);
const REQ: Tag = Tag(2);

/// Runs the inversion scenario once; returns the number of MEDIUM work
/// units that executed while the HIGH request was outstanding.
fn run_scenario(inheritance: bool) -> u64 {
    let mut cfg = KernelConfig::virtual_time();
    cfg.priority_inheritance = inheritance;
    let kernel = Kernel::new(cfg);

    let medium_units = Arc::new(AtomicU64::new(0));
    let units_while_waiting = Arc::new(AtomicU64::new(0));

    // MEDIUM: each message is one work unit; it re-posts itself a bounded
    // number of times so the scenario terminates.
    let medium_units2 = Arc::clone(&medium_units);
    let medium = kernel
        .spawn(
            SpawnOptions::new("medium").priority(Priority::NORMAL),
            move |ctx: &mut Ctx<'_>, env: Envelope| {
                medium_units2.fetch_add(1, Ordering::Relaxed);
                let round: u64 = env.expect_body::<u64>();
                if round < 200 {
                    let me = ctx.id();
                    let _ = ctx.send_with(me, Message::new(WORK, round + 1), None);
                }
                Flow::Continue
            },
        )
        .expect("spawn medium");

    // LOW: processes an unconstrained warm-up message with several yields
    // (so the HIGH request queues behind it), then answers requests.
    let low = kernel
        .spawn(
            SpawnOptions::new("low").priority(Priority::LOW),
            move |ctx: &mut Ctx<'_>, env: Envelope| {
                if env.wants_reply() {
                    let _ = ctx.reply(&env, Message::signal(REQ));
                    return Flow::Continue;
                }
                // The "critical section": scheduling-visible work steps.
                for _ in 0..20 {
                    let _ = ctx.yield_now();
                }
                Flow::Continue
            },
        )
        .expect("spawn low");

    // HIGH: triggers LOW's critical section and MEDIUM's storm, then
    // sync-sends to LOW and counts the medium units that ran meanwhile.
    let medium_units3 = Arc::clone(&medium_units);
    let observed = Arc::clone(&units_while_waiting);
    let high = kernel
        .spawn(
            SpawnOptions::new("high").priority(Priority::HIGH),
            move |ctx: &mut Ctx<'_>, _env: Envelope| {
                let _ = ctx.send_with(low, Message::signal(WORK), None);
                let _ = ctx.send_with(medium, Message::new(WORK, 0u64), None);
                let before = medium_units3.load(Ordering::Relaxed);
                let pending = ctx
                    .begin_sync_with(
                        low,
                        Message::signal(REQ),
                        Some(Constraint::priority(Priority::HIGH)),
                    )
                    .expect("begin");
                let _ = ctx.wait(pending);
                let after = medium_units3.load(Ordering::Relaxed);
                observed.store(after - before, Ordering::Relaxed);
                Flow::Stop
            },
        )
        .expect("spawn high");

    let port = kernel.external("bench");
    port.send(high, Message::signal(WORK)).expect("kick");
    kernel.wait_quiescent();
    kernel.shutdown();
    units_while_waiting.load(Ordering::Relaxed)
}

fn bench_inheritance(c: &mut Criterion) {
    let with = run_scenario(true);
    let without = run_scenario(false);
    println!(
        "medium work units executed while HIGH waited on LOW: \
         with inheritance {with}, without {without}"
    );
    assert!(
        with < without,
        "inheritance must reduce inversion: {with} vs {without}"
    );

    let mut group = c.benchmark_group("priority_inheritance");
    group.sample_size(10);
    for (label, on) in [("with", true), ("without", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &on, |b, &on| {
            b.iter(|| run_scenario(on));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inheritance);
criterion_main!(benches);
