//! E1 — §4's quantitative claim: "A context switch between the user level
//! threads takes about 1 µs; the time for a mere function call is two
//! orders of magnitude shorter. Hence … threads and coroutines are
//! introduced only when necessary."
//!
//! * `context_switch`: one synchronous hand-off between two kernel
//!   threads (half a ping-pong round trip).
//! * `direct_function_call`: one item moved through a directly-called
//!   function stage.

use criterion::{criterion_group, criterion_main, Criterion};
use infopipes::helpers::IdentityFn;
use infopipes::{Function, Item};
use mbthread::{Ctx, Envelope, Flow, Kernel, KernelConfig, Message, Tag};
use std::hint::black_box;
use std::time::Instant;

const PING: Tag = Tag(1);

fn bench_context_switch(c: &mut Criterion) {
    let kernel = Kernel::new(KernelConfig::default());
    let echo = kernel
        .spawn("echo", |ctx: &mut Ctx<'_>, env: Envelope| {
            let _ = ctx.reply(&env, Message::signal(PING));
            Flow::Continue
        })
        .expect("spawn");
    let port = kernel.external("bench");

    c.bench_function("context_switch", |b| {
        b.iter_custom(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                let _ = black_box(port.send_sync(echo, Message::signal(PING)));
            }
            // A round trip is two hand-offs (to the echo thread and back).
            start.elapsed() / 2
        });
    });
    kernel.shutdown();
}

fn bench_function_call(c: &mut Criterion) {
    // The direct-call path the planner prefers: a boxed dyn Function
    // invocation, exactly what one stage costs inside a section.
    let mut stage: Box<dyn Function> = Box::new(IdentityFn::new("f"));
    c.bench_function("direct_function_call", |b| {
        b.iter(|| {
            let item = Item::new(black_box(42u64));
            black_box(stage.convert(item))
        });
    });
}

criterion_group!(benches, bench_context_switch, bench_function_call);
criterion_main!(benches);
