//! E5 — Fig. 1's jitter buffer: presentation jitter with and without the
//! buffer + clocked output pump, under bursty (size-dependent) decode
//! times. The quality numbers are printed; criterion times the runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infopipes::{BufferSpec, ClockedPump, FreePump, Pipeline};
use mbthread::{Kernel, KernelConfig};
use media::{DecodeCost, Decoder, DisplaySink, GopStructure, MpegFileSource};
use std::time::Duration;

const FRAMES: u64 = 90;
const FPS: f64 = 30.0;

fn run(buffered: bool) -> (usize, f64) {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let result = {
        let pipeline = Pipeline::new(&kernel, "jitter");
        let source = pipeline.add_producer(
            "mpeg-file",
            MpegFileSource::new(GopStructure::ibbp(), FRAMES, FPS, 4000, 7),
        );
        let decode = pipeline.add_consumer(
            "decode",
            Decoder::new(
                GopStructure::ibbp(),
                DecodeCost {
                    base: Duration::from_millis(2),
                    per_kilobyte: Duration::from_millis(4),
                },
            ),
        );
        let (display, stats) = DisplaySink::new();
        let sink = pipeline.add_consumer("display", display);
        if buffered {
            let pump_in = pipeline.add_pump("pump-in", FreePump::new());
            let buf = pipeline.add_buffer_with("jitter-buf", BufferSpec::bounded(16));
            let pump_out = pipeline.add_pump("pump-out", ClockedPump::hz(FPS));
            let _ = source >> decode >> pump_in >> buf >> pump_out >> sink;
        } else {
            let pump = pipeline.add_pump("pump", FreePump::new());
            let _ = source >> decode >> pump >> sink;
        }
        let running = pipeline.start().expect("plan");
        running.start_flow().expect("start");
        running.wait_quiescent();
        let s = stats.lock();
        (s.count(), s.timing.jitter_us().unwrap_or(0.0))
    };
    kernel.shutdown();
    result
}

fn bench_jitter(c: &mut Criterion) {
    for (label, buffered) in [("unbuffered", false), ("jitter-buffered", true)] {
        let (frames, jitter) = run(buffered);
        println!("{label}: {frames} frames, presentation jitter {jitter:.1} us");
    }
    let mut group = c.benchmark_group("jitter_buffer");
    group.sample_size(10);
    for (label, buffered) in [("unbuffered", false), ("buffered", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &buffered, |b, &buf| {
            b.iter(|| run(buf));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_jitter);
criterion_main!(benches);
