//! E6 — §4's MIDI motivation: "for pipelines that handle many control
//! events or many small data items such as a MIDI mixer … allocating a
//! thread for each pipeline component would introduce a significant
//! context switching overhead." Sweeps chain length for the
//! thread-transparent allocation (all direct calls) versus a
//! coroutine-per-component chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infopipes::helpers::{ActiveRelay, IdentityFn};
use infopipes::{FreePump, Pipeline};
use mbthread::{Kernel, KernelConfig};
use media::{MidiSink, MidiSource};

const EVENTS: u64 = 300;

fn run(chain_len: usize, per_component_threads: bool) -> (usize, u64) {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let result = {
        let pipeline = Pipeline::new(&kernel, "midi");
        let src = pipeline.add_producer("src", MidiSource::new(0, EVENTS, 100));
        let pump = pipeline.add_pump("pump", FreePump::new());
        let (sink, out) = MidiSink::new();
        let sink = pipeline.add_consumer("sink", sink);
        let mut prev = pipeline.connect(src, pump).map(|()| pump).expect("connect");
        for i in 0..chain_len {
            let name = format!("s{i}");
            let node = if per_component_threads {
                // An active relay forces one kernel thread per component.
                pipeline.add_active(&name, ActiveRelay::new(&name))
            } else {
                // A function stage is callable directly.
                pipeline.add_function(&name, IdentityFn::new(&name))
            };
            pipeline.connect(prev, node).expect("connect");
            prev = node;
        }
        pipeline.connect(prev, sink).expect("connect");

        let running = pipeline.start().expect("plan");
        let before = kernel.stats();
        running.start_flow().expect("start");
        running.wait_quiescent();
        let delta = kernel.stats().delta_since(&before);
        let n = out.lock().len();
        (n, delta.context_switches)
    };
    kernel.shutdown();
    result
}

fn bench_midi(c: &mut Criterion) {
    println!("\ncontext switches for {EVENTS} MIDI events:");
    println!(
        "{:<8} {:>22} {:>22}",
        "chain", "transparent (direct)", "thread-per-component"
    );
    for len in [1usize, 2, 4, 8] {
        let (n1, sw_direct) = run(len, false);
        let (n2, sw_threads) = run(len, true);
        assert_eq!(n1 as u64, EVENTS);
        assert_eq!(n2 as u64, EVENTS);
        println!("{len:<8} {sw_direct:>22} {sw_threads:>22}");
    }

    let mut group = c.benchmark_group("midi_chain");
    group.sample_size(10);
    for len in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("direct", len), &len, |b, &len| {
            b.iter(|| run(len, false));
        });
        group.bench_with_input(
            BenchmarkId::new("thread_per_component", len),
            &len,
            |b, &len| {
                b.iter(|| run(len, true));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_midi);
criterion_main!(benches);
