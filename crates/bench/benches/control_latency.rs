//! E7 — §2.2/§3.2: control events are delivered "with higher priority
//! than potentially long-running data processing". Measures the latency
//! from broadcasting a control event to its handler running, while
//! several busy video-like sections hog the kernel — with priority
//! scheduling on versus the FIFO ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infopipes::helpers::IterSource;
use infopipes::{
    ControlEvent, EventCtx, FreePump, Item, Pipeline, RunningPipeline, Stage, StageCtx,
};
use mbthread::{Kernel, KernelConfig};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A data stage that burns real CPU time per item (non-preemptible work,
/// like a software video decoder).
struct SpinStage {
    work: Duration,
}

impl Stage for SpinStage {
    fn name(&self) -> &str {
        "spin-decoder"
    }
}

impl infopipes::Consumer for SpinStage {
    fn push(&mut self, ctx: &mut StageCtx<'_, '_>, item: Item) {
        let start = Instant::now();
        while start.elapsed() < self.work {
            std::hint::spin_loop();
        }
        ctx.put(item);
    }
}

/// A sink that swallows items.
struct Devourer;

impl Stage for Devourer {
    fn name(&self) -> &str {
        "devourer"
    }
}

impl infopipes::Consumer for Devourer {
    fn push(&mut self, _ctx: &mut StageCtx<'_, '_>, _item: Item) {}
}

/// The probe: records when its control handler actually ran.
struct EventProbe {
    seen: Arc<Mutex<Option<Instant>>>,
}

impl Stage for EventProbe {
    fn name(&self) -> &str {
        "event-probe"
    }

    fn on_event(&mut self, _ctx: &mut EventCtx<'_, '_>, event: &ControlEvent) {
        if event.kind_name() == "probe" {
            let mut seen = self.seen.lock();
            if seen.is_none() {
                *seen = Some(Instant::now());
            }
        }
    }
}

impl infopipes::Consumer for EventProbe {
    fn push(&mut self, _ctx: &mut StageCtx<'_, '_>, _item: Item) {}
}

struct Setup {
    kernel: Kernel,
    running: RunningPipeline,
    seen: Arc<Mutex<Option<Instant>>>,
}

fn build(priority_scheduling: bool, busy_sections: usize) -> Setup {
    // Broadcast control events land in *every* thread's queue; with
    // queue-based inheritance enabled they would boost the busy sections
    // too, masking the scheduling effect this experiment isolates.
    let cfg = KernelConfig {
        priority_scheduling,
        priority_inheritance: false,
        ..KernelConfig::default()
    };
    let kernel = Kernel::new(cfg);

    let pipeline = Pipeline::new(&kernel, "latency");
    // Busy sections: endless flows through 800 us of spinning each.
    for i in 0..busy_sections {
        let src = pipeline.add_producer(
            &format!("src{i}"),
            IterSource::new(format!("src{i}"), 0u64..u64::MAX),
        );
        let pump = pipeline.add_pump(&format!("pump{i}"), FreePump::new());
        let spin = pipeline.add_consumer(
            &format!("spin{i}"),
            SpinStage {
                work: Duration::from_micros(800),
            },
        );
        let sink = pipeline.add_consumer(&format!("sink{i}"), Devourer);
        let _ = src >> pump >> spin >> sink;
    }
    // The probe section: idle, but its thread receives events.
    let seen = Arc::new(Mutex::new(None));
    let probe_src = pipeline.add_producer("probe-src", IterSource::new("probe-src", 0u64..0));
    let probe_pump = pipeline.add_pump("probe-pump", FreePump::new());
    let probe = pipeline.add_consumer(
        "probe",
        EventProbe {
            seen: Arc::clone(&seen),
        },
    );
    let _ = probe_src >> probe_pump >> probe;
    let running = pipeline.start().expect("plan");
    running.start_flow().expect("start");
    // Let the busy sections spin up.
    std::thread::sleep(Duration::from_millis(20));
    Setup {
        kernel,
        running,
        seen,
    }
}

fn measure_once(setup: &Setup) -> Duration {
    *setup.seen.lock() = None;
    let t0 = Instant::now();
    setup
        .running
        .send_event(ControlEvent::custom("probe", 0.0))
        .expect("send");
    loop {
        if let Some(at) = *setup.seen.lock() {
            return at.duration_since(t0);
        }
        if t0.elapsed() > Duration::from_secs(5) {
            panic!("control event was never delivered");
        }
        std::hint::spin_loop();
    }
}

fn bench_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("control_latency");
    group.sample_size(20);
    for (label, prio) in [("priority", true), ("fifo", false)] {
        let setup = build(prio, 4);
        // Print a one-shot reading for EXPERIMENTS.md.
        let sample = measure_once(&setup);
        println!("control latency under load, {label} scheduling: {sample:?}");
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, ()| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += measure_once(&setup);
                }
                total
            });
        });
        setup.running.stop().ok();
        setup.kernel.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_latency);
criterion_main!(benches);
