//! E9 — §2.3: the cost of Typespec processing. Composition-time
//! type checking must be cheap enough to run on every connect; this bench
//! measures spec intersection and chain checking as pipelines grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use typespec::{
    check_chain, check_connection, IdentityTransform, Polarity, QosKey, QosRange, Typespec,
};

fn rich_spec() -> Typespec {
    Typespec::of::<u64>()
        .with_qos(QosKey::FrameRateHz, QosRange::new(1.0, 60.0))
        .with_qos(QosKey::LatencyMs, QosRange::at_most(100.0))
        .with_qos(QosKey::JitterMs, QosRange::at_most(5.0))
        .with_qos(QosKey::BandwidthBps, QosRange::at_most(1e9))
        .offering_event("window-resize")
        .offering_event("frame-release")
        .with_prop("codec", "synthetic-mpeg")
        .at_location("producer")
}

fn bench_intersect(c: &mut Criterion) {
    let a = rich_spec();
    let b = rich_spec().with_qos(QosKey::FrameRateHz, QosRange::at_most(30.0));
    c.bench_function("typespec_intersect", |bch| {
        bch.iter(|| black_box(black_box(&a).intersect(black_box(&b))));
    });
}

fn bench_connection(c: &mut Criterion) {
    let offered = rich_spec();
    let accepted = rich_spec().with_qos(QosKey::FrameRateHz, QosRange::at_most(30.0));
    c.bench_function("typespec_check_connection", |bch| {
        bch.iter(|| {
            black_box(check_connection(
                black_box(&offered),
                Polarity::Positive,
                black_box(&accepted),
                Polarity::Polymorphic,
            ))
        });
    });
}

fn bench_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("typespec_check_chain");
    for len in [2usize, 8, 32, 64] {
        let source = rich_spec();
        let accepts: Vec<Typespec> = (0..len).map(|_| rich_spec()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |bch, _| {
            bch.iter(|| {
                let stages: Vec<(&Typespec, &dyn typespec::SpecTransform)> = accepts
                    .iter()
                    .map(|a| (a, &IdentityTransform as &dyn typespec::SpecTransform))
                    .collect();
                black_box(check_chain(black_box(&source), &stages))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_intersect, bench_connection, bench_chain);
criterion_main!(benches);
