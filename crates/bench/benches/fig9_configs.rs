//! E2 — Fig. 9: per-item cost of each pipeline configuration. The
//! planner's allocations (1/1/1/2/3/3/2/2 threads for a–h) determine how
//! many synchronous hand-offs each item costs; direct-call configurations
//! (a, b, c) move items for the price of function calls.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infopipes_bench::{run_fig9, FIG9};

const ITEMS: u32 = 500;

fn bench_fig9(c: &mut Criterion) {
    // Print the allocation table once, alongside the timing results.
    println!("\nFig. 9 thread/coroutine allocations ({ITEMS} items each):");
    println!(
        "{:<8} {:>8} {:>10} {:>14} {:>16}",
        "config", "threads", "expected", "ctx switches", "kernel messages"
    );
    for cfg in &FIG9 {
        let (report, delivered, stats) = run_fig9(cfg, ITEMS);
        assert_eq!(delivered as u32, ITEMS);
        assert_eq!(report.total_threads(), cfg.expected_threads);
        println!(
            "{:<8} {:>8} {:>10} {:>14} {:>16}",
            cfg.label,
            report.total_threads(),
            cfg.expected_threads,
            stats.context_switches,
            stats.messages_sent
        );
    }

    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    for cfg in &FIG9 {
        group.bench_with_input(BenchmarkId::from_parameter(cfg.label), cfg, |b, cfg| {
            b.iter(|| run_fig9(cfg, ITEMS));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
