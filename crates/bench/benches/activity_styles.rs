//! E3 — Figs. 4/6/8: the defragmenter in each activity style, in both
//! positions. Matching styles run as direct calls; mismatched styles pay
//! for coroutine hand-offs. All produce identical output (checked by the
//! integration tests); this bench measures what each choice costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infopipes::helpers::{ActiveDefrag, CollectSink, IterSource, PullDefrag, PushDefrag};
use infopipes::{FreePump, Pipeline};
use mbthread::{Kernel, KernelConfig};

const FRAGMENTS: u8 = 200;

fn run(style: &str, push_mode: bool) -> usize {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let produced = {
        let pipeline = Pipeline::new(&kernel, "styles");
        let fragments: Vec<Vec<u8>> = (0..FRAGMENTS).map(|i| vec![i; 16]).collect();
        let source = pipeline.add_producer("source", IterSource::new("source", fragments));
        let (sink, out) = CollectSink::<Vec<u8>>::new("sink");
        let sink = pipeline.add_consumer("sink", sink);
        let defrag = match style {
            "consumer" => pipeline.add_consumer("defrag", PushDefrag::new()),
            "producer" => pipeline.add_producer("defrag", PullDefrag::new()),
            "active" => pipeline.add_active("defrag", ActiveDefrag::new()),
            other => unreachable!("unknown style {other}"),
        };
        let pump = pipeline.add_pump("pump", FreePump::new());
        if push_mode {
            let _ = source >> pump >> defrag >> sink;
        } else {
            let _ = source >> defrag >> pump >> sink;
        }
        let running = pipeline.start().expect("plan");
        running.start_flow().expect("start");
        running.wait_quiescent();
        let n = out.lock().len();
        n
    };
    kernel.shutdown();
    assert_eq!(produced, usize::from(FRAGMENTS) / 2);
    produced
}

fn bench_styles(c: &mut Criterion) {
    let mut group = c.benchmark_group("defrag_styles");
    group.sample_size(10);
    for style in ["consumer", "producer", "active"] {
        for (mode, push) in [("push", true), ("pull", false)] {
            group.bench_with_input(
                BenchmarkId::new(style, mode),
                &(style, push),
                |b, (style, push)| b.iter(|| run(style, *push)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_styles);
criterion_main!(benches);
