//! Shared scaffolding for the benchmark harness.
//!
//! Each bench or report binary regenerates one of the paper's quantitative
//! claims; see `EXPERIMENTS.md` at the workspace root for the
//! paper-vs-measured record.

use infopipes::helpers::{
    ActiveRelay, CollectSink, IdentityFn, IterSource, RelayConsumer, RelayProducer,
};
use infopipes::{FreePump, Pipeline, PlanReport};
use mbthread::{Kernel, KernelConfig, KernelStats};

/// Which of the three slots (upstream, downstream) holds which style in a
/// Fig. 9 configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Slot {
    /// Pull-style identity relay.
    Producer,
    /// Push-style identity relay.
    Consumer,
    /// Function-style identity.
    Function,
    /// Active-object relay.
    Active,
}

/// One of the paper's Fig. 9 pipeline configurations: two components and
/// a pump in one of three positions.
#[derive(Copy, Clone, Debug)]
pub struct Fig9Config {
    /// The figure's sub-label (a–h).
    pub label: &'static str,
    /// Component styles, upstream to downstream.
    pub components: [Slot; 2],
    /// Index of the pump among the three positions (0 = before both,
    /// 1 = between, 2 = after both).
    pub pump_position: usize,
    /// The thread count the paper's §4 implementation notes prescribe.
    pub expected_threads: usize,
}

/// The eight configurations of Fig. 9 with their expected coroutine-set
/// sizes ("a), b), and c) [need one thread]; for configurations d), g),
/// and h) there is a set of two coroutines and for e) and f) … three").
pub const FIG9: [Fig9Config; 8] = [
    Fig9Config {
        label: "a",
        components: [Slot::Producer, Slot::Consumer],
        pump_position: 1,
        expected_threads: 1,
    },
    Fig9Config {
        label: "b",
        components: [Slot::Function, Slot::Function],
        pump_position: 1,
        expected_threads: 1,
    },
    Fig9Config {
        label: "c",
        components: [Slot::Consumer, Slot::Consumer],
        pump_position: 0,
        expected_threads: 1,
    },
    Fig9Config {
        label: "d",
        components: [Slot::Active, Slot::Function],
        pump_position: 1,
        expected_threads: 2,
    },
    Fig9Config {
        label: "e",
        components: [Slot::Consumer, Slot::Producer],
        pump_position: 1,
        expected_threads: 3,
    },
    Fig9Config {
        label: "f",
        components: [Slot::Active, Slot::Active],
        pump_position: 1,
        expected_threads: 3,
    },
    Fig9Config {
        label: "g",
        components: [Slot::Consumer, Slot::Active],
        pump_position: 0,
        expected_threads: 2,
    },
    Fig9Config {
        label: "h",
        components: [Slot::Consumer, Slot::Producer],
        pump_position: 2,
        expected_threads: 2,
    },
];

/// Runs one Fig. 9 configuration over `items` integers on a virtual-time
/// kernel; returns the plan report, the items that reached the sink, and
/// the kernel-counter delta for the run.
#[must_use]
pub fn run_fig9(cfg: &Fig9Config, items: u32) -> (PlanReport, usize, KernelStats) {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let result = {
        let pipeline = Pipeline::new(&kernel, "fig9");
        let source = pipeline.add_producer("source", IterSource::new("source", 0..items));
        let (sink, out) = CollectSink::<u32>::new("sink");
        let sink = pipeline.add_consumer("sink", sink);

        let mut nodes = Vec::new();
        for (i, slot) in cfg.components.iter().enumerate() {
            if cfg.pump_position == i {
                nodes.push(pipeline.add_pump("pump", FreePump::new()));
            }
            let name = format!("x{i}");
            nodes.push(match slot {
                Slot::Producer => pipeline.add_producer(&name, RelayProducer::new(&name)),
                Slot::Consumer => pipeline.add_consumer(&name, RelayConsumer::new(&name)),
                Slot::Function => pipeline.add_function(&name, IdentityFn::new(&name)),
                Slot::Active => pipeline.add_active(&name, ActiveRelay::new(&name)),
            });
        }
        if cfg.pump_position >= cfg.components.len() {
            nodes.push(pipeline.add_pump("pump", FreePump::new()));
        }

        let mut prev = source;
        for node in nodes {
            pipeline.connect(prev, node).expect("chain connects");
            prev = node;
        }
        pipeline.connect(prev, sink).expect("sink connects");

        let running = pipeline.start().expect("plan");
        let report = running.report().clone();
        let before = kernel.stats();
        running.start_flow().expect("start");
        running.wait_quiescent();
        let delta = kernel.stats().delta_since(&before);
        let count = out.lock().len();
        (report, count, delta)
    };
    kernel.shutdown();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fig9_configs_match_the_paper() {
        for cfg in &FIG9 {
            let (report, delivered, _) = run_fig9(cfg, 50);
            assert_eq!(
                report.total_threads(),
                cfg.expected_threads,
                "config {}: {report}",
                cfg.label
            );
            assert_eq!(delivered, 50, "config {} lost items", cfg.label);
        }
    }
}
