//! Allocation and syscall census for the steady-state frame path.
//!
//! A counting [`GlobalAlloc`] wrapped around the system allocator tallies
//! every heap allocation in the process; socket-write syscalls come from
//! the transports' `wire_writes` counter (each entry is one `write`/
//! `writev`/`sendto` on the wire). Each case drives a warm-up pass first,
//! then measures the per-frame deltas:
//!
//! * **inproc_pooled** — the zero-allocation claim: pooled sealing
//!   (`wire::to_payload_in`) → lock-free inproc ring → `recv` → decode →
//!   drop-recycles, in a tight loop. After warm-up this is *exactly* 0
//!   allocations and 0 socket writes per frame, and the run fails (exit
//!   1) otherwise.
//! * **inproc_unpooled** — the same loop sealing through `wire::to_payload`
//!   (fresh `Vec` + `Arc` per frame), for contrast. Published only.
//! * **pipeline_inproc** — the full scheduled pipeline (pumps, inbox,
//!   drain thread) from the zero-copy bench. The scheduler parks and
//!   boxes per item, so this is *not* zero; published to keep the claim
//!   honest about where the remaining allocations live.
//! * **tcp_batched / tcp_unbatched** — 256-byte frames over loopback TCP
//!   with the default [`BatchPolicy`](netpipe::BatchPolicy) versus `unbatched()`. Batching must
//!   deliver >= 1.5x frames/sec (exit 1 otherwise); syscalls/frame shows
//!   why (one `writev` carries up to 64 frames).
//! * **udp_packed** — small frames packed into shared datagrams; the
//!   sub-1.0 sends/frame is the packing at work. Published only.
//!
//! Run with `cargo run --release -p infopipes-bench --bin alloc_report`.
//! Writes `BENCH_alloc.json` into the current directory. `--smoke` runs
//! tiny frame counts and skips both hard gates (for CI).

use infopipes::helpers::{CollectSink, FnFunction, IterSource};
use infopipes::{BufferPool, BufferSpec, FreePump, PayloadBytes, Pipeline};
use mbthread::{Kernel, KernelConfig};
use netpipe::wire;
use netpipe::{
    Acceptor, Frame, InProcTransport, Link, PipelineTransportExt, RecvOutcome, TcpTransport,
    Transport, UdpTransport,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Counts every allocation event (`alloc`, `alloc_zeroed`, `realloc`)
/// and every `dealloc` in the process, then delegates to [`System`].
/// Cases read deltas around their measured section.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREES.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn frees() -> u64 {
    FREES.load(Ordering::Relaxed)
}

struct CaseResult {
    name: &'static str,
    frames: usize,
    allocs_per_frame: f64,
    frees_per_frame: f64,
    wire_writes_per_frame: f64,
    frames_per_sec: f64,
}

impl CaseResult {
    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\"case\": \"{}\", \"frames\": {}, ",
                "\"allocs_per_frame\": {:.4}, \"frees_per_frame\": {:.4}, ",
                "\"wire_writes_per_frame\": {:.4}, \"frames_per_sec\": {:.0}}}"
            ),
            self.name,
            self.frames,
            self.allocs_per_frame,
            self.frees_per_frame,
            self.wire_writes_per_frame,
            self.frames_per_sec
        )
    }
}

/// One round trip over the inproc lane primitives: seal a `u64`, send it
/// as a data frame, receive it back, decode, and let the drop recycle.
fn inproc_step(pool: Option<&BufferPool>, link: &impl Link, server: &impl Link, i: u64) {
    let payload = match pool {
        Some(pool) => wire::to_payload_in(pool, 64, &i).expect("seal"),
        None => wire::to_payload(&i).expect("seal"),
    };
    assert!(link.send(Frame::Data(payload)).accepted(), "ring full");
    match server.recv(Duration::from_secs(5)) {
        RecvOutcome::Frame(Frame::Data(p)) => {
            let back: u64 = wire::from_bytes(&p).expect("decode");
            assert_eq!(back, i, "round trip");
        }
        other => panic!("expected data frame, got {other:?}"),
    }
}

/// The tight-loop lane: no scheduler, no threads — exactly the per-frame
/// cost of pooled (or unpooled) sealing plus the lock-free ring.
fn inproc_lane(name: &'static str, frames: usize, pooled: bool) -> CaseResult {
    let transport = InProcTransport::with_capacity(64);
    let acceptor = transport.listen("alloc-lane").unwrap();
    let link = transport.connect("alloc-lane").unwrap();
    let server = acceptor.accept().unwrap();
    let pool = BufferPool::new();
    let pool = pooled.then_some(&pool);

    // Warm-up: first touches allocate (pool classes, ring wakeups, lazy
    // thread-locals); the steady state must not.
    for i in 0..(frames / 4).max(16) {
        inproc_step(pool, &link, &server, i as u64);
    }

    let (a0, f0, t0) = (allocs(), frees(), Instant::now());
    for i in 0..frames {
        inproc_step(pool, &link, &server, i as u64);
    }
    let elapsed = t0.elapsed();
    let (da, df) = (allocs() - a0, frees() - f0);
    CaseResult {
        name,
        frames,
        allocs_per_frame: da as f64 / frames as f64,
        frees_per_frame: df as f64 / frames as f64,
        wire_writes_per_frame: link.stats().wire_writes as f64 / frames as f64,
        frames_per_sec: frames as f64 / elapsed.as_secs_f64(),
    }
}

/// The full scheduled path (producer pump → net sink → inproc ring →
/// drain thread → inbox → consumer pump → sink): what a frame costs once
/// the kernel is in the loop.
fn pipeline_lane(frames: usize) -> CaseResult {
    let kernel = Kernel::new(KernelConfig::default());
    let result = {
        let transport = InProcTransport::with_capacity(2 * frames.max(1024));
        let acceptor = transport.listen("lane").unwrap();
        let link = transport.connect("lane").unwrap();
        let receiver_end = acceptor.accept().unwrap();

        let template = PayloadBytes::from_vec(vec![0x5Au8; 64]);
        let inputs: Vec<PayloadBytes> = (0..frames).map(|_| template.clone()).collect();

        let consumer = Pipeline::new(&kernel, "consumer");
        let (inbox, inbox_sender) =
            consumer.add_inbox("net-in", BufferSpec::bounded(2 * frames.max(1024)));
        let pump_in = consumer.add_pump("pump-in", FreePump::new());
        let count = consumer.add_function(
            "count",
            FnFunction::new("count", |b: PayloadBytes| Some(b.len() as u64)),
        );
        let (sink, out) = CollectSink::<u64>::new("sink");
        let sink = consumer.add_consumer("sink", sink);
        let _ = inbox >> pump_in >> count >> sink;
        receiver_end
            .bind_receiver(Some(inbox_sender), |_| {})
            .unwrap();
        let running_consumer = consumer.start().unwrap();
        running_consumer.start_flow().unwrap();

        let producer = Pipeline::new(&kernel, "producer");
        let src = producer.add_producer("src", IterSource::new("src", inputs));
        let pump_out = producer.add_pump("pump-out", FreePump::new());
        let send = producer.add_net_sink("send", &link);
        let _ = src >> pump_out >> send;
        let running_producer = producer.start().unwrap();

        let (a0, f0, t0) = (allocs(), frees(), Instant::now());
        running_producer.start_flow().unwrap();
        let deadline = t0 + Duration::from_secs(120);
        while out.lock().len() < frames {
            assert!(Instant::now() < deadline, "pipeline stalled");
            std::thread::sleep(Duration::from_millis(1));
        }
        let elapsed = t0.elapsed();
        let (da, df) = (allocs() - a0, frees() - f0);
        CaseResult {
            name: "pipeline_inproc",
            frames,
            allocs_per_frame: da as f64 / frames as f64,
            frees_per_frame: df as f64 / frames as f64,
            wire_writes_per_frame: link.stats().wire_writes as f64 / frames as f64,
            frames_per_sec: frames as f64 / elapsed.as_secs_f64(),
        }
    };
    kernel.shutdown();
    result
}

/// Drives `frames` small data frames through a socket transport while a
/// consumer thread drains the far end; returns the per-frame numbers
/// from the *sender's* link stats (`wire_writes` / `sent`).
fn socket_lane<T: Transport>(
    name: &'static str,
    transport: T,
    frames: usize,
    frame_bytes: usize,
) -> CaseResult {
    let acceptor = transport.listen("127.0.0.1:0").unwrap();
    let link = transport.connect(&acceptor.local_addr()).unwrap();
    let server = acceptor.accept().unwrap();
    let pool = BufferPool::new();

    // Consumer: count data frames until the stream's `Fin`.
    let consumer = std::thread::spawn(move || {
        let mut got = 0usize;
        loop {
            match server.recv(Duration::from_secs(30)) {
                RecvOutcome::Frame(Frame::Data(_)) => got += 1,
                RecvOutcome::Frame(_) => {}
                RecvOutcome::Fin | RecvOutcome::Closed => return got,
                RecvOutcome::TimedOut => panic!("{name}: receiver starved"),
            }
        }
    });

    // Data frames carry already-marshalled bytes (the inproc cases
    // exercise the marshalling path); here the sender just seals the
    // template out of the pool so the wire is the measured cost.
    let body = vec![0xC3u8; frame_bytes];
    let send_one = || {
        let mut buf = pool.acquire(frame_bytes);
        buf.buf_mut().extend_from_slice(&body);
        let frame = Frame::Data(buf.seal());
        // A full send queue refuses rather than blocks; spin until the
        // writer drains it.
        while !link.send(frame.clone()).accepted() {
            std::thread::yield_now();
        }
    };

    for _ in 0..(frames / 10).max(16) {
        send_one();
    }

    let (a0, f0, t0) = (allocs(), frees(), Instant::now());
    let sent_before = link.stats().sent;
    let writes_before = link.stats().wire_writes;
    for _ in 0..frames {
        send_one();
    }
    assert!(link.send(Frame::Fin).accepted(), "fin refused");
    let got = consumer.join().expect("consumer thread");
    let elapsed = t0.elapsed();
    let (da, df) = (allocs() - a0, frees() - f0);
    let stats = link.stats();

    // UDP is lossy by contract; TCP must deliver everything.
    let expected = frames + (frames / 10).max(16);
    assert!(
        got <= expected && (name.starts_with("udp") || got == expected),
        "{name}: delivered {got} of {expected}"
    );
    let measured_sent = (stats.sent - sent_before).max(1);
    CaseResult {
        name,
        frames,
        allocs_per_frame: da as f64 / frames as f64,
        frees_per_frame: df as f64 / frames as f64,
        wire_writes_per_frame: (stats.wire_writes - writes_before) as f64 / measured_sent as f64,
        frames_per_sec: frames as f64 / elapsed.as_secs_f64(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (inproc_frames, pipeline_frames, socket_frames) = if smoke {
        (512, 256, 256)
    } else {
        (200_000, 20_000, 30_000)
    };

    // Thread-free cases first: nothing else may allocate while the
    // zero-allocation loop is measured.
    let pooled = inproc_lane("inproc_pooled", inproc_frames, true);
    let unpooled = inproc_lane("inproc_unpooled", inproc_frames, false);
    let pipeline = pipeline_lane(pipeline_frames);
    let tcp_batched = socket_lane("tcp_batched", TcpTransport::new(), socket_frames, 256);
    let tcp_unbatched = socket_lane(
        "tcp_unbatched",
        TcpTransport::new().without_batching(),
        socket_frames,
        256,
    );
    let udp_packed = socket_lane("udp_packed", UdpTransport::new(), socket_frames, 256);

    let cases = [
        &pooled,
        &unpooled,
        &pipeline,
        &tcp_batched,
        &tcp_unbatched,
        &udp_packed,
    ];
    println!(
        "{:>16} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "case", "frames", "allocs/frm", "frees/frm", "writes/frm", "frames/s"
    );
    for c in cases {
        println!(
            "{:>16} {:>8} {:>12.4} {:>12.4} {:>12.4} {:>12.0}",
            c.name,
            c.frames,
            c.allocs_per_frame,
            c.frees_per_frame,
            c.wire_writes_per_frame,
            c.frames_per_sec
        );
    }

    let speedup = tcp_batched.frames_per_sec / tcp_unbatched.frames_per_sec;
    println!("tcp batched vs unbatched: {speedup:.2}x frames/sec");

    let rows: Vec<String> = cases.iter().map(|c| c.json()).collect();
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"alloc_report\",\n",
            "  \"note\": \"wire_writes are socket write syscalls on the send path\",\n",
            "  \"tcp_batch_speedup\": {:.3},\n  \"cases\": [\n{}\n  ]\n}}\n"
        ),
        speedup,
        rows.join(",\n")
    );
    let mut f = std::fs::File::create("BENCH_alloc.json").expect("create BENCH_alloc.json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("wrote BENCH_alloc.json");

    if smoke {
        println!("smoke mode: skipping the allocation and speedup gates");
        return;
    }
    let mut failed = false;
    // The acceptance bar: a warmed pooled lane allocates nothing at all.
    if pooled.allocs_per_frame != 0.0 || pooled.wire_writes_per_frame != 0.0 {
        eprintln!(
            "FAIL: inproc_pooled not allocation-free ({:.4} allocs, {:.4} writes per frame)",
            pooled.allocs_per_frame, pooled.wire_writes_per_frame
        );
        failed = true;
    }
    // And batching must buy >= 1.5x on small TCP frames.
    if speedup < 1.5 {
        eprintln!("FAIL: tcp batching speedup {speedup:.2}x < 1.5x");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
