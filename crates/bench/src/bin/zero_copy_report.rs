//! Zero-copy payload-path microbench: bytes/sec over the inproc lane,
//! shared-buffer (`PayloadBytes`) versus the pre-refactor deep-copy
//! semantics, on large frames.
//!
//! The pipeline is the real remote lane — producer pump, a tap at the
//! marshalling position, `NetSendEnd`, the lock-free inproc ring, the
//! drain thread, a bounded inbox, consumer pump, and a tap at the
//! unmarshalling position. The two configurations differ only in the
//! taps:
//!
//! * **zero_copy** — taps pass the sealed buffer through untouched; every
//!   crossing is a refcount (what the middleware does since the
//!   `PayloadBytes` refactor).
//! * **deep_copy** — each tap re-seals the payload through an owned
//!   `Vec`, plus one extra copy at the producer side, reproducing the
//!   three per-frame copies of the old `WireBytes(Vec<u8>)` path
//!   (marshal re-vec, clone at the lane crossing, copy into the
//!   consumer's decode buffer).
//!
//! Run with `cargo run --release -p infopipes-bench --bin
//! zero_copy_report`. Writes `BENCH_zero_copy.json` into the current
//! directory and fails (exit 1) if the large-frame speedup is < 2x.

use infopipes::helpers::{CollectSink, FnFunction, IterSource};
use infopipes::{BufferSpec, FreePump, PayloadBytes, Pipeline};
use mbthread::{Kernel, KernelConfig};
use netpipe::{Acceptor, InProcTransport, Link, PipelineTransportExt, Transport};
use std::io::Write;
use std::time::{Duration, Instant};

struct LaneResult {
    bytes_per_sec: f64,
    elapsed: Duration,
}

/// Drives `frames` frames of `frame_bytes` each over one inproc
/// connection and reports goodput. `deep` switches the taps to the
/// pre-refactor copying semantics.
fn run_lane(frames: usize, frame_bytes: usize, deep: bool) -> LaneResult {
    let kernel = Kernel::new(KernelConfig::default());
    let result = {
        // Ring and inbox sized above the total frame count: the free
        // pump bursts at memory speed and the lossy lane must not shed
        // anything during a throughput measurement.
        let transport = InProcTransport::with_capacity(2 * frames.max(1024));
        let acceptor = transport.listen("lane").unwrap();
        let link = transport.connect("lane").unwrap();
        let receiver_end = acceptor.accept().unwrap();

        // One template allocation; the producer emits `frames` shared
        // views of it, so frame *production* costs the same in both
        // configurations and only the lane crossings differ.
        let template = PayloadBytes::from_vec(vec![0xA5u8; frame_bytes]);
        let inputs: Vec<PayloadBytes> = (0..frames).map(|_| template.clone()).collect();

        let copy_tap = |name: &str, n_copies: usize| {
            FnFunction::new(name, move |b: PayloadBytes| {
                let mut b = b;
                for _ in 0..n_copies {
                    b = PayloadBytes::from_vec(b.to_vec());
                }
                Some(b)
            })
        };

        // Consumer side.
        let consumer = Pipeline::new(&kernel, "consumer");
        let (inbox, inbox_sender) =
            consumer.add_inbox("net-in", BufferSpec::bounded(2 * frames.max(1024)));
        let pump_in = consumer.add_pump("pump-in", FreePump::new());
        let tap_in = consumer.add_function("tap-in", copy_tap("tap-in", usize::from(deep)));
        let count = consumer.add_function(
            "count",
            FnFunction::new("count", |b: PayloadBytes| Some(b.len() as u64)),
        );
        let (sink, out) = CollectSink::<u64>::new("sink");
        let sink = consumer.add_consumer("sink", sink);
        let _ = inbox >> pump_in >> tap_in >> count >> sink;
        receiver_end
            .bind_receiver(Some(inbox_sender), |_| {})
            .unwrap();
        let running_consumer = consumer.start().unwrap();
        running_consumer.start_flow().unwrap();

        // Producer side: in deep mode the marshal-position tap performs
        // two copies (the old path's serialize-to-vec plus the clone
        // handed to the transport).
        let producer = Pipeline::new(&kernel, "producer");
        let src = producer.add_producer("src", IterSource::new("src", inputs));
        let pump_out = producer.add_pump("pump-out", FreePump::new());
        let tap_out =
            producer.add_function("tap-out", copy_tap("tap-out", if deep { 2 } else { 0 }));
        let send = producer.add_net_sink("send", &link);
        let _ = src >> pump_out >> tap_out >> send;
        let running_producer = producer.start().unwrap();

        let started = Instant::now();
        running_producer.start_flow().unwrap();
        let deadline = started + Duration::from_secs(120);
        while out.lock().len() < frames {
            assert!(Instant::now() < deadline, "lane stalled");
            std::thread::sleep(Duration::from_millis(1));
        }
        let elapsed = started.elapsed();
        let delivered: u64 = out.lock().iter().sum();
        assert_eq!(delivered, (frames * frame_bytes) as u64, "no frame lost");
        LaneResult {
            bytes_per_sec: delivered as f64 / elapsed.as_secs_f64(),
            elapsed,
        }
    };
    kernel.shutdown();
    result
}

fn mib_s(b: f64) -> f64 {
    b / (1024.0 * 1024.0)
}

fn main() {
    // `--smoke`: tiny counts so CI proves the harness runs end to end;
    // numbers are meaningless at that scale, so the gate is skipped.
    let smoke = std::env::args().any(|a| a == "--smoke");
    // ≥ 64 KiB frames per the acceptance bar, plus a larger point to
    // show the trend; enough frames to dominate setup cost.
    let cases = if smoke {
        [(64 * 1024usize, 30usize), (1024 * 1024, 10)]
    } else {
        [(64 * 1024usize, 1500usize), (1024 * 1024, 200)]
    };
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    println!(
        "{:>10} {:>8} {:>16} {:>16} {:>9}",
        "frame", "frames", "zero-copy MiB/s", "deep-copy MiB/s", "speedup"
    );
    for (frame_bytes, frames) in cases {
        // Warm-up pass so allocator and thread start-up costs are paid
        // before measurement.
        let _ = run_lane(frames / 10, frame_bytes, false);
        let zero = run_lane(frames, frame_bytes, false);
        let deep = run_lane(frames, frame_bytes, true);
        let speedup = zero.bytes_per_sec / deep.bytes_per_sec;
        println!(
            "{:>10} {:>8} {:>16.1} {:>16.1} {:>8.2}x",
            frame_bytes,
            frames,
            mib_s(zero.bytes_per_sec),
            mib_s(deep.bytes_per_sec),
            speedup
        );
        rows.push(format!(
            concat!(
                "    {{\"frame_bytes\": {}, \"frames\": {}, ",
                "\"zero_copy_bytes_per_sec\": {:.0}, \"deep_copy_bytes_per_sec\": {:.0}, ",
                "\"zero_copy_elapsed_ms\": {:.1}, \"deep_copy_elapsed_ms\": {:.1}, ",
                "\"speedup\": {:.3}}}"
            ),
            frame_bytes,
            frames,
            zero.bytes_per_sec,
            deep.bytes_per_sec,
            zero.elapsed.as_secs_f64() * 1e3,
            deep.elapsed.as_secs_f64() * 1e3,
            speedup
        ));
        speedups.push(speedup);
    }

    let json = format!(
        "{{\n  \"bench\": \"zero_copy_inproc_lane\",\n  \"unit\": \"bytes/sec\",\n  \"cases\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let mut f = std::fs::File::create("BENCH_zero_copy.json").expect("create BENCH_zero_copy.json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("wrote BENCH_zero_copy.json");

    // The acceptance bar: >= 2x on >= 64 KiB frames. Smoke runs are far
    // too short to measure, so they only prove the harness works.
    if smoke {
        println!("smoke mode: skipping the speedup gate");
        return;
    }
    let min_speedup = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    if min_speedup < 2.0 {
        eprintln!("FAIL: speedup {min_speedup:.2}x < 2x on large frames");
        std::process::exit(1);
    }
}
