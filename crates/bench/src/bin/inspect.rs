//! The manifold inspector client: fetches one unified stats snapshot
//! over the inspector control channel and renders it as JSON (`--json`)
//! or a refreshing plain-text table (`--watch`).
//!
//! With `--tcp <addr>` it attaches to a live [`InspectServer`] over real
//! sockets. Without it, the binary self-hosts a demonstration manifold —
//! a producer pipeline saturating a bandwidth-limited SimTransport link,
//! a serving tier fanning out to sim sessions, a buffer pool under
//! pressure, and a feedback loop driven by a
//! [`UnifiedCongestionController`] — and inspects itself over a sim
//! control channel, all under virtual time.
//!
//! `--smoke` (CI gate): fetches one snapshot from the self-hosted
//! manifold, validates it — schema v1, non-empty, every subsystem
//! present, session/link/pool/kernel/feedback sources populated — writes
//! `BENCH_inspect.json`, and exits non-zero if any gate fails.
//!
//! Run with `cargo run -p infopipes-bench --bin inspect -- --json --smoke`.

use feedback::{FeedbackLoop, UnifiedCongestionController};
use infopipes::helpers::IterSource;
use infopipes::{BufferPool, FreePump, Pipeline, StatsRegistry};
use mbthread::{Kernel, KernelConfig};
use netpipe::inspect::{self, InspectClient, InspectServer, WireSnapshot, SCHEMA_VERSION};
use netpipe::{
    Acceptor, Marshal, NetSendEnd, ServeConfig, SessionRegistry, SimConfig, SimTransport,
    TcpTransport, Transport, Unmarshal, SEND_SATURATION_READING,
};
use std::io::Write as _;
use std::time::Duration;

/// Keeps the self-hosted manifold alive while the client reads it.
struct Demo {
    kernel: Kernel,
    server: InspectServer,
    addr: String,
    transport: SimTransport,
    _sessions: SessionRegistry<netpipe::SimLink>,
    _viewer_ends: Vec<netpipe::SimLink>,
    _held: Vec<infopipes::PayloadBytes>,
}

impl Demo {
    fn client(&self) -> InspectClient<netpipe::SimLink> {
        InspectClient::connect(&self.transport, &self.addr).expect("connect inspector")
    }

    fn shutdown(mut self) {
        self.server.shutdown();
        self.kernel.shutdown();
    }
}

/// Builds the demonstration manifold: every subsystem producing real
/// numbers, registered in one [`StatsRegistry`], served over a sim
/// control channel.
fn self_hosted() -> Demo {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let stats = StatsRegistry::new();

    // A bandwidth-starved sim link: the producer pipeline below pushes
    // harder than 64 kbit/s drains, so the send end saturates and its
    // feedback loop escalates — real congestion, deterministic clock.
    let congested = SimTransport::new(
        &kernel,
        SimConfig {
            latency: Duration::from_millis(20),
            bandwidth_bps: Some(8_000.0),
            queue_bytes: 2_048,
            ..SimConfig::default()
        },
    );
    let acceptor = congested.listen("uplink").expect("listen uplink");
    let uplink = congested.connect("uplink").expect("connect uplink");
    let _remote_end = acceptor.accept().expect("accept uplink");

    let send_end = NetSendEnd::new("send", uplink.clone())
        .with_congestion_reports(SEND_SATURATION_READING, 16);
    let probe = send_end.saturation_probe();
    let (fb, loop_stats) =
        FeedbackLoop::event_driven("congestion-loop", UnifiedCongestionController::standard());

    let pipeline = Pipeline::new(&kernel, "producer");
    let src = pipeline.add_producer(
        "src",
        IterSource::new("src", (0..300u32).map(|i| vec![i as u8; 64])),
    );
    let pump = pipeline.add_pump("pump", FreePump::new());
    let fb = pipeline.add_consumer("congestion-loop", fb);
    let marshal = pipeline.add_function("marshal", Marshal::<Vec<u8>>::new("marshal"));
    let send = pipeline.add_consumer("send", send_end);
    let _ = src >> pump >> fb >> marshal >> send;
    let running = pipeline.start().expect("start pipeline");
    running.start_flow().expect("start flow");
    running.wait_quiescent();

    // A serving tier fanning the same stream out to three sim viewers.
    let serving = SimTransport::new(&kernel, SimConfig::default());
    let serve_acceptor = serving.listen("serve").expect("listen serve");
    let sessions = SessionRegistry::new(ServeConfig::default());
    let mut viewer_ends = Vec::new();
    for _ in 0..3 {
        let viewer = serving.connect("serve").expect("connect viewer");
        let session = serve_acceptor.accept().expect("accept viewer");
        sessions.admit(session);
        viewer_ends.push(viewer);
    }
    let payload = netpipe::wire::to_payload(&0xFEED_u32).expect("encode");
    for _ in 0..8 {
        sessions.broadcast(&payload);
    }
    sessions.sweep();

    // A pool under memory pressure: the held payloads never come home.
    let pool = BufferPool::with_classes(&[256], 2);
    let mut held = Vec::new();
    for _ in 0..8 {
        held.push(pool.acquire(128).seal());
    }

    // An unmarshal stage as the consumer side would host it.
    let unmarshal = Unmarshal::<u32>::new("unmarshal").at_node("inspect-demo");

    // The whole manifold behind one registry.
    inspect::register_registry_stats(&stats, "sessions", &sessions);
    inspect::register_link(&stats, "uplink", &uplink);
    inspect::register_saturation(&stats, "uplink-saturation", &probe);
    inspect::register_pool(&stats, "frame-pool", &pool);
    inspect::register_kernel(&stats, "kernel", &kernel);
    inspect::register_unmarshal(&stats, "unmarshal", &unmarshal.stats_handle());
    inspect::register_loop_stats(&stats, "congestion-loop", &loop_stats);
    inspect::register_process_globals(&stats);

    // The inspector channel itself, over its own sim transport.
    let control = SimTransport::new(&kernel, SimConfig::default());
    let control_acceptor = control.listen("inspect").expect("listen inspect");
    let addr = control_acceptor.local_addr();
    let server = InspectServer::spawn(control_acceptor, stats);

    Demo {
        kernel,
        server,
        addr,
        transport: control,
        _sessions: sessions,
        _viewer_ends: viewer_ends,
        _held: held,
    }
}

/// The CI gates: what a schema-valid, non-empty, manifold-covering
/// snapshot must contain.
fn gates(snap: &WireSnapshot) -> Vec<(&'static str, bool)> {
    let subsystems = snap.subsystems();
    let has = |s: &str| subsystems.contains(&s);
    vec![
        ("schema_version_1", snap.version == SCHEMA_VERSION),
        ("snapshot_nonempty", !snap.sources.is_empty()),
        ("covers_serve", has("serve")),
        ("covers_transport", has("transport")),
        ("covers_pool", has("pool")),
        ("covers_kernel", has("kernel")),
        ("covers_marshal", has("marshal")),
        ("covers_feedback", has("feedback")),
        ("covers_core", has("core")),
        (
            "sessions_populated",
            snap.value("sessions", "accepted_total").unwrap_or(0.0) >= 3.0
                && snap
                    .source("sessions")
                    .is_some_and(|s| !s.entities.is_empty()),
        ),
        (
            "uplink_pushed_back",
            snap.value("uplink", "dropped").unwrap_or(0.0) > 0.0,
        ),
        (
            "saturation_observed",
            snap.value("uplink-saturation", "saturation").unwrap_or(0.0) > 0.0,
        ),
        (
            "pool_pressured",
            snap.value("frame-pool", "misses").unwrap_or(0.0) > 0.0,
        ),
        (
            "feedback_loop_ran",
            snap.value("congestion-loop", "readings").unwrap_or(0.0) > 0.0,
        ),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let watch = args.iter().any(|a| a == "--watch");
    let smoke = args.iter().any(|a| a == "--smoke");
    let tcp_addr = args
        .iter()
        .position(|a| a == "--tcp")
        .and_then(|i| args.get(i + 1))
        .cloned();

    if let Some(addr) = tcp_addr {
        // Attach to a live server; render once (or repeatedly).
        let transport = TcpTransport::new();
        let client = InspectClient::connect(&transport, &addr).expect("connect inspector");
        loop {
            let snap = client.fetch().expect("fetch snapshot");
            if json {
                println!("{}", snap.to_json());
            } else {
                if watch {
                    print!("\x1b[2J\x1b[H");
                }
                print!("{}", snap.render_table());
            }
            if !watch {
                return;
            }
            std::thread::sleep(Duration::from_secs(1));
        }
    }

    let demo = self_hosted();
    let client = demo.client();

    if watch && !smoke {
        // A few refresh cycles of the live table — bounded, so the demo
        // terminates on its own.
        for _ in 0..5 {
            let snap = client.fetch().expect("fetch snapshot");
            print!("\x1b[2J\x1b[H{}", snap.render_table());
            std::io::stdout().flush().ok();
            std::thread::sleep(Duration::from_millis(500));
        }
        demo.shutdown();
        return;
    }

    let snap = client.fetch().expect("fetch snapshot");
    if json {
        println!("{}", snap.to_json());
    } else {
        print!("{}", snap.render_table());
    }

    if smoke {
        let checks = gates(&snap);
        let failed: Vec<&str> = checks
            .iter()
            .filter(|(_, ok)| !ok)
            .map(|(name, _)| *name)
            .collect();
        let gate_rows: Vec<String> = checks
            .iter()
            .map(|(name, ok)| format!("    \"{name}\": {ok}"))
            .collect();
        let report = format!(
            concat!(
                "{{\n  \"bench\": \"inspect\",\n",
                "  \"mode\": \"smoke\",\n",
                "  \"passed\": {},\n",
                "  \"gates\": {{\n{}\n  }},\n",
                "  \"snapshot\": {}\n}}\n"
            ),
            failed.is_empty(),
            gate_rows.join(",\n"),
            snap.to_json()
        );
        let mut f = std::fs::File::create("BENCH_inspect.json").expect("create BENCH_inspect.json");
        f.write_all(report.as_bytes()).expect("write json");
        println!("wrote BENCH_inspect.json");
        if !failed.is_empty() {
            eprintln!("inspect smoke gates FAILED: {failed:?}");
            demo.shutdown();
            std::process::exit(1);
        }
        println!("inspect smoke gates passed ({} checks)", checks.len());
    }

    demo.shutdown();
}
