//! Record & replay report: trace-capture goodput, replay goodput, and
//! the determinism + zero-copy gates.
//!
//! One run records a congested simulated manifold under virtual time —
//! producer pipeline → [`RecordingLink`] tap → seeded `SimTransport` →
//! digesting consumer — then replays the trace twice through fresh
//! simulators rebuilt from the scenario stored in the trace header.
//!
//! Three properties gate the run (in `--smoke` mode too — they are
//! correctness, not performance):
//!
//! * **double-replay determinism** — both replays digest identical;
//! * **capture fidelity** — the replayed delivery digests equal to the
//!   original live delivery (the tap records *offered* traffic, so the
//!   seeded simulator re-makes every drop decision);
//! * **zero-copy tap** — the global `payload_copy_count` does not move
//!   while recording.
//!
//! Writes `BENCH_record.json` (MiB/s and frames/s for capture and
//! replay) into the current directory.

use infopipes::helpers::IterSource;
use infopipes::{payload_copy_count, BufferSpec, FreePump, PayloadBytes, Pipeline};
use mbthread::{Kernel, KernelConfig};
use netpipe::record::ChannelDecl;
use netpipe::{
    Acceptor, DigestSink, Link, PipelineTransportExt, RecordingLink, ReplayMode, Replayer,
    SimConfig, SimTransport, TraceReader, TraceWriter, Transport,
};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn sim_seed() -> u64 {
    std::env::var("SIM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// The congested scenario: thin bandwidth and a queue a few frames
/// deep, so the simulator sheds under the burst and replay fidelity
/// actually covers the drop decisions.
fn scenario(frame_bytes: usize) -> SimConfig {
    SimConfig {
        latency: Duration::from_millis(10),
        bandwidth_bps: Some(8.0 * 1_000_000.0),
        queue_bytes: 4 * frame_bytes,
        seed: sim_seed(),
        ..SimConfig::default()
    }
}

struct RecordRun {
    delivered_digest: u64,
    delivered_frames: u64,
    offered_frames: u64,
    payload_bytes: u64,
    file_bytes: u64,
    chunk_flushes: u64,
    payload_copies: u64,
    elapsed: Duration,
}

/// Records `frames` frames of `frame_bytes` each through the tapped
/// congested link under virtual time.
fn record_run(path: &Path, frames: usize, frame_bytes: usize) -> RecordRun {
    let cfg = scenario(frame_bytes);
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let writer = TraceWriter::create(path, "bench-manifold", Some(&cfg)).expect("create trace");
    writer
        .declare_channel(&ChannelDecl::new(0, "bench", "PayloadBytes"))
        .expect("declare channel");

    let copies_before = payload_copy_count();
    let started = Instant::now();
    let (delivered_digest, delivered_frames) = {
        let transport = SimTransport::new(&kernel, cfg);
        let acceptor = transport.listen("bench").expect("listen");
        let link = transport.connect("bench").expect("connect");
        let server_end = acceptor.accept().expect("accept");
        let recording = RecordingLink::attach(link, writer.clone(), 0, &kernel);

        let consumer = Pipeline::new(&kernel, "consumer");
        let (inbox, inbox_sender) =
            consumer.add_inbox("net-in", BufferSpec::bounded(2 * frames.max(1024)));
        let pump_in = consumer.add_pump("pump-in", FreePump::new());
        let (sink, probe) = DigestSink::new("digest");
        let sink = consumer.add_consumer("sink", sink);
        let _ = inbox >> pump_in >> sink;
        server_end
            .bind_receiver(Some(inbox_sender), |_| {})
            .expect("bind");
        consumer.start().expect("plan").start_flow().expect("start");

        // One template allocation, `frames` shared views: production is
        // free, so the tap and the lane dominate the measurement.
        let template = PayloadBytes::from_vec(vec![0x5Au8; frame_bytes]);
        let inputs: Vec<PayloadBytes> = (0..frames).map(|_| template.clone()).collect();
        let producer = Pipeline::new(&kernel, "producer");
        let src = producer.add_producer("src", IterSource::new("src", inputs));
        let pump_out = producer.add_pump("pump-out", FreePump::new());
        let send = producer.add_net_sink("send", &recording);
        let _ = src >> pump_out >> send;
        producer.start().expect("plan").start_flow().expect("start");

        kernel.wait_quiescent();
        (probe.value(), probe.frames())
    };
    let elapsed = started.elapsed();
    kernel.shutdown();
    writer.finish().expect("finish trace");
    let payload_copies = payload_copy_count() - copies_before;
    let stats = writer.stats();
    RecordRun {
        delivered_digest,
        delivered_frames,
        offered_frames: stats.records,
        payload_bytes: stats.payload_bytes,
        file_bytes: stats.file_bytes,
        chunk_flushes: stats.chunk_flushes,
        payload_copies,
        elapsed,
    }
}

struct ReplayRun {
    digest: u64,
    frames: u64,
    offered_frames: u64,
    offered_bytes: u64,
    elapsed: Duration,
}

/// Replays the trace at recorded timestamps through a fresh simulator
/// rebuilt from the recorded scenario; digests the delivery.
fn replay_run(path: &Path) -> ReplayRun {
    let reader = TraceReader::open(path).expect("open trace");
    let cfg = reader.scenario().expect("recorded scenario");
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let started = Instant::now();
    let (digest, frames, offered_frames, offered_bytes) = {
        let transport = SimTransport::new(&kernel, cfg);
        let acceptor = transport.listen("replay").expect("listen");
        let link = transport.connect("replay").expect("connect");
        let server_end = acceptor.accept().expect("accept");

        let consumer = Pipeline::new(&kernel, "replay-consumer");
        let (inbox, inbox_sender) = consumer.add_inbox("net-in", BufferSpec::bounded(4096));
        let pump_in = consumer.add_pump("pump-in", FreePump::new());
        let (sink, probe) = DigestSink::new("digest");
        let sink = consumer.add_consumer("sink", sink);
        let _ = inbox >> pump_in >> sink;
        server_end
            .bind_receiver(Some(inbox_sender), |_| {})
            .expect("bind");
        consumer.start().expect("plan").start_flow().expect("start");

        let handle = Replayer::new(&kernel, ReplayMode::AsRecorded)
            .route(0, link)
            .launch(&reader)
            .expect("launch replay");
        kernel.wait_quiescent();
        assert!(handle.is_done(), "replay must drain the trace");
        let counters = handle.counters();
        (
            probe.value(),
            probe.frames(),
            counters.frames(),
            counters.bytes(),
        )
    };
    let elapsed = started.elapsed();
    kernel.shutdown();
    ReplayRun {
        digest,
        frames,
        offered_frames,
        offered_bytes,
        elapsed,
    }
}

fn mib_s(bytes: u64, elapsed: Duration) -> f64 {
    bytes as f64 / elapsed.as_secs_f64() / (1024.0 * 1024.0)
}

fn per_s(n: u64, elapsed: Duration) -> f64 {
    n as f64 / elapsed.as_secs_f64()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cases: &[(usize, usize)] = if smoke {
        &[(4 * 1024, 300)]
    } else {
        &[(4 * 1024, 20_000), (64 * 1024, 2_000)]
    };

    let mut rows = Vec::new();
    let mut failed = false;
    println!(
        "{:>10} {:>8} {:>14} {:>14} {:>14} {:>14} {:>7}",
        "frame", "frames", "rec MiB/s", "rec fr/s", "rep MiB/s", "rep fr/s", "copies"
    );
    for &(frame_bytes, frames) in cases {
        let path: PathBuf = std::env::temp_dir().join(format!(
            "nptrace-bench-{}-{}.trace",
            std::process::id(),
            frame_bytes
        ));
        let rec = record_run(&path, frames, frame_bytes);
        let rep1 = replay_run(&path);
        let rep2 = replay_run(&path);
        let _ = std::fs::remove_file(&path);

        // The hard gates: determinism, fidelity, zero-copy capture.
        if rep1.digest != rep2.digest || rep1.frames != rep2.frames {
            eprintln!("FAIL: double replay diverged ({frame_bytes}-byte frames)");
            failed = true;
        }
        if (rep1.digest, rep1.frames) != (rec.delivered_digest, rec.delivered_frames) {
            eprintln!(
                "FAIL: replay did not reproduce the live delivery ({frame_bytes}-byte frames)"
            );
            failed = true;
        }
        if rec.payload_copies != 0 {
            eprintln!(
                "FAIL: recording copied payloads {} times ({frame_bytes}-byte frames)",
                rec.payload_copies
            );
            failed = true;
        }
        if rec.delivered_frames >= rec.offered_frames {
            eprintln!("FAIL: the scenario never congested; the fidelity gate proved nothing");
            failed = true;
        }

        println!(
            "{:>10} {:>8} {:>14.1} {:>14.0} {:>14.1} {:>14.0} {:>7}",
            frame_bytes,
            frames,
            mib_s(rec.payload_bytes, rec.elapsed),
            per_s(rec.offered_frames, rec.elapsed),
            mib_s(rep1.offered_bytes, rep1.elapsed),
            per_s(rep1.offered_frames, rep1.elapsed),
            rec.payload_copies
        );
        rows.push(format!(
            concat!(
                "    {{\"frame_bytes\": {}, \"frames\": {}, ",
                "\"record_mib_per_sec\": {:.2}, \"record_frames_per_sec\": {:.0}, ",
                "\"replay_mib_per_sec\": {:.2}, \"replay_frames_per_sec\": {:.0}, ",
                "\"offered_frames\": {}, \"delivered_frames\": {}, ",
                "\"trace_file_bytes\": {}, \"chunk_flushes\": {}, ",
                "\"payload_copies\": {}, \"sim_seed\": {}}}"
            ),
            frame_bytes,
            frames,
            mib_s(rec.payload_bytes, rec.elapsed),
            per_s(rec.offered_frames, rec.elapsed),
            mib_s(rep1.offered_bytes, rep1.elapsed),
            per_s(rep1.offered_frames, rep1.elapsed),
            rec.offered_frames,
            rec.delivered_frames,
            rec.file_bytes,
            rec.chunk_flushes,
            rec.payload_copies,
            sim_seed()
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"record_replay\",\n  \"unit\": \"MiB/s\",\n  \"cases\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let mut f = std::fs::File::create("BENCH_record.json").expect("create BENCH_record.json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("wrote BENCH_record.json");

    if failed {
        std::process::exit(1);
    }
}
