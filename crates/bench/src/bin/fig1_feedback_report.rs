//! E4 — the Fig. 1 experiment as a parameter sweep: feedback-controlled
//! producer-side dropping versus arbitrary in-network dropping, across
//! link bandwidths. Regenerates the series `quality(bandwidth)` for both
//! conditions; the crossover behaviour is the reproduced "figure".
//!
//! Run with `cargo run -p infopipes-bench --bin fig1_feedback_report`.

use feedback::{DropLevelController, FeedbackLoop};
use infopipes::{BufferSpec, ClockedPump, FreePump, OnFull, Pipeline};
use mbthread::{Kernel, KernelConfig};
use media::{
    DecodeCost, Decoder, Defragmenter, DisplaySink, Fragmenter, GopStructure, MpegFileSource,
    Packet, PriorityDropFilter,
};
use netpipe::{
    Acceptor, Link, Marshal, PipelineTransportExt, SimConfig, SimTransport, Transport, Unmarshal,
};
use std::time::Duration;

const FPS: f64 = 30.0;
const FRAMES: u64 = 240;
const GOP: GopStructure = GopStructure {
    gop_size: 9,
    b_run: 2,
};

struct Outcome {
    presented: usize,
    decode_ratio: f64,
    net_dropped: u64,
    filter_dropped: u64,
}

fn run(bandwidth_bps: f64, with_feedback: bool) -> Outcome {
    let kernel = Kernel::new(KernelConfig::virtual_time());
    let outcome = {
        let pipeline = Pipeline::new(&kernel, "fig1");

        let (inbox, inbox_sender) = pipeline.add_inbox("net-in", BufferSpec::bounded(512));
        let net_pump = pipeline.add_pump("net-pump", FreePump::new());
        let unmarshal = pipeline.add_function("unmarshal", Unmarshal::<Packet>::new("unmarshal"));
        let defrag = pipeline.add_consumer("defragment", Defragmenter::new());
        let decoder = Decoder::new(GOP, DecodeCost::free());
        let dec_stats = decoder.stats_handle();
        let decode = pipeline.add_consumer("decode", decoder);
        let jitter_buf = pipeline.add_buffer_with(
            "jitter-buf",
            BufferSpec::bounded(32).on_full(OnFull::DropOldest),
        );
        let out_pump = pipeline.add_pump("out-pump", ClockedPump::hz(FPS));
        let (display, display_stats) = DisplaySink::new();
        let sink = pipeline.add_consumer("display", display);
        if with_feedback {
            let mut controller = DropLevelController::new(feedback::readings::RECV_RATE_HZ, 60.0)
                .with_fractions([1.0, 0.67, 0.44]);
            controller.raise_below = 0.9;
            let (fb, _) = FeedbackLoop::with_rate_sensor(
                "feedback",
                feedback::readings::RECV_RATE_HZ,
                15,
                controller,
            );
            let fb = pipeline.add_consumer("feedback", fb);
            let _ = inbox >> net_pump >> unmarshal >> fb >> defrag >> decode;
        } else {
            let _ = inbox >> net_pump >> unmarshal >> defrag >> decode;
        }
        let _ = decode >> jitter_buf >> out_pump >> sink;

        let transport = SimTransport::new(
            &kernel,
            SimConfig {
                latency: Duration::from_millis(20),
                jitter: Duration::from_millis(2),
                bandwidth_bps: Some(bandwidth_bps),
                // Two fragmented I frames' worth: bursts fit, sustained
                // overload does not.
                queue_bytes: 12_000,
                seed: 99,
            },
        );
        let acceptor = transport.listen("fig1").expect("listen");
        let link = transport.connect("fig1").expect("connect");
        let consumer_end = acceptor.accept().expect("accept");
        consumer_end
            .bind_receiver(Some(inbox_sender), |_| {})
            .expect("bind receiver");

        let source = pipeline.add_producer(
            "mpeg-file",
            MpegFileSource::new(GOP, FRAMES, FPS, 1000, 1234),
        );
        let prod_pump = pipeline.add_pump("prod-pump", ClockedPump::hz(FPS));
        let (drop_filter, drop_stats) = PriorityDropFilter::new();
        let dropf = pipeline.add_function("drop-filter", drop_filter);
        let frag = pipeline.add_consumer("fragment", Fragmenter::new(512));
        let marshal = pipeline.add_function("marshal", Marshal::<Packet>::new("marshal"));
        let send = pipeline.add_net_sink("net-send", &link);
        let _ = source >> prod_pump >> dropf >> frag >> marshal >> send;

        let running = pipeline.start().expect("plan");
        running.start_flow().expect("start");
        running.wait_quiescent();

        let outcome = Outcome {
            presented: display_stats.lock().count(),
            decode_ratio: dec_stats.lock().decode_ratio(),
            net_dropped: link.stats().dropped,
            filter_dropped: drop_stats.lock().dropped,
        };
        outcome
    };
    kernel.shutdown();
    outcome
}

fn main() {
    println!("E4 / Fig. 1: controlled vs arbitrary dropping, {FRAMES} frames at {FPS} fps");
    println!("(the offered stream is roughly 50 KB/s; each row is one link bandwidth)\n");
    println!(
        "{:>10} | {:>9} {:>8} {:>9} {:>9} | {:>9} {:>8} {:>9} {:>9}",
        "", "no-fb", "no-fb", "no-fb", "no-fb", "fb", "fb", "fb", "fb"
    );
    println!(
        "{:>10} | {:>9} {:>8} {:>9} {:>9} | {:>9} {:>8} {:>9} {:>9}",
        "link KB/s",
        "shown",
        "decode%",
        "net-drop",
        "filt-drop",
        "shown",
        "decode%",
        "net-drop",
        "filt-drop"
    );
    for kbps in [10.0, 15.0, 20.0, 30.0, 40.0, 60.0] {
        let a = run(kbps * 1000.0, false);
        let b = run(kbps * 1000.0, true);
        println!(
            "{:>10} | {:>9} {:>7.0}% {:>9} {:>9} | {:>9} {:>7.0}% {:>9} {:>9}",
            kbps,
            a.presented,
            a.decode_ratio * 100.0,
            a.net_dropped,
            a.filter_dropped,
            b.presented,
            b.decode_ratio * 100.0,
            b.net_dropped,
            b.filter_dropped
        );
    }
    println!(
        "\nexpected shape: at and above ~60 KB/s the conditions agree (no\n\
         congestion); below it, feedback keeps decode% high by shedding\n\
         B/P frames at the producer while the no-feedback condition lets\n\
         the network shred frames arbitrarily."
    );
}
