//! Serving-tier capacity census: sessions versus aggregate throughput.
//!
//! Each row spins up the full serving tier — an `AcceptLoop` admitting
//! clients into a `SessionRegistry`, a broadcast loop teeing pooled
//! payloads into every session, sharded reader threads draining the
//! client links — and measures:
//!
//! * **aggregate bytes/sec**: payload bytes actually delivered to
//!   clients per wall-clock second, summed over all sessions,
//! * **payload copies**: the process-wide deep-copy counter
//!   ([`infopipes::payload_copy_count`]) across the broadcast phase.
//!   Fan-out is refcounted, so this must be **exactly 0** no matter how
//!   many sessions ride one producer — the capacity claim's teeth,
//! * **allocs/delivery**: heap allocations per delivered frame from a
//!   counting global allocator (published for context; the steady-state
//!   allocation story is `alloc_report`'s gate).
//!
//! The inproc ladder rises to 1024 concurrent sessions; a simulated-
//! network row and a real-socket TCP row prove the same path off the
//! in-process fast lane.
//!
//! Run with `cargo run --release -p infopipes-bench --bin fanout_report`.
//! Writes `BENCH_fanout.json` into the current directory. `--smoke`
//! shrinks frame counts for CI but keeps the 1024-session row and BOTH
//! hard gates: ≥ 1000 sessions sustained (every session active and
//! served through the whole broadcast phase) and zero payload copies.

use infopipes::{payload_copy_count, BufferPool};
use mbthread::{Kernel, KernelConfig};
use netpipe::{
    AcceptLoop, Acceptor, Frame, InProcTransport, Link, RecvOutcome, ServeConfig, SessionRegistry,
    SimConfig, SimTransport, TcpTransport, Transport,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const FRAME_BYTES: usize = 4096;
const READERS: usize = 4;
const DEADLINE: Duration = Duration::from_secs(120);

struct CaseResult {
    name: String,
    transport: &'static str,
    sessions: usize,
    frames: usize,
    delivered: u64,
    aggregate_bytes_per_sec: f64,
    payload_copies: u64,
    allocs_per_delivery: f64,
    sustained: bool,
    min_session_sent: u64,
}

impl CaseResult {
    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\"case\": \"{}\", \"transport\": \"{}\", \"sessions\": {}, ",
                "\"frames\": {}, \"frame_bytes\": {}, \"delivered\": {}, ",
                "\"aggregate_bytes_per_sec\": {:.0}, \"payload_copies\": {}, ",
                "\"allocs_per_delivery\": {:.4}, \"sustained\": {}, ",
                "\"min_session_sent\": {}}}"
            ),
            self.name,
            self.transport,
            self.sessions,
            self.frames,
            FRAME_BYTES,
            self.delivered,
            self.aggregate_bytes_per_sec,
            self.payload_copies,
            self.allocs_per_delivery,
            self.sustained,
            self.min_session_sent
        )
    }
}

/// Spawns `READERS` threads sharing the client links between them; each
/// drains its shard round-robin until every link in it has seen `Fin`.
/// Returns handles yielding (frames, bytes) delivered per shard.
///
/// `poll` is the per-link recv timeout. Queue-backed transports hand
/// over buffered frames even at `Duration::ZERO`; a stream transport
/// only pulls from the socket inside a recv with time on the clock, so
/// the TCP lane must poll with a small nonzero timeout.
///
/// Every delivered data frame also bumps `progress`, so the lane driver
/// can watch the reader side go quiet before starting the drain.
fn spawn_readers<L: Link>(
    links: Vec<L>,
    poll: Duration,
    progress: &std::sync::Arc<AtomicU64>,
) -> Vec<std::thread::JoinHandle<(u64, u64)>> {
    let mut shards: Vec<Vec<L>> = (0..READERS).map(|_| Vec::new()).collect();
    for (i, link) in links.into_iter().enumerate() {
        shards[i % READERS].push(link);
    }
    shards
        .into_iter()
        .map(|shard| {
            let progress = std::sync::Arc::clone(progress);
            std::thread::spawn(move || {
                let mut open: Vec<L> = shard;
                let mut frames = 0u64;
                let mut bytes = 0u64;
                let mut deadline = Instant::now() + DEADLINE;
                while !open.is_empty() {
                    let mut progressed = false;
                    open.retain(|link| loop {
                        match link.recv(poll) {
                            RecvOutcome::Frame(Frame::Data(payload)) => {
                                frames += 1;
                                bytes += payload.len() as u64;
                                progress.fetch_add(1, Ordering::Relaxed);
                                progressed = true;
                            }
                            RecvOutcome::Frame(_) => progressed = true,
                            RecvOutcome::TimedOut => return true,
                            RecvOutcome::Fin | RecvOutcome::Closed => return false,
                        }
                    });
                    if progressed {
                        deadline = Instant::now() + DEADLINE;
                    } else {
                        assert!(Instant::now() < deadline, "readers starved");
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                (frames, bytes)
            })
        })
        .collect()
}

/// One fan-out row: accept `sessions` clients, broadcast `frames` pooled
/// payloads through the registry, drain to `Fin`, and report.
fn fanout_lane<T: Transport>(
    name: String,
    scheme: &'static str,
    transport: &T,
    addr: &str,
    sessions: usize,
    frames: usize,
) -> CaseResult {
    // Stream transports need recv time on the clock to pull from the
    // socket; queue transports hand over buffered frames at ZERO cost.
    let poll = if scheme == "tcp" {
        Duration::from_millis(1)
    } else {
        Duration::ZERO
    };
    let acceptor = transport.listen(addr).expect("listen");
    let bound = acceptor.local_addr();
    let registry: SessionRegistry<T::Link> = SessionRegistry::new(ServeConfig {
        queue_capacity: 64,
        ..ServeConfig::default()
    });
    let accept = AcceptLoop::spawn(acceptor, registry.clone());

    let clients: Vec<T::Link> = (0..sessions)
        .map(|_| transport.connect(&bound).expect("connect"))
        .collect();
    let deadline = Instant::now() + DEADLINE;
    while registry.stats().active < sessions {
        assert!(Instant::now() < deadline, "{name}: sessions never admitted");
        std::thread::sleep(Duration::from_millis(1));
    }
    let progress = std::sync::Arc::new(AtomicU64::new(0));
    let readers = spawn_readers(clients, poll, &progress);

    // The broadcast phase: one pooled, sealed payload per frame, teed to
    // every session by refcount. The counters around it are the claim.
    let pool = BufferPool::new();
    let body = vec![0xF0u8; FRAME_BYTES];
    let copies0 = payload_copy_count();
    let allocs0 = allocs();
    let t0 = Instant::now();
    for i in 0..frames {
        let mut buf = pool.acquire(FRAME_BYTES);
        buf.buf_mut().extend_from_slice(&body);
        let payload = buf.seal();
        registry.broadcast(&payload);
        if i % 16 == 0 {
            registry.sweep();
        }
    }
    // Settle: flush every queue dry so each frame has reached its link.
    let deadline = Instant::now() + DEADLINE;
    while registry.stats().queued_frames > 0 {
        assert!(Instant::now() < deadline, "{name}: queues never drained");
        registry.sweep();
        std::thread::sleep(Duration::from_millis(1));
    }
    // Then wait for the reader side to go quiet: a lossy transport like
    // the simulator delivers on its own clock, and control frames
    // overtake queued data at recv — so a Fin sent now would orphan
    // whatever is still in flight.
    let deadline = Instant::now() + DEADLINE;
    let mut last = progress.load(Ordering::Relaxed);
    let mut quiet = 0;
    while quiet < 5 {
        std::thread::sleep(Duration::from_millis(5));
        let now = progress.load(Ordering::Relaxed);
        quiet = if now == last { quiet + 1 } else { 0 };
        last = now;
        assert!(
            Instant::now() < deadline,
            "{name}: readers never went quiet"
        );
    }
    let payload_copies = payload_copy_count() - copies0;
    let alloc_delta = allocs() - allocs0;

    // Sustained = nobody fell out of the roster mid-broadcast, and every
    // session was actually served frames (no silently starved client).
    let stats = registry.stats();
    let min_session_sent = registry
        .sessions()
        .iter()
        .map(|s| s.sent)
        .min()
        .unwrap_or(0);
    let sustained = stats.active == sessions && stats.evicted_total == 0 && min_session_sent > 0;

    // Orderly teardown: drain every session to its Fin so readers exit.
    registry.drain_all();
    let deadline = Instant::now() + DEADLINE;
    loop {
        registry.sweep();
        registry.reap();
        if registry.is_empty() {
            break;
        }
        assert!(Instant::now() < deadline, "{name}: drain never completed");
        std::thread::sleep(Duration::from_millis(1));
    }
    let (mut delivered, mut bytes) = (0u64, 0u64);
    for handle in readers {
        let (f, b) = handle.join().expect("reader thread");
        delivered += f;
        bytes += b;
    }
    let elapsed = t0.elapsed();
    accept.shutdown();

    CaseResult {
        name,
        transport: scheme,
        sessions,
        frames,
        delivered,
        aggregate_bytes_per_sec: bytes as f64 / elapsed.as_secs_f64(),
        payload_copies,
        allocs_per_delivery: alloc_delta as f64 / delivered.max(1) as f64,
        sustained,
        min_session_sent,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // The 1024-session rung stays in smoke mode: the CI gate must prove
    // real thousand-client capacity, only with fewer frames per session.
    let (ladder, frames, sim_frames, tcp_frames): (&[usize], usize, usize, usize) = if smoke {
        (&[256, 1024], 48, 24, 48)
    } else {
        (&[16, 64, 256, 1024], 400, 200, 400)
    };

    let mut cases: Vec<CaseResult> = Vec::new();
    for &sessions in ladder {
        let transport = InProcTransport::with_capacity(256);
        cases.push(fanout_lane(
            format!("inproc_{sessions}"),
            "inproc",
            &transport,
            "fanout",
            sessions,
            frames,
        ));
    }

    // Simulated network: every link crosses the kernel-driven simulator
    // with 1 ms latency under the real-time clock.
    let kernel = Kernel::new(KernelConfig::default());
    let sim = SimTransport::new(
        &kernel,
        SimConfig {
            latency: Duration::from_millis(1),
            ..SimConfig::default()
        },
    );
    cases.push(fanout_lane(
        "sim_64".to_owned(),
        "sim",
        &sim,
        "fanout",
        64,
        sim_frames,
    ));

    // Real sockets: the smoke-scale proof that the serving tier holds up
    // off the in-process fast path.
    cases.push(fanout_lane(
        "tcp_16".to_owned(),
        "tcp",
        &TcpTransport::new(),
        "127.0.0.1:0",
        16,
        tcp_frames,
    ));
    kernel.shutdown();

    println!(
        "{:>14} {:>9} {:>8} {:>10} {:>14} {:>8} {:>12} {:>10}",
        "case", "sessions", "frames", "delivered", "agg MB/s", "copies", "allocs/dlv", "sustained"
    );
    for c in &cases {
        println!(
            "{:>14} {:>9} {:>8} {:>10} {:>14.2} {:>8} {:>12.4} {:>10}",
            c.name,
            c.sessions,
            c.frames,
            c.delivered,
            c.aggregate_bytes_per_sec / 1e6,
            c.payload_copies,
            c.allocs_per_delivery,
            c.sustained
        );
    }

    let rows: Vec<String> = cases.iter().map(CaseResult::json).collect();
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"fanout_report\",\n",
            "  \"note\": \"one producer broadcast to N sessions; ",
            "payload_copies must be 0 (refcounted fan-out)\",\n",
            "  \"smoke\": {},\n  \"cases\": [\n{}\n  ]\n}}\n"
        ),
        smoke,
        rows.join(",\n")
    );
    let mut f = std::fs::File::create("BENCH_fanout.json").expect("create BENCH_fanout.json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("wrote BENCH_fanout.json");

    // Hard gates — enforced in smoke mode too: this is the CI capacity
    // gate, not a tunable report.
    let mut failed = false;
    let peak = cases
        .iter()
        .filter(|c| c.transport == "inproc")
        .max_by_key(|c| c.sessions)
        .expect("inproc rows");
    if peak.sessions < 1000 || !peak.sustained {
        eprintln!(
            "FAIL: serving tier must sustain >= 1000 concurrent sessions \
             (got {} sessions, sustained = {})",
            peak.sessions, peak.sustained
        );
        failed = true;
    }
    for c in &cases {
        if c.payload_copies != 0 {
            eprintln!(
                "FAIL: {} deep-copied {} payloads — fan-out must be refcount-only",
                c.name, c.payload_copies
            );
            failed = true;
        }
        if !c.sustained {
            eprintln!(
                "FAIL: {} did not sustain all {} sessions (min frames/session {})",
                c.name, c.sessions, c.min_session_sent
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
