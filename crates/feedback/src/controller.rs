//! Controllers: policies mapping sensor readings to actuator commands.

use crate::sensor::SensorReading;
use infopipes::ControlEvent;

/// A feedback policy: observes readings, occasionally emits an actuator
/// command (a control event).
pub trait Controller: Send + 'static {
    /// Processes one reading; returns a command when the policy wants to
    /// adjust an actuator.
    fn observe(&mut self, reading: &SensorReading) -> Option<ControlEvent>;
}

impl<F> Controller for F
where
    F: FnMut(&SensorReading) -> Option<ControlEvent> + Send + 'static,
{
    fn observe(&mut self, reading: &SensorReading) -> Option<ControlEvent> {
        self(reading)
    }
}

/// The drop-level policy of Fig. 1: watches the consumer-side delivery
/// rate and raises or lowers the producer-side
/// `media::PriorityDropFilter`'s level with
/// hysteresis, so dropping happens *before* the congested network, under
/// application control.
pub struct DropLevelController {
    reading_name: String,
    target_rate: f64,
    level: u8,
    max_level: u8,
    /// Raise the level when delivery falls below this fraction of target.
    pub raise_below: f64,
    /// Lower the level when delivery exceeds this fraction of target
    /// (of the *reduced* expectation at the current level).
    pub lower_above: f64,
    /// Consecutive good windows required before lowering (hysteresis).
    pub patience: u32,
    good_windows: u32,
    /// Expected delivery fraction of the nominal rate at each drop level.
    fractions: [f64; 3],
}

impl DropLevelController {
    /// Creates a controller watching `reading_name` against the stream's
    /// nominal rate.
    ///
    /// # Panics
    ///
    /// Panics if `target_rate` is not strictly positive.
    #[must_use]
    pub fn new(reading_name: impl Into<String>, target_rate: f64) -> DropLevelController {
        assert!(
            target_rate > 0.0 && target_rate.is_finite(),
            "target rate must be positive"
        );
        DropLevelController {
            reading_name: reading_name.into(),
            target_rate,
            level: 0,
            max_level: 2,
            raise_below: 0.85,
            lower_above: 0.97,
            patience: 3,
            good_windows: 0,
            fractions: [1.0, 0.34, 0.12],
        }
    }

    /// Overrides the expected delivery fraction at each drop level
    /// (level 0, 1, 2). Use this when the sensed quantity is not frames —
    /// e.g. packets, whose per-level fractions depend on frame sizes.
    #[must_use]
    pub fn with_fractions(mut self, fractions: [f64; 3]) -> DropLevelController {
        self.fractions = fractions;
        self
    }

    /// The current drop level.
    #[must_use]
    pub fn level(&self) -> u8 {
        self.level
    }

    /// The frame rate the pipeline should deliver at the current drop
    /// level, as a fraction of the nominal rate (an `IBBPBB…` stream at
    /// level 1 keeps roughly the reference-frame third).
    fn expected_fraction(&self) -> f64 {
        self.fractions[usize::from(self.level.min(2))]
    }
}

impl Controller for DropLevelController {
    fn observe(&mut self, reading: &SensorReading) -> Option<ControlEvent> {
        if reading.name != self.reading_name {
            return None;
        }
        let expected = self.target_rate * self.expected_fraction();
        let ratio = reading.value / expected;
        if ratio < self.raise_below && self.level < self.max_level {
            self.level += 1;
            self.good_windows = 0;
            return Some(ControlEvent::SetDropLevel(self.level));
        }
        if ratio > self.lower_above && self.level > 0 {
            self.good_windows += 1;
            if self.good_windows >= self.patience {
                self.level -= 1;
                self.good_windows = 0;
                return Some(ControlEvent::SetDropLevel(self.level));
            }
        } else {
            self.good_windows = 0;
        }
        None
    }
}

/// A drop-level policy driven by **send-side transport backpressure**:
/// it watches the saturation fraction a
/// [`NetSendEnd`](../netpipe/struct.NetSendEnd.html) broadcasts (the
/// share of sends in a window the link reported `Saturated` or
/// `Dropped`, under the reading name `net-send-saturation`) and steers
/// a producer-side [`PriorityDropFilter`](../media/struct.PriorityDropFilter.html).
///
/// This is the complement of [`DropLevelController`]: that one senses
/// the *receive* rate on the far side of the congested link (a
/// round-trip-delayed signal), while this one reacts to the congestion
/// where it first becomes visible — the transport refusing or shedding
/// frames at the send end. The two compose: run both and the drop level
/// follows whichever signal trips first.
pub struct CongestionDropController {
    reading_name: String,
    level: u8,
    max_level: u8,
    /// Raise the level when the window's saturation fraction is at or
    /// above this value.
    pub raise_at: f64,
    /// Lower the level when the fraction is at or below this value.
    pub lower_at: f64,
    /// Consecutive calm windows required before lowering (hysteresis).
    pub patience: u32,
    calm_windows: u32,
}

impl CongestionDropController {
    /// Creates a controller watching `reading_name` (use
    /// `netpipe::SEND_SATURATION_READING` to pair with a default
    /// `NetSendEnd`).
    #[must_use]
    pub fn new(reading_name: impl Into<String>) -> CongestionDropController {
        CongestionDropController {
            reading_name: reading_name.into(),
            level: 0,
            max_level: 2,
            raise_at: 0.5,
            lower_at: 0.0,
            patience: 3,
            calm_windows: 0,
        }
    }

    /// The current drop level.
    #[must_use]
    pub fn level(&self) -> u8 {
        self.level
    }
}

impl Controller for CongestionDropController {
    fn observe(&mut self, reading: &SensorReading) -> Option<ControlEvent> {
        if reading.name != self.reading_name {
            return None;
        }
        if reading.value >= self.raise_at {
            self.calm_windows = 0;
            if self.level < self.max_level {
                self.level += 1;
                return Some(ControlEvent::SetDropLevel(self.level));
            }
            return None;
        }
        if reading.value <= self.lower_at && self.level > 0 {
            self.calm_windows += 1;
            if self.calm_windows >= self.patience {
                self.calm_windows = 0;
                self.level -= 1;
                return Some(ControlEvent::SetDropLevel(self.level));
            }
        } else {
            self.calm_windows = 0;
        }
        None
    }
}

/// One signal's policy inside a [`UnifiedCongestionController`]: the
/// reading it matches, its raise/lower thresholds and hysteresis, and —
/// the priority rule — the highest drop level this signal alone may
/// demand.
#[derive(Clone, Debug)]
pub struct SignalRule {
    /// The reading name this rule matches.
    pub reading: String,
    /// Raise the signal's level when a reading is at or above this value.
    pub raise_at: f64,
    /// Count a reading at or below this value as a calm window.
    pub lower_at: f64,
    /// The highest drop level this signal may demand on its own — the
    /// priority rule: primary signals get the full range, secondary
    /// signals are capped so they can nudge but never starve the stream
    /// by themselves.
    pub max_level: u8,
    /// Consecutive calm windows required before lowering.
    pub patience: u32,
}

impl SignalRule {
    /// A rule with [`CongestionDropController`]'s defaults: raise at 0.5,
    /// lower at 0.0, full range (max level 2), patience 3.
    #[must_use]
    pub fn new(reading: impl Into<String>) -> SignalRule {
        SignalRule {
            reading: reading.into(),
            raise_at: 0.5,
            lower_at: 0.0,
            max_level: 2,
            patience: 3,
        }
    }

    /// Overrides the raise threshold.
    #[must_use]
    pub fn raising_at(mut self, raise_at: f64) -> SignalRule {
        self.raise_at = raise_at;
        self
    }

    /// Overrides the calm threshold.
    #[must_use]
    pub fn lowering_at(mut self, lower_at: f64) -> SignalRule {
        self.lower_at = lower_at;
        self
    }

    /// Caps the level this signal may demand (the priority rule).
    #[must_use]
    pub fn capped(mut self, max_level: u8) -> SignalRule {
        self.max_level = max_level;
        self
    }

    /// Overrides the recovery patience.
    #[must_use]
    pub fn with_patience(mut self, patience: u32) -> SignalRule {
        self.patience = patience;
        self
    }
}

struct SignalState {
    rule: SignalRule,
    level: u8,
    calm_windows: u32,
}

impl SignalState {
    /// Per-signal hysteresis, mirroring [`CongestionDropController`].
    fn observe(&mut self, value: f64) {
        if value >= self.rule.raise_at {
            self.calm_windows = 0;
            if self.level < self.rule.max_level {
                self.level += 1;
            }
        } else if value <= self.rule.lower_at && self.level > 0 {
            self.calm_windows += 1;
            if self.calm_windows >= self.rule.patience {
                self.calm_windows = 0;
                self.level -= 1;
            }
        } else {
            self.calm_windows = 0;
        }
    }
}

/// One congestion policy over several pressure signals — send-side
/// saturation *and* receive-side memory pressure — instead of an ad-hoc
/// [`CongestionDropController`] per signal, each fighting over the same
/// actuator.
///
/// Every [`SignalRule`] keeps its own level with its own hysteresis; the
/// announced drop level is the **maximum** over the signals. Two priority
/// rules fall out of that shape:
///
/// * a signal's [`SignalRule::max_level`] caps how far it can push alone
///   (in [`standard`](UnifiedCongestionController::standard), receive-side
///   signals stop at level 1; only send saturation reaches level 2), and
/// * recovery follows the *slowest pressured* signal — a calm primary
///   cannot lower the level while a capped secondary still holds it up.
///
/// A command is emitted only when the announced maximum changes, so
/// several signals agreeing on the same level do not spam the actuator.
///
/// Feed it from one [`RegistrySensor`](crate::RegistrySensor) polling the
/// process [`StatsRegistry`](infopipes::StatsRegistry), and the whole
/// loop is: registry → sensor → this controller → `SetDropLevel`.
pub struct UnifiedCongestionController {
    signals: Vec<SignalState>,
    announced: u8,
}

impl UnifiedCongestionController {
    /// A controller with no signals (add them with
    /// [`with_signal`](UnifiedCongestionController::with_signal)).
    #[must_use]
    pub fn new() -> UnifiedCongestionController {
        UnifiedCongestionController {
            signals: Vec::new(),
            announced: 0,
        }
    }

    /// Adds one signal rule.
    #[must_use]
    pub fn with_signal(mut self, rule: SignalRule) -> UnifiedCongestionController {
        self.signals.push(SignalState {
            rule,
            level: 0,
            calm_windows: 0,
        });
        self
    }

    /// The standard manifold policy over the canonical readings:
    ///
    /// * [`readings::SEND_SATURATION`](crate::readings::SEND_SATURATION) — primary, full range (level 2),
    /// * [`readings::POOL_MISS`](crate::readings::POOL_MISS) — secondary, capped at level 1, raising
    ///   when half the acquisitions miss,
    /// * [`readings::UDP_RX_SHED`](crate::readings::UDP_RX_SHED) — secondary, capped at level 1,
    ///   raising on any shed activity in a window (feed it a per-window
    ///   delta, not the cumulative count).
    #[must_use]
    pub fn standard() -> UnifiedCongestionController {
        UnifiedCongestionController::new()
            .with_signal(SignalRule::new(crate::readings::SEND_SATURATION))
            .with_signal(SignalRule::new(crate::readings::POOL_MISS).capped(1))
            .with_signal(
                SignalRule::new(crate::readings::UDP_RX_SHED)
                    .raising_at(1.0)
                    .capped(1),
            )
    }

    /// The currently announced drop level (the max over signals).
    #[must_use]
    pub fn level(&self) -> u8 {
        self.announced
    }

    /// The named signal's own level, for introspection.
    #[must_use]
    pub fn signal_level(&self, reading: &str) -> Option<u8> {
        self.signals
            .iter()
            .find(|s| s.rule.reading == reading)
            .map(|s| s.level)
    }
}

impl Default for UnifiedCongestionController {
    fn default() -> Self {
        UnifiedCongestionController::new()
    }
}

impl Controller for UnifiedCongestionController {
    fn observe(&mut self, reading: &SensorReading) -> Option<ControlEvent> {
        let signal = self
            .signals
            .iter_mut()
            .find(|s| s.rule.reading == reading.name)?;
        signal.observe(reading.value);
        let level = self.signals.iter().map(|s| s.level).max().unwrap_or(0);
        if level != self.announced {
            self.announced = level;
            return Some(ControlEvent::SetDropLevel(level));
        }
        None
    }
}

/// A proportional rate controller: nudges a pump's rate to hold a buffer
/// at a target fill level (the real-rate allocator of ref \[27\], reduced
/// to its proportional term).
pub struct ProportionalRateController {
    reading_name: String,
    base_rate: f64,
    target_fill: f64,
    gain: f64,
    min_rate: f64,
    max_rate: f64,
}

impl ProportionalRateController {
    /// Creates a controller that emits `SetRate` commands around
    /// `base_rate` in response to fill-level readings.
    ///
    /// # Panics
    ///
    /// Panics if `base_rate` is not strictly positive.
    #[must_use]
    pub fn new(
        reading_name: impl Into<String>,
        base_rate: f64,
        target_fill: f64,
        gain: f64,
    ) -> ProportionalRateController {
        assert!(
            base_rate > 0.0 && base_rate.is_finite(),
            "base rate must be positive"
        );
        ProportionalRateController {
            reading_name: reading_name.into(),
            base_rate,
            target_fill,
            gain,
            min_rate: base_rate * 0.25,
            max_rate: base_rate * 4.0,
        }
    }
}

impl Controller for ProportionalRateController {
    fn observe(&mut self, reading: &SensorReading) -> Option<ControlEvent> {
        if reading.name != self.reading_name {
            return None;
        }
        // A consumer-side pump should speed up when the buffer is too
        // full and slow down when it drains.
        let error = reading.value - self.target_fill;
        let rate = (self.base_rate * (1.0 + self.gain * error)).clamp(self.min_rate, self.max_rate);
        Some(ControlEvent::SetRate(rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::readings;

    fn reading(name: &str, value: f64) -> SensorReading {
        SensorReading {
            name: name.into(),
            value,
        }
    }

    #[test]
    fn drop_controller_escalates_under_congestion() {
        let mut c = DropLevelController::new(readings::RECV_RATE_HZ, 30.0);
        // Delivery collapses to 10 Hz: raise to level 1.
        assert_eq!(
            c.observe(&reading(readings::RECV_RATE_HZ, 10.0)),
            Some(ControlEvent::SetDropLevel(1))
        );
        // At level 1 we expect ~10 Hz; 9.9 Hz is within band: no change.
        assert_eq!(c.observe(&reading(readings::RECV_RATE_HZ, 9.9)), None);
        // Still worse: raise to level 2.
        assert_eq!(
            c.observe(&reading(readings::RECV_RATE_HZ, 5.0)),
            Some(ControlEvent::SetDropLevel(2))
        );
        // Max level: no further escalation.
        assert_eq!(c.observe(&reading(readings::RECV_RATE_HZ, 1.0)), None);
        assert_eq!(c.level(), 2);
    }

    #[test]
    fn drop_controller_recovers_with_hysteresis() {
        let mut c = DropLevelController::new(readings::RECV_RATE_HZ, 30.0);
        let _ = c.observe(&reading(readings::RECV_RATE_HZ, 10.0)); // -> level 1
                                                                   // Expected at level 1 is ~10.2 Hz; sustained full delivery should
                                                                   // lower the level, but only after `patience` good windows.
        assert_eq!(c.observe(&reading(readings::RECV_RATE_HZ, 10.2)), None);
        assert_eq!(c.observe(&reading(readings::RECV_RATE_HZ, 10.2)), None);
        assert_eq!(
            c.observe(&reading(readings::RECV_RATE_HZ, 10.2)),
            Some(ControlEvent::SetDropLevel(0))
        );
        assert_eq!(c.level(), 0);
    }

    #[test]
    fn drop_controller_ignores_other_readings() {
        let mut c = DropLevelController::new(readings::RECV_RATE_HZ, 30.0);
        assert_eq!(c.observe(&reading(readings::FILL_LEVEL, 0.0)), None);
    }

    #[test]
    fn rate_controller_is_proportional_and_clamped() {
        let mut c = ProportionalRateController::new(readings::FILL_LEVEL, 30.0, 0.5, 1.0);
        // At target: base rate.
        match c.observe(&reading(readings::FILL_LEVEL, 0.5)) {
            Some(ControlEvent::SetRate(r)) => assert!((r - 30.0).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
        // Overfull buffer: speed up.
        match c.observe(&reading(readings::FILL_LEVEL, 1.0)) {
            Some(ControlEvent::SetRate(r)) => assert!(r > 30.0),
            other => panic!("unexpected {other:?}"),
        }
        // Clamped below.
        match c.observe(&reading(readings::FILL_LEVEL, -100.0)) {
            Some(ControlEvent::SetRate(r)) => assert!((r - 7.5).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn congestion_controller_reacts_to_send_side_backpressure() {
        let mut c = CongestionDropController::new(readings::SEND_SATURATION);
        // Calm link: nothing to do.
        assert_eq!(c.observe(&reading(readings::SEND_SATURATION, 0.0)), None);
        // Half the window saturated: raise.
        assert_eq!(
            c.observe(&reading(readings::SEND_SATURATION, 0.5)),
            Some(ControlEvent::SetDropLevel(1))
        );
        // Still saturated: raise to the cap and stay there.
        assert_eq!(
            c.observe(&reading(readings::SEND_SATURATION, 1.0)),
            Some(ControlEvent::SetDropLevel(2))
        );
        assert_eq!(c.observe(&reading(readings::SEND_SATURATION, 1.0)), None);
        assert_eq!(c.level(), 2);
        // Recovery needs `patience` fully calm windows; a mildly
        // pressured window resets the count without raising.
        assert_eq!(c.observe(&reading(readings::SEND_SATURATION, 0.0)), None);
        assert_eq!(c.observe(&reading(readings::SEND_SATURATION, 0.2)), None);
        assert_eq!(c.observe(&reading(readings::SEND_SATURATION, 0.0)), None);
        assert_eq!(c.observe(&reading(readings::SEND_SATURATION, 0.0)), None);
        assert_eq!(
            c.observe(&reading(readings::SEND_SATURATION, 0.0)),
            Some(ControlEvent::SetDropLevel(1))
        );
        // Other readings are ignored.
        assert_eq!(c.observe(&reading(readings::RECV_RATE_HZ, 0.9)), None);
    }

    #[test]
    fn unified_controller_takes_the_max_over_signals() {
        let mut c = UnifiedCongestionController::standard();
        // Memory pressure alone: capped at level 1.
        assert_eq!(
            c.observe(&reading(readings::POOL_MISS, 0.9)),
            Some(ControlEvent::SetDropLevel(1))
        );
        assert_eq!(c.observe(&reading(readings::POOL_MISS, 0.9)), None);
        assert_eq!(c.level(), 1);
        // The primary signal escalates past the cap.
        assert_eq!(c.observe(&reading(readings::SEND_SATURATION, 0.8)), None);
        assert_eq!(
            c.observe(&reading(readings::SEND_SATURATION, 0.8)),
            Some(ControlEvent::SetDropLevel(2))
        );
        assert_eq!(c.level(), 2);
        assert_eq!(c.signal_level(readings::SEND_SATURATION), Some(2));
        assert_eq!(c.signal_level(readings::POOL_MISS), Some(1));
        // Unknown readings are ignored.
        assert_eq!(c.observe(&reading("unrelated", 99.0)), None);
    }

    #[test]
    fn unified_recovery_follows_the_slowest_signal() {
        let mut c = UnifiedCongestionController::new()
            .with_signal(SignalRule::new("a").with_patience(1))
            .with_signal(SignalRule::new("b").with_patience(1).capped(1));
        assert_eq!(
            c.observe(&reading("a", 1.0)),
            Some(ControlEvent::SetDropLevel(1))
        );
        assert_eq!(c.observe(&reading("b", 1.0)), None, "same max: no spam");
        // `a` goes calm, but `b` still holds the level up.
        assert_eq!(c.observe(&reading("a", 0.0)), None);
        assert_eq!(c.level(), 1);
        // Only when `b` recovers too does the announced level fall.
        assert_eq!(
            c.observe(&reading("b", 0.0)),
            Some(ControlEvent::SetDropLevel(0))
        );
        assert_eq!(c.level(), 0);
    }

    #[test]
    fn unified_shed_rule_wants_deltas() {
        // The standard rx-shed rule raises on any per-window shed
        // activity (>= 1.0) and recovers over quiet windows.
        let mut c = UnifiedCongestionController::standard();
        assert_eq!(c.observe(&reading(readings::UDP_RX_SHED, 0.0)), None);
        assert_eq!(
            c.observe(&reading(readings::UDP_RX_SHED, 4.0)),
            Some(ControlEvent::SetDropLevel(1))
        );
        for _ in 0..2 {
            assert_eq!(c.observe(&reading(readings::UDP_RX_SHED, 0.0)), None);
        }
        assert_eq!(
            c.observe(&reading(readings::UDP_RX_SHED, 0.0)),
            Some(ControlEvent::SetDropLevel(0))
        );
    }

    #[test]
    fn closure_controllers_work() {
        let mut c = |r: &SensorReading| (r.value > 1.0).then_some(ControlEvent::SetDropLevel(1));
        assert_eq!(
            Controller::observe(&mut c, &reading("x", 2.0)),
            Some(ControlEvent::SetDropLevel(1))
        );
        assert_eq!(Controller::observe(&mut c, &reading("x", 0.5)), None);
    }
}
