//! Feedback toolkit for adaptation control (§2.1, ref \[7\] of the paper).
//!
//! Pipelines adapt by closing loops between **sensors** (components that
//! measure the flow), **controllers** (policies that map measurements to
//! knob settings), and **actuators** (the knobs: drop-filter levels, pump
//! rates). Sensor readings and actuator commands travel as control events
//! through the pipeline's event service, so a loop can close across a
//! netpipe exactly like the producer-side dropping of Fig. 1.

#![warn(missing_docs)]

mod controller;
mod drift;
mod loopctl;
pub mod readings;
mod sensor;
mod session;

pub use controller::{
    CongestionDropController, Controller, DropLevelController, ProportionalRateController,
    SignalRule, UnifiedCongestionController,
};
pub use drift::DriftEstimator;
pub use loopctl::{FeedbackLoop, LoopStats};
pub use sensor::{FillLevelSensor, GaugeSensor, RateSensor, RegistrySensor, SensorReading};
pub use session::SessionControllerBank;
