//! Per-session controller banks for serving tiers.
//!
//! A broadcast fan-out (netpipe's `SessionRegistry`) produces one
//! congestion reading stream *per session*; degrading all clients
//! because one is slow would defeat the point of per-session queues. A
//! [`SessionControllerBank`] keeps an independent [`Controller`] per
//! session key, created on first reading by a factory closure, so each
//! client gets its own hysteresis state and drop level.
//!
//! The bank is deliberately transport-agnostic: session keys are plain
//! `u64`s and commands come back as `(key, ControlEvent)` pairs for the
//! caller to apply (e.g. `ControlEvent::SetDropLevel` →
//! `SessionRegistry::set_drop_level`). The feedback crate stays free of
//! any netpipe dependency.

use crate::controller::Controller;
use crate::sensor::SensorReading;
use infopipes::ControlEvent;
use std::collections::HashMap;

/// An independent [`Controller`] per session, built on demand.
///
/// ```
/// use feedback::{readings, CongestionDropController, SessionControllerBank};
/// use infopipes::ControlEvent;
///
/// let mut bank =
///     SessionControllerBank::new(|_id| CongestionDropController::new(readings::SEND_SATURATION));
/// // Session 7 saturates; session 9 is calm. Only 7 is told to thin.
/// let cmds = bank.observe_values(readings::SEND_SATURATION, [(7, 0.8), (9, 0.0)]);
/// assert_eq!(cmds, vec![(7, ControlEvent::SetDropLevel(1))]);
/// ```
pub struct SessionControllerBank<C: Controller> {
    make: Box<dyn FnMut(u64) -> C + Send>,
    controllers: HashMap<u64, C>,
}

impl<C: Controller> SessionControllerBank<C> {
    /// Creates a bank whose per-session controllers come from `make`
    /// (called once per new session key, with the key).
    pub fn new(make: impl FnMut(u64) -> C + Send + 'static) -> SessionControllerBank<C> {
        SessionControllerBank {
            make: Box::new(make),
            controllers: HashMap::new(),
        }
    }

    /// Routes one reading to the session's controller (creating it on
    /// first contact); returns the command the policy wants applied to
    /// that session, if any.
    pub fn observe(&mut self, session: u64, reading: &SensorReading) -> Option<ControlEvent> {
        let controller = self
            .controllers
            .entry(session)
            .or_insert_with(|| (self.make)(session));
        controller.observe(reading)
    }

    /// Routes a batch of `(session, value)` samples sharing one reading
    /// name — the shape a serving tier's `take_readings()` drain has —
    /// and collects the resulting `(session, command)` pairs in order.
    pub fn observe_values(
        &mut self,
        reading_name: &str,
        samples: impl IntoIterator<Item = (u64, f64)>,
    ) -> Vec<(u64, ControlEvent)> {
        let mut commands = Vec::new();
        for (session, value) in samples {
            let reading = SensorReading {
                name: reading_name.to_owned(),
                value,
            };
            if let Some(cmd) = self.observe(session, &reading) {
                commands.push((session, cmd));
            }
        }
        commands
    }

    /// Drops a session's controller (call when the session is evicted —
    /// otherwise the bank grows with every client that ever connected).
    pub fn forget(&mut self, session: u64) {
        self.controllers.remove(&session);
    }

    /// Retains only the sessions `keep` approves of (bulk companion to
    /// [`forget`](SessionControllerBank::forget), for reconciling against
    /// a registry roster).
    pub fn retain(&mut self, mut keep: impl FnMut(u64) -> bool) {
        self.controllers.retain(|&id, _| keep(id));
    }

    /// Read access to one session's controller, if it exists.
    #[must_use]
    pub fn controller(&self, session: u64) -> Option<&C> {
        self.controllers.get(&session)
    }

    /// How many sessions currently have controllers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.controllers.len()
    }

    /// Whether the bank is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.controllers.is_empty()
    }
}

impl<C: Controller> std::fmt::Debug for SessionControllerBank<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionControllerBank")
            .field("sessions", &self.controllers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::CongestionDropController;
    use crate::readings;

    #[test]
    fn sessions_escalate_independently() {
        let mut bank = SessionControllerBank::new(|_| {
            CongestionDropController::new(readings::SEND_SATURATION)
        });
        // Session 1 saturates twice: walks to level 2. Session 2 stays calm.
        let cmds = bank.observe_values(readings::SEND_SATURATION, [(1, 0.9), (2, 0.0), (1, 0.9)]);
        assert_eq!(
            cmds,
            vec![
                (1, ControlEvent::SetDropLevel(1)),
                (1, ControlEvent::SetDropLevel(2)),
            ]
        );
        assert_eq!(
            bank.controller(1).map(CongestionDropController::level),
            Some(2)
        );
        assert_eq!(
            bank.controller(2).map(CongestionDropController::level),
            Some(0)
        );
    }

    #[test]
    fn forget_resets_a_session() {
        let mut bank = SessionControllerBank::new(|_| {
            CongestionDropController::new(readings::SEND_SATURATION)
        });
        let _ = bank.observe_values(readings::SEND_SATURATION, [(1, 0.9)]);
        assert_eq!(bank.len(), 1);
        bank.forget(1);
        assert!(bank.is_empty());
        // A fresh controller starts over at level 0 → first saturated
        // window commands level 1 again.
        let cmds = bank.observe_values(readings::SEND_SATURATION, [(1, 0.9)]);
        assert_eq!(cmds, vec![(1, ControlEvent::SetDropLevel(1))]);
    }

    #[test]
    fn retain_reconciles_against_a_roster() {
        let mut bank = SessionControllerBank::new(|_| {
            CongestionDropController::new(readings::SEND_SATURATION)
        });
        let _ = bank.observe_values(readings::SEND_SATURATION, [(1, 0.9), (2, 0.9), (3, 0.9)]);
        bank.retain(|id| id == 2);
        assert_eq!(bank.len(), 1);
        assert!(bank.controller(2).is_some());
    }

    #[test]
    fn factory_sees_the_session_key() {
        let mut bank = SessionControllerBank::new(|id| {
            move |r: &SensorReading| {
                (r.value > 0.5).then_some(ControlEvent::custom("seen", id as f64))
            }
        });
        let cmds = bank.observe_values("x", [(42, 1.0)]);
        assert_eq!(cmds, vec![(42, ControlEvent::custom("seen", 42.0))]);
    }
}
