//! The feedback loop component: closes sensor → controller → actuator
//! through the pipeline's event service.

use crate::controller::Controller;
use crate::sensor::{RateSensor, SensorReading};
use infopipes::{ControlEvent, EventCtx, Item, Stage, StageCtx};
use parking_lot::Mutex;
use std::sync::Arc;
use typespec::Typespec;

/// Counters kept by a [`FeedbackLoop`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LoopStats {
    /// Readings observed.
    pub readings: u64,
    /// Actuator commands emitted.
    pub commands: u64,
}

/// A pass-through pipeline component hosting a feedback loop.
///
/// Placed anywhere in a pipeline (consumer style, forwarding items
/// untouched), it measures the through-rate with an embedded
/// [`RateSensor`], feeds the readings — and any custom sensor events
/// arriving from elsewhere — to its [`Controller`], and broadcasts the
/// controller's commands. In the Fig. 1 pipeline it sits on the consumer
/// side while its commands steer the producer-side drop filter across the
/// netpipe.
pub struct FeedbackLoop<C> {
    name: String,
    sensor: Option<RateSensor>,
    controller: C,
    stats: Arc<Mutex<LoopStats>>,
}

impl<C: Controller> FeedbackLoop<C> {
    /// A loop fed by an embedded rate sensor reporting every
    /// `report_every` items under `reading_name`.
    #[must_use]
    pub fn with_rate_sensor(
        name: impl Into<String>,
        reading_name: impl Into<String>,
        report_every: u64,
        controller: C,
    ) -> (FeedbackLoop<C>, Arc<Mutex<LoopStats>>) {
        let stats = Arc::new(Mutex::new(LoopStats::default()));
        (
            FeedbackLoop {
                name: name.into(),
                sensor: Some(RateSensor::new(reading_name, report_every)),
                controller,
                stats: Arc::clone(&stats),
            },
            stats,
        )
    }

    /// A loop fed purely by custom control events from remote sensors.
    #[must_use]
    pub fn event_driven(
        name: impl Into<String>,
        controller: C,
    ) -> (FeedbackLoop<C>, Arc<Mutex<LoopStats>>) {
        let stats = Arc::new(Mutex::new(LoopStats::default()));
        (
            FeedbackLoop {
                name: name.into(),
                sensor: None,
                controller,
                stats: Arc::clone(&stats),
            },
            stats,
        )
    }

    fn feed(&mut self, reading: &SensorReading) -> Option<ControlEvent> {
        let mut stats = self.stats.lock();
        stats.readings += 1;
        let cmd = self.controller.observe(reading);
        if cmd.is_some() {
            stats.commands += 1;
        }
        cmd
    }
}

impl<C: Controller> Stage for FeedbackLoop<C> {
    fn name(&self) -> &str {
        &self.name
    }

    fn accepts(&self) -> Typespec {
        Typespec::new()
    }

    fn on_event(&mut self, ctx: &mut EventCtx<'_, '_>, event: &ControlEvent) {
        if let Some(reading) = SensorReading::from_event(event) {
            if let Some(cmd) = self.feed(&reading) {
                ctx.broadcast(&cmd);
            }
        }
    }
}

impl<C: Controller> infopipes::Consumer for FeedbackLoop<C> {
    fn push(&mut self, ctx: &mut StageCtx<'_, '_>, item: Item) {
        if let Some(sensor) = self.sensor.as_mut() {
            let now_us = ctx.now().as_micros();
            if let Some(reading) = sensor.observe(now_us) {
                if let Some(cmd) = self.feed(&reading) {
                    ctx.broadcast(&cmd);
                }
            }
        }
        ctx.put(item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infopipes::helpers::{CollectSink, IterSource};
    use infopipes::{ClockedPump, Pipeline};
    use mbthread::{Kernel, KernelConfig};

    #[test]
    fn rate_sensor_loop_emits_commands_through_the_pipeline() {
        let kernel = Kernel::new(KernelConfig::virtual_time());
        {
            let pipeline = Pipeline::new(&kernel, "loop");
            let src = pipeline.add_producer("src", IterSource::new("src", 0u32..30));
            // 10 Hz flow but the controller expects 100 Hz: it should
            // escalate the drop level.
            let pump = pipeline.add_pump("pump", ClockedPump::hz(10.0));
            let controller = crate::DropLevelController::new(crate::readings::RECV_RATE_HZ, 100.0);
            let (fb, stats) =
                FeedbackLoop::with_rate_sensor("fb", crate::readings::RECV_RATE_HZ, 5, controller);
            let fb = pipeline.add_consumer("fb", fb);
            let (sink, _out) = CollectSink::<u32>::new("sink");
            let sink = pipeline.add_consumer("sink", sink);
            let _ = src >> pump >> fb >> sink;
            let running = pipeline.start().unwrap();
            let sub = running.subscribe();
            running.start_flow().unwrap();
            running.wait_quiescent();
            let s = *stats.lock();
            assert!(s.readings >= 5, "{s:?}");
            assert!(s.commands >= 1, "{s:?}");
            // The SetDropLevel command reached external subscribers too.
            let mut saw_cmd = false;
            while let Some(ev) = sub.recv_timeout(std::time::Duration::from_millis(50)) {
                if matches!(ev, ControlEvent::SetDropLevel(_)) {
                    saw_cmd = true;
                    break;
                }
            }
            assert!(saw_cmd);
        }
        kernel.shutdown();
    }

    #[test]
    fn event_driven_loop_reacts_to_remote_readings() {
        let controller = move |r: &SensorReading| {
            (r.name == crate::readings::FILL_LEVEL && r.value > 0.9)
                .then_some(ControlEvent::SetRate(60.0))
        };
        let (mut fb, stats) = FeedbackLoop::event_driven("fb", controller);
        // Feed readings directly (unit level).
        assert_eq!(
            fb.feed(&SensorReading {
                name: crate::readings::FILL_LEVEL.into(),
                value: 0.95
            }),
            Some(ControlEvent::SetRate(60.0))
        );
        assert_eq!(
            fb.feed(&SensorReading {
                name: crate::readings::FILL_LEVEL.into(),
                value: 0.2
            }),
            None
        );
        let s = *stats.lock();
        assert_eq!(s.readings, 2);
        assert_eq!(s.commands, 1);
    }
}
