//! Clock-drift estimation for producer-side pumps in distributed
//! pipelines: "its speed is adjusted by a feedback mechanism to
//! compensate for clock drift and variation in network latency between
//! producer and consumer" (§3.1, refs [5, 32]).

/// Estimates the rate mismatch between a stream's timestamps and the
/// local clock from (pts, arrival) pairs, using an incremental
/// least-squares slope.
#[derive(Clone, Debug, Default)]
pub struct DriftEstimator {
    n: f64,
    sum_x: f64,
    sum_y: f64,
    sum_xx: f64,
    sum_xy: f64,
}

impl DriftEstimator {
    /// An empty estimator.
    #[must_use]
    pub fn new() -> DriftEstimator {
        DriftEstimator::default()
    }

    /// Records one observation: the item's stream timestamp and its local
    /// arrival time (both microseconds).
    pub fn update(&mut self, pts_us: u64, arrival_us: u64) {
        // Center roughly by using f64 seconds to keep the sums well
        // conditioned.
        let x = pts_us as f64 / 1e6;
        let y = arrival_us as f64 / 1e6;
        self.n += 1.0;
        self.sum_x += x;
        self.sum_y += y;
        self.sum_xx += x * x;
        self.sum_xy += x * y;
    }

    /// Observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n as u64
    }

    /// The slope of arrival time vs. stream time: 1.0 means the clocks
    /// agree; 1.001 means the consumer clock runs 0.1 % fast relative to
    /// the stream (or the stream is delivered 0.1 % slow). `None` until
    /// two distinct observations exist.
    #[must_use]
    pub fn slope(&self) -> Option<f64> {
        if self.n < 2.0 {
            return None;
        }
        let denom = self.n * self.sum_xx - self.sum_x * self.sum_x;
        if denom.abs() < 1e-12 {
            return None;
        }
        Some((self.n * self.sum_xy - self.sum_x * self.sum_y) / denom)
    }

    /// Estimated drift in parts per million (positive: arrivals are
    /// stretching out, the producer should speed up).
    #[must_use]
    pub fn drift_ppm(&self) -> Option<f64> {
        self.slope().map(|s| (s - 1.0) * 1e6)
    }

    /// The factor by which a producer-side pump should multiply its rate
    /// to compensate for the observed drift.
    #[must_use]
    pub fn rate_correction(&self) -> Option<f64> {
        self.slope().map(|s| s.clamp(0.5, 2.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_clocks_have_unit_slope() {
        let mut d = DriftEstimator::new();
        for i in 0..50u64 {
            d.update(i * 33_333, 1_000_000 + i * 33_333);
        }
        let slope = d.slope().unwrap();
        assert!((slope - 1.0).abs() < 1e-9, "slope {slope}");
        assert!(d.drift_ppm().unwrap().abs() < 1.0);
    }

    #[test]
    fn slow_delivery_shows_positive_drift() {
        let mut d = DriftEstimator::new();
        // Arrivals stretched by 0.1 %.
        for i in 0..50u64 {
            let pts = i * 33_333;
            let arrival = (pts as f64 * 1.001) as u64;
            d.update(pts, arrival);
        }
        let ppm = d.drift_ppm().unwrap();
        assert!((ppm - 1000.0).abs() < 50.0, "ppm {ppm}");
        let corr = d.rate_correction().unwrap();
        assert!(corr > 1.0005 && corr < 1.0015, "corr {corr}");
    }

    #[test]
    fn jittery_but_unbiased_arrivals_average_out() {
        let mut d = DriftEstimator::new();
        for i in 0..100u64 {
            let pts = i * 10_000;
            let jitter = if i % 2 == 0 { 500 } else { 0 };
            d.update(pts, pts + jitter);
        }
        let ppm = d.drift_ppm().unwrap();
        assert!(ppm.abs() < 200.0, "ppm {ppm}");
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        let mut d = DriftEstimator::new();
        assert_eq!(d.slope(), None);
        d.update(0, 0);
        assert_eq!(d.slope(), None);
        d.update(0, 5); // same x twice: singular
        assert_eq!(d.slope(), None);
        assert_eq!(d.count(), 2);
    }
}
