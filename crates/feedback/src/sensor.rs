//! Sensors: components that measure a flow and report readings as custom
//! control events.

use infopipes::{BufferProbe, ControlEvent, Function, Item, Stage, StatsRegistry};
use std::fmt;

/// A named scalar measurement, as carried by a
/// [`ControlEvent::Custom`] event.
#[derive(Clone, Debug, PartialEq)]
pub struct SensorReading {
    /// The reading's name (e.g. `crate::readings::RECV_RATE_HZ`, `crate::readings::FILL_LEVEL`).
    pub name: String,
    /// The measured value.
    pub value: f64,
}

impl SensorReading {
    /// Parses a reading out of a control event, if it is a custom event.
    #[must_use]
    pub fn from_event(event: &ControlEvent) -> Option<SensorReading> {
        match event {
            ControlEvent::Custom { name, value } => Some(SensorReading {
                name: name.to_string(),
                value: *value,
            }),
            _ => None,
        }
    }

    /// The control event broadcasting this reading.
    #[must_use]
    pub fn to_event(&self) -> ControlEvent {
        ControlEvent::custom(&self.name, self.value)
    }
}

impl fmt::Display for SensorReading {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// A pass-through sensor measuring the *rate* of items flowing by: every
/// `report_every` items it broadcasts a `recv-rate-hz` reading computed
/// over that window. Function style: zero-cost placement anywhere in a
/// pipeline (the paper's consumer-side sensor of Fig. 1).
pub struct RateSensor {
    name: String,
    report_every: u64,
    seen: u64,
    window_start_us: Option<u64>,
    pending_report: Option<f64>,
    /// Total items observed.
    pub total: u64,
}

impl RateSensor {
    /// Creates a rate sensor reporting under the given reading name.
    ///
    /// # Panics
    ///
    /// Panics if `report_every` is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, report_every: u64) -> RateSensor {
        assert!(report_every > 0, "report_every must be positive");
        RateSensor {
            name: name.into(),
            report_every,
            seen: 0,
            window_start_us: None,
            pending_report: None,
            total: 0,
        }
    }

    /// Observes one item at the given kernel time; returns a rate reading
    /// when a window completes.
    pub fn observe(&mut self, now_us: u64) -> Option<SensorReading> {
        self.total += 1;
        let start = *self.window_start_us.get_or_insert(now_us);
        self.seen += 1;
        if self.seen < self.report_every {
            return None;
        }
        let elapsed_us = now_us.saturating_sub(start).max(1);
        let rate = (self.seen as f64) * 1_000_000.0 / elapsed_us as f64;
        self.seen = 0;
        self.window_start_us = Some(now_us);
        Some(SensorReading {
            name: self.name.clone(),
            value: rate,
        })
    }

    /// Takes a report computed during `convert` (functions have no
    /// broadcast access; the enclosing
    /// [`FeedbackLoop`](crate::FeedbackLoop) or a consumer wrapper
    /// forwards it).
    pub fn take_report(&mut self) -> Option<f64> {
        self.pending_report.take()
    }
}

impl Stage for RateSensor {
    fn name(&self) -> &str {
        &self.name
    }
}

impl Function for RateSensor {
    fn convert(&mut self, item: Item) -> Option<Item> {
        let now_us = item.meta.ts.as_micros();
        if let Some(reading) = self.observe(now_us) {
            self.pending_report = Some(reading.value);
        }
        Some(item)
    }
}

/// Samples a buffer's fill fraction on demand — the fill-level feedback
/// of ref \[27\] ("adjust CPU allocations among pipeline stages according
/// to feedback from buffer fill levels").
pub struct FillLevelSensor {
    name: String,
    probe: BufferProbe,
}

impl FillLevelSensor {
    /// Creates a sensor over the given buffer probe.
    #[must_use]
    pub fn new(name: impl Into<String>, probe: BufferProbe) -> FillLevelSensor {
        FillLevelSensor {
            name: name.into(),
            probe,
        }
    }

    /// Reads the current fill fraction (0.0–1.0).
    #[must_use]
    pub fn read(&self) -> SensorReading {
        SensorReading {
            name: self.name.clone(),
            value: self.probe.fill_fraction(),
        }
    }
}

/// Samples any externally-maintained scalar on demand: a polled sensor
/// over a closure. This is how transport-level pressure counters — a
/// link's pool-miss rate, the UDP receive-queue shed count — become
/// feedback readings a controller can react to, without the transport
/// depending on this crate.
///
/// ```
/// use feedback::{readings, GaugeSensor};
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let sheds = Arc::new(AtomicU64::new(0));
/// let probe = Arc::clone(&sheds);
/// let sensor = GaugeSensor::new(readings::UDP_RX_SHED, move || {
///     probe.load(Ordering::Relaxed) as f64
/// });
/// sheds.store(3, Ordering::Relaxed);
/// assert_eq!(sensor.read().value, 3.0);
/// ```
pub struct GaugeSensor {
    name: String,
    read: Box<dyn Fn() -> f64 + Send + Sync>,
}

impl GaugeSensor {
    /// Creates a sensor reporting `read()` under the given reading name.
    #[must_use]
    pub fn new(name: impl Into<String>, read: impl Fn() -> f64 + Send + Sync + 'static) -> Self {
        GaugeSensor {
            name: name.into(),
            read: Box::new(read),
        }
    }

    /// Samples the gauge now.
    #[must_use]
    pub fn read(&self) -> SensorReading {
        SensorReading {
            name: self.name.clone(),
            value: (self.read)(),
        }
    }
}

/// How a [`RegistrySensor`] probe turns a metric into a reading value.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum ProbeMode {
    /// Report the metric's current value.
    Gauge,
    /// Report the increase since the previous sample — turns cumulative
    /// counters (e.g. `rx_shed`) into per-window activity a controller
    /// with a threshold can act on.
    Delta,
}

struct RegistryProbe {
    source: String,
    metric: String,
    reading: String,
    mode: ProbeMode,
    last: Option<f64>,
}

/// One sensor over the process-wide [`StatsRegistry`]: each configured
/// probe maps a `(source, metric)` pair to a named [`SensorReading`], so
/// a single poll fans the registry's signals into one reading stream a
/// controller (e.g.
/// [`UnifiedCongestionController`](crate::UnifiedCongestionController))
/// consumes. This replaces wiring one ad-hoc [`GaugeSensor`] per signal:
/// the registry is the contract, and adding a signal is one more probe.
///
/// Metrics missing from a snapshot (source not yet registered, or
/// unregistered mid-run) are skipped, not reported as zero — a vanished
/// producer must not read as "calm".
pub struct RegistrySensor {
    registry: StatsRegistry,
    probes: Vec<RegistryProbe>,
}

impl RegistrySensor {
    /// Creates a sensor with no probes over `registry`.
    #[must_use]
    pub fn new(registry: &StatsRegistry) -> RegistrySensor {
        RegistrySensor {
            registry: registry.clone(),
            probes: Vec::new(),
        }
    }

    fn probe(
        mut self,
        source: impl Into<String>,
        metric: impl Into<String>,
        reading: impl Into<String>,
        mode: ProbeMode,
    ) -> RegistrySensor {
        self.probes.push(RegistryProbe {
            source: source.into(),
            metric: metric.into(),
            reading: reading.into(),
            mode,
            last: None,
        });
        self
    }

    /// Adds a probe reporting `source`/`metric`'s current value under
    /// `reading`.
    #[must_use]
    pub fn gauge(
        self,
        source: impl Into<String>,
        metric: impl Into<String>,
        reading: impl Into<String>,
    ) -> RegistrySensor {
        self.probe(source, metric, reading, ProbeMode::Gauge)
    }

    /// Adds a probe reporting `source`/`metric`'s increase since the
    /// previous sample under `reading` (the first sample establishes the
    /// baseline and reports the raw value).
    #[must_use]
    pub fn delta(
        self,
        source: impl Into<String>,
        metric: impl Into<String>,
        reading: impl Into<String>,
    ) -> RegistrySensor {
        self.probe(source, metric, reading, ProbeMode::Delta)
    }

    /// Takes one registry snapshot and reports every probe that found
    /// its metric, in probe order.
    pub fn sample(&mut self) -> Vec<SensorReading> {
        let snap = self.registry.snapshot();
        let mut out = Vec::with_capacity(self.probes.len());
        for probe in &mut self.probes {
            let Some(value) = snap.value(&probe.source, &probe.metric) else {
                continue;
            };
            let reported = match probe.mode {
                ProbeMode::Gauge => value,
                ProbeMode::Delta => value - probe.last.unwrap_or(0.0),
            };
            probe.last = Some(value);
            out.push(SensorReading {
                name: probe.reading.clone(),
                value: reported,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_sensor_samples_the_closure() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let misses = Arc::new(AtomicU64::new(0));
        let probe = Arc::clone(&misses);
        let s = GaugeSensor::new(crate::readings::POOL_MISS, move || {
            probe.load(Ordering::Relaxed) as f64 / 100.0
        });
        assert_eq!(s.read().value, 0.0);
        misses.store(50, Ordering::Relaxed);
        let r = s.read();
        assert_eq!(r.name, crate::readings::POOL_MISS);
        assert_eq!(r.value, 0.5);
    }

    #[test]
    fn registry_sensor_maps_metrics_to_named_readings() {
        use infopipes::Metric;
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let registry = StatsRegistry::new();
        let shed = Arc::new(AtomicU64::new(0));
        let probe = Arc::clone(&shed);
        registry.register("downlink", "transport", move || {
            vec![
                Metric::counter("rx_shed", "frames", probe.load(Ordering::Relaxed)),
                Metric::gauge("miss_rate", "fraction", 0.75),
            ]
            .into()
        });
        let mut sensor = RegistrySensor::new(&registry)
            .gauge("downlink", "miss_rate", crate::readings::POOL_MISS)
            .delta("downlink", "rx_shed", crate::readings::UDP_RX_SHED)
            .gauge("ghost", "nothing", "never-reported");

        shed.store(3, Ordering::Relaxed);
        let readings = sensor.sample();
        // The unregistered source is skipped, not reported as zero.
        assert_eq!(readings.len(), 2);
        assert_eq!(readings[0].name, crate::readings::POOL_MISS);
        assert_eq!(readings[0].value, 0.75);
        assert_eq!(readings[1].name, crate::readings::UDP_RX_SHED);
        assert_eq!(readings[1].value, 3.0);

        // The delta probe reports only the new sheds next time.
        shed.store(5, Ordering::Relaxed);
        let readings = sensor.sample();
        assert_eq!(readings[1].value, 2.0);
        // No change: the delta goes calm instead of re-reporting.
        let readings = sensor.sample();
        assert_eq!(readings[1].value, 0.0);
    }

    #[test]
    fn reading_round_trips_through_events() {
        let r = SensorReading {
            name: crate::readings::FILL_LEVEL.into(),
            value: 0.75,
        };
        let ev = r.to_event();
        assert_eq!(SensorReading::from_event(&ev), Some(r));
        assert_eq!(SensorReading::from_event(&ControlEvent::Start), None);
    }

    #[test]
    fn rate_sensor_reports_per_window() {
        let mut s = RateSensor::new(crate::readings::RECV_RATE_HZ, 5);
        // 5 items 10 ms apart: the first completes a window after 40 ms
        // of elapsed window time (4 intervals observed from the window
        // start).
        let mut out = Vec::new();
        for i in 0..10u64 {
            if let Some(r) = s.observe(i * 10_000) {
                out.push(r.value);
            }
        }
        assert_eq!(out.len(), 2);
        // Window 1: 5 items over 40 ms -> 125 Hz; window 2: 5 items over
        // 50 ms -> 100 Hz.
        assert!((out[0] - 125.0).abs() < 1.0, "{out:?}");
        assert!((out[1] - 100.0).abs() < 1.0, "{out:?}");
        assert_eq!(s.total, 10);
    }

    #[test]
    fn display_is_informative() {
        let r = SensorReading {
            name: "x".into(),
            value: 1.5,
        };
        assert_eq!(r.to_string(), "x = 1.5");
    }
}
