//! Canonical reading names.
//!
//! Sensor readings travel as named [`ControlEvent::Custom`] events, and
//! controllers match on the name — so a drifted string literal silently
//! severs a feedback loop. This module is the single home of the names
//! the crates agree on; `netpipe` re-exports the transport-related ones
//! (e.g. `netpipe::SEND_SATURATION_READING`) so existing call sites keep
//! compiling.
//!
//! [`ControlEvent::Custom`]: infopipes::ControlEvent::Custom

/// Send-side saturation fraction (0..1): the share of a
/// `NetSendEnd` window's data sends the link reported `Saturated` or
/// `Dropped`.
pub const SEND_SATURATION: &str = "net-send-saturation";

/// Buffer-pool miss rate (0..1): the fraction of acquisitions that fell
/// back to a fresh allocation — consumers are holding payloads longer
/// than the pool can recycle them.
pub const POOL_MISS: &str = "pool-miss-rate";

/// UDP receive-queue shed count: frames discarded because the bounded
/// receive queue was full. Cumulative; pair with a delta window (e.g.
/// [`RegistrySensor::delta`](crate::RegistrySensor::delta)) when
/// controlling on it.
pub const UDP_RX_SHED: &str = "udp-rx-shed";

/// Consumer-side delivery rate in items per second, as reported by a
/// [`RateSensor`](crate::RateSensor) window.
pub const RECV_RATE_HZ: &str = "recv-rate-hz";

/// A buffer's fill fraction (0..1), as reported by a
/// [`FillLevelSensor`](crate::FillLevelSensor).
pub const FILL_LEVEL: &str = "fill-level";

/// Replay lag-behind-schedule in seconds: how far past its recorded
/// virtual timestamp the replayer delivered the most recent frame. Zero
/// under an unloaded virtual-time kernel; a persistently positive value
/// means the replay target cannot keep up with the recorded schedule.
pub const REPLAY_LAG: &str = "replay-lag-sec";
