//! Minimal `#[derive(Serialize, Deserialize)]` macros for the in-repo
//! serde shim (the build environment has no network access, so `syn` and
//! `quote` are unavailable; the item is parsed directly from the token
//! stream).
//!
//! Supported shapes — everything this workspace derives on:
//!
//! * structs with named fields, tuple structs, unit structs
//! * enums whose variants are unit, newtype/tuple, or struct-like
//!
//! Unsupported (panics with a clear message): generics, `serde(...)`
//! attributes, and discriminant expressions.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_serialize_struct(name, fields),
        Item::Enum { name, variants } => gen_serialize_enum(name, variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_deserialize_struct(name, fields),
        Item::Enum { name, variants } => gen_deserialize_enum(name, variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected a type name, found {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported (derive on `{name}`)");
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_top_level_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => {
                    panic!("serde shim derive: unsupported struct body for `{name}`: {other:?}")
                }
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => {
                    panic!("serde shim derive: expected enum body for `{name}`, found {other:?}")
                }
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde shim derive: cannot derive on `{other}` items"),
    }
}

/// Advances past `#[...]` attributes and a `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a field/variant list on top-level commas (angle-bracket aware —
/// `<` and `>` are plain puncts in a token stream, unlike `(..)`/`[..]`
/// which arrive as atomic groups).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|tokens| {
            let mut i = 0;
            skip_attrs_and_vis(&tokens, &mut i);
            match tokens.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde shim derive: expected a field name, found {other:?}"),
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    split_top_level(stream)
        .into_iter()
        .map(|tokens| {
            let mut i = 0;
            skip_attrs_and_vis(&tokens, &mut i);
            let name = match tokens.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde shim derive: expected a variant name, found {other:?}"),
            };
            i += 1;
            let fields = match tokens.get(i) {
                None => Fields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_top_level_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => panic!(
                    "serde shim derive: explicit discriminants are not supported (variant `{name}`)"
                ),
                other => panic!("serde shim derive: unsupported variant body: {other:?}"),
            };
            (name, fields)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------

fn gen_serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("__serializer.serialize_unit_struct(\"{name}\")"),
        Fields::Tuple(n) => {
            let mut b = String::new();
            b.push_str("{ use serde::ser::SerializeTupleStruct as _; ");
            b.push_str(&format!(
                "let mut __state = __serializer.serialize_tuple_struct(\"{name}\", {n})?; "
            ));
            for idx in 0..*n {
                b.push_str(&format!("__state.serialize_field(&self.{idx})?; "));
            }
            b.push_str("__state.end() }");
            b
        }
        Fields::Named(fs) => {
            let mut b = String::new();
            b.push_str("{ use serde::ser::SerializeStruct as _; ");
            b.push_str(&format!(
                "let mut __state = __serializer.serialize_struct(\"{name}\", {})?; ",
                fs.len()
            ));
            for f in fs {
                b.push_str(&format!("__state.serialize_field(\"{f}\", &self.{f})?; "));
            }
            b.push_str("__state.end() }");
            b
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize<__S: serde::Serializer>(&self, __serializer: __S) \
         -> core::result::Result<__S::Ok, __S::Error> {{ {body} }}\n\
         }}"
    )
}

fn gen_serialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = String::new();
    for (idx, (vname, fields)) in variants.iter().enumerate() {
        match fields {
            Fields::Unit => arms.push_str(&format!(
                "{name}::{vname} => __serializer.serialize_unit_variant(\"{name}\", {idx}u32, \"{vname}\"),\n"
            )),
            Fields::Tuple(1) => arms.push_str(&format!(
                "{name}::{vname}(__f0) => __serializer.serialize_newtype_variant(\"{name}\", {idx}u32, \"{vname}\", __f0),\n"
            )),
            Fields::Tuple(n) => {
                let pats: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                let mut body = String::new();
                body.push_str("{ use serde::ser::SerializeTupleVariant as _; ");
                body.push_str(&format!(
                    "let mut __state = __serializer.serialize_tuple_variant(\"{name}\", {idx}u32, \"{vname}\", {n})?; "
                ));
                for p in &pats {
                    body.push_str(&format!("__state.serialize_field({p})?; "));
                }
                body.push_str("__state.end() }");
                arms.push_str(&format!(
                    "{name}::{vname}({}) => {body},\n",
                    pats.join(", ")
                ));
            }
            Fields::Named(fs) => {
                let mut body = String::new();
                body.push_str("{ use serde::ser::SerializeStructVariant as _; ");
                body.push_str(&format!(
                    "let mut __state = __serializer.serialize_struct_variant(\"{name}\", {idx}u32, \"{vname}\", {})?; ",
                    fs.len()
                ));
                for f in fs {
                    body.push_str(&format!("__state.serialize_field(\"{f}\", {f})?; "));
                }
                body.push_str("__state.end() }");
                arms.push_str(&format!(
                    "{name}::{vname} {{ {} }} => {body},\n",
                    fs.join(", ")
                ));
            }
        }
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize<__S: serde::Serializer>(&self, __serializer: __S) \
         -> core::result::Result<__S::Ok, __S::Error> {{ match self {{ {arms} }} }}\n\
         }}"
    )
}

// ---------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------

/// A `visit_seq` body constructing `ctor(...)` from consecutive elements.
fn seq_construction(ctor: &str, fields: &Fields) -> String {
    let (lets, build) = match fields {
        Fields::Unit => (String::new(), ctor.to_owned()),
        Fields::Tuple(n) => {
            let mut lets = String::new();
            let mut names = Vec::new();
            for k in 0..*n {
                lets.push_str(&format!(
                    "let __f{k} = match __seq.next_element()? {{ Some(__v) => __v, None => \
                     return Err(serde::de::Error::custom(\"missing tuple field {k}\")) }}; "
                ));
                names.push(format!("__f{k}"));
            }
            (lets, format!("{ctor}({})", names.join(", ")))
        }
        Fields::Named(fs) => {
            let mut lets = String::new();
            for f in fs {
                lets.push_str(&format!(
                    "let __field_{f} = match __seq.next_element()? {{ Some(__v) => __v, None => \
                     return Err(serde::de::Error::custom(\"missing field `{f}`\")) }}; "
                ));
            }
            let inits: Vec<String> = fs.iter().map(|f| format!("{f}: __field_{f}")).collect();
            (lets, format!("{ctor} {{ {} }}", inits.join(", ")))
        }
    };
    format!("{lets} core::result::Result::Ok({build})")
}

fn gen_deserialize_struct(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!(
            "impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
             -> core::result::Result<Self, __D::Error> {{\n\
             struct __Visitor;\n\
             impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
             type Value = {name};\n\
             fn expecting(&self, __f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {{ \
             __f.write_str(\"unit struct {name}\") }}\n\
             fn visit_unit<__E: serde::de::Error>(self) -> core::result::Result<{name}, __E> {{ \
             core::result::Result::Ok({name}) }}\n\
             }}\n\
             __deserializer.deserialize_unit_struct(\"{name}\", __Visitor)\n\
             }}\n}}"
        ),
        Fields::Tuple(n) => {
            let body = seq_construction(name, fields);
            let driver = if *n == 1 {
                // Newtype structs go through `deserialize_newtype_struct`.
                format!(
                    "fn visit_newtype_struct<__D2: serde::Deserializer<'de>>(self, __d: __D2) \
                     -> core::result::Result<{name}, __D2::Error> {{ \
                     core::result::Result::Ok({name}(serde::Deserialize::deserialize(__d)?)) }}\n\
                     fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
                     -> core::result::Result<{name}, __A::Error> {{ {body} }}\n"
                )
            } else {
                format!(
                    "fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
                     -> core::result::Result<{name}, __A::Error> {{ {body} }}\n"
                )
            };
            let call = if *n == 1 {
                format!("__deserializer.deserialize_newtype_struct(\"{name}\", __Visitor)")
            } else {
                format!("__deserializer.deserialize_tuple_struct(\"{name}\", {n}, __Visitor)")
            };
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
                 -> core::result::Result<Self, __D::Error> {{\n\
                 struct __Visitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {{ \
                 __f.write_str(\"tuple struct {name}\") }}\n\
                 {driver}\
                 }}\n\
                 {call}\n\
                 }}\n}}"
            )
        }
        Fields::Named(fs) => {
            let body = seq_construction(name, fields);
            let field_list: Vec<String> = fs.iter().map(|f| format!("\"{f}\"")).collect();
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
                 -> core::result::Result<Self, __D::Error> {{\n\
                 struct __Visitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {{ \
                 __f.write_str(\"struct {name}\") }}\n\
                 fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
                 -> core::result::Result<{name}, __A::Error> {{ {body} }}\n\
                 }}\n\
                 __deserializer.deserialize_struct(\"{name}\", &[{}], __Visitor)\n\
                 }}\n}}",
                field_list.join(", ")
            )
        }
    }
}

fn gen_deserialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = String::new();
    for (idx, (vname, fields)) in variants.iter().enumerate() {
        let ctor = format!("{name}::{vname}");
        match fields {
            Fields::Unit => arms.push_str(&format!(
                "{idx}u32 => {{ serde::de::VariantAccess::unit_variant(__variant)?; \
                 core::result::Result::Ok({ctor}) }}\n"
            )),
            Fields::Tuple(1) => arms.push_str(&format!(
                "{idx}u32 => core::result::Result::Ok({ctor}(\
                 serde::de::VariantAccess::newtype_variant(__variant)?)),\n"
            )),
            Fields::Tuple(n) => {
                let body = seq_construction(&ctor, fields);
                arms.push_str(&format!(
                    "{idx}u32 => {{\n\
                     struct __V{idx};\n\
                     impl<'de> serde::de::Visitor<'de> for __V{idx} {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {{ \
                     __f.write_str(\"tuple variant {name}::{vname}\") }}\n\
                     fn visit_seq<__A2: serde::de::SeqAccess<'de>>(self, mut __seq: __A2) \
                     -> core::result::Result<{name}, __A2::Error> {{ {body} }}\n\
                     }}\n\
                     serde::de::VariantAccess::tuple_variant(__variant, {n}, __V{idx})\n\
                     }}\n"
                ));
            }
            Fields::Named(fs) => {
                let body = seq_construction(&ctor, fields);
                let field_list: Vec<String> = fs.iter().map(|f| format!("\"{f}\"")).collect();
                arms.push_str(&format!(
                    "{idx}u32 => {{\n\
                     struct __V{idx};\n\
                     impl<'de> serde::de::Visitor<'de> for __V{idx} {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {{ \
                     __f.write_str(\"struct variant {name}::{vname}\") }}\n\
                     fn visit_seq<__A2: serde::de::SeqAccess<'de>>(self, mut __seq: __A2) \
                     -> core::result::Result<{name}, __A2::Error> {{ {body} }}\n\
                     }}\n\
                     serde::de::VariantAccess::struct_variant(__variant, &[{}], __V{idx})\n\
                     }}\n",
                    field_list.join(", ")
                ));
            }
        }
    }
    let variant_names: Vec<String> = variants.iter().map(|(v, _)| format!("\"{v}\"")).collect();
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
         -> core::result::Result<Self, __D::Error> {{\n\
         struct __Visitor;\n\
         impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
         type Value = {name};\n\
         fn expecting(&self, __f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {{ \
         __f.write_str(\"enum {name}\") }}\n\
         fn visit_enum<__A: serde::de::EnumAccess<'de>>(self, __data: __A) \
         -> core::result::Result<{name}, __A::Error> {{\n\
         let (__idx, __variant) = serde::de::EnumAccess::variant_seed(__data, \
         serde::de::VariantIndexSeed)?;\n\
         match __idx {{\n{arms}\
         __other => core::result::Result::Err(serde::de::Error::custom(\"invalid variant index\")),\n\
         }}\n\
         }}\n\
         }}\n\
         __deserializer.deserialize_enum(\"{name}\", &[{}], __Visitor)\n\
         }}\n}}",
        variant_names.join(", ")
    )
}
