//! A minimal, API-compatible stand-in for the `parking_lot` crate, backed
//! by `std::sync`. The build environment has no network access to
//! crates.io, so the workspace vendors the small slice of the API it
//! actually uses: `Mutex` (non-poisoning `lock()`), `MutexGuard`, and
//! `Condvar` with `wait`/`wait_for`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual exclusion primitive. Unlike `std::sync::Mutex`, `lock()`
/// ignores poisoning (matching parking_lot semantics).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]. Holds the std guard in an `Option` so
/// [`Condvar::wait`] can temporarily take ownership through `&mut`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

/// Result of a timed condition-variable wait.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with parking_lot's by-reference guard API.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks until notified or the timeout elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiting thread. Returns whether a thread may have been
    /// woken (std does not report this; `true` is always returned).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A readers-writer lock, non-poisoning.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
