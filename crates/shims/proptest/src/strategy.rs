//! The `Strategy` trait and combinators (workspace subset).

use crate::TestRng;
use std::rc::Rc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy {
            sample: Rc::new(move |rng| inner.sample(rng)),
        }
    }
}

/// Always produces a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T> {
    sample: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sample: Rc::clone(&self.sample),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// Chooses uniformly among boxed strategies (see `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (T0.0);
    (T0.0, T1.1);
    (T0.0, T1.1, T2.2);
    (T0.0, T1.1, T2.2, T3.3);
    (T0.0, T1.1, T2.2, T3.3, T4.4);
    (T0.0, T1.1, T2.2, T3.3, T4.4, T5.5);
    (T0.0, T1.1, T2.2, T3.3, T4.4, T5.5, T6.6);
    (T0.0, T1.1, T2.2, T3.3, T4.4, T5.5, T6.6, T7.7);
}
