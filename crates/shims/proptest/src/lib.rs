//! A minimal, API-compatible stand-in for the `proptest` crate (the
//! build environment has no network access to crates.io).
//!
//! It keeps proptest's *vocabulary* — `proptest!`, `Strategy`,
//! `prop_oneof!`, `any::<T>()`, `prop_map`, `collection::vec`,
//! `collection::btree_map`, `option::of`, string-pattern strategies —
//! but replaces the engine with plain deterministic random sampling: no
//! shrinking, no persisted failure seeds. Each `proptest!` test runs its
//! body for `ProptestConfig::cases` samples drawn from a generator
//! seeded by the test's name, so failures reproduce across runs.

use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Deterministic sampling source (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (e.g. the test name).
    #[must_use]
    pub fn deterministic(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` samples.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Mix edge cases in with uniform bits.
                match rng.below(8) {
                    0 => <$ty>::MIN,
                    1 => <$ty>::MAX,
                    2 => 0 as $ty,
                    _ => rng.next_u64() as $ty,
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.below(4) {
            // Mostly ASCII, sometimes the whole scalar range.
            0 | 1 => (b' ' + (rng.below(95)) as u8) as char,
            2 => char::from_u32(0x00A0 + rng.next_u64() as u32 % 0x2000).unwrap_or('¤'),
            _ => loop {
                if let Some(c) = char::from_u32(rng.next_u64() as u32 % 0x11_0000) {
                    break c;
                }
            },
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.below(6) {
            0 => 0.0,
            1 => -1.5,
            _ => (rng.unit_f64() - 0.5) * 2e9,
        }
    }
}

/// The canonical strategy for `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

// ---------------------------------------------------------------------
// String pattern strategies
// ---------------------------------------------------------------------

/// `&str` patterns act as (very small) regex-like generators. Supported
/// forms: `.` (any char), `[a-z]`-style single class, each optionally
/// followed by `*` (0..=32) or `{m,n}`; a bare class/dot generates one
/// char. Anything else is treated as `.{0,32}`.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (class, min, max) = parse_pattern(self);
        let len = min + rng.below(max - min + 1);
        let mut out = String::new();
        for _ in 0..len {
            out.push(class.sample(rng));
        }
        out
    }
}

#[derive(Clone)]
enum CharClass {
    AnyChar,
    Span(char, char),
}

impl CharClass {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharClass::AnyChar => char::arbitrary(rng),
            CharClass::Span(lo, hi) => {
                let span = *hi as u32 - *lo as u32 + 1;
                char::from_u32(*lo as u32 + rng.next_u64() as u32 % span).unwrap_or(*lo)
            }
        }
    }
}

fn parse_pattern(pat: &str) -> (CharClass, usize, usize) {
    let mut chars = pat.chars().peekable();
    let class = match chars.next() {
        Some('.') => CharClass::AnyChar,
        Some('[') => {
            // `[a-z]` form only.
            let lo = chars.next();
            let dash = chars.next();
            let hi = chars.next();
            let close = chars.next();
            match (lo, dash, hi, close) {
                (Some(lo), Some('-'), Some(hi), Some(']')) => CharClass::Span(lo, hi),
                _ => return (CharClass::AnyChar, 0, 32),
            }
        }
        _ => return (CharClass::AnyChar, 0, 32),
    };
    match chars.next() {
        None => (class, 1, 1),
        Some('*') => (class, 0, 32),
        Some('{') => {
            let rest: String = chars.collect();
            let inner = rest.trim_end_matches('}');
            let mut parts = inner.splitn(2, ',');
            let m: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
            let n: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(m);
            (class, m, n.max(m))
        }
        _ => (class, 0, 32),
    }
}

// ---------------------------------------------------------------------
// Modules mirroring proptest's layout
// ---------------------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{BTreeMap, Range, Strategy, TestRng};

    /// A strategy for `Vec<S::Value>` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Generates maps whose entry count falls in `size` (before key
    /// deduplication).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span);
            (0..len)
                .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                .collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// A strategy for `Option<S::Value>` (¾ `Some`, ¼ `None`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Option`s of the inner strategy's values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Numeric sub-strategies (float classes).
pub mod num {
    /// `f64` classes.
    pub mod f64 {
        use crate::{Strategy, TestRng};

        const CLASS_NORMAL: u32 = 1;
        const CLASS_ZERO: u32 = 2;

        /// A union of IEEE-754 value classes; `|` composes classes.
        #[derive(Copy, Clone, Debug)]
        pub struct FloatClasses(u32);

        /// Normal (non-zero, non-subnormal, finite) values.
        pub const NORMAL: FloatClasses = FloatClasses(CLASS_NORMAL);
        /// Positive and negative zero.
        pub const ZERO: FloatClasses = FloatClasses(CLASS_ZERO);

        impl std::ops::BitOr for FloatClasses {
            type Output = FloatClasses;

            fn bitor(self, rhs: FloatClasses) -> FloatClasses {
                FloatClasses(self.0 | rhs.0)
            }
        }

        impl Strategy for FloatClasses {
            type Value = f64;

            fn sample(&self, rng: &mut TestRng) -> f64 {
                let mut classes = Vec::new();
                if self.0 & CLASS_NORMAL != 0 {
                    classes.push(CLASS_NORMAL);
                }
                if self.0 & CLASS_ZERO != 0 {
                    classes.push(CLASS_ZERO);
                }
                match classes[rng.below(classes.len())] {
                    CLASS_ZERO => {
                        if rng.below(2) == 0 {
                            0.0
                        } else {
                            -0.0
                        }
                    }
                    _ => {
                        // Sign * mantissa in [1, 2) * 2^exp with a modest
                        // exponent range (normal by construction).
                        let sign = if rng.below(2) == 0 { 1.0 } else { -1.0 };
                        let mantissa = 1.0 + rng.unit_f64();
                        let exp = rng.below(129) as i32 - 64;
                        sign * mantissa * 2f64.powi(exp)
                    }
                }
            }
        }
    }
}

/// The glob-import surface tests use.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };

    /// Alias so `prop::num::f64::NORMAL`-style paths resolve.
    pub use crate as prop;
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Chooses uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each function samples its argument
/// strategies [`ProptestConfig::cases`] times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}
