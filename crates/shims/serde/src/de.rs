//! Deserialization half of the serde data model (workspace subset).

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Errors a [`Deserializer`] can produce.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be deserialized from any serde data format.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` with the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// A stateful `Deserialize` driver (here: stateless, via `PhantomData`).
pub trait DeserializeSeed<'de>: Sized {
    /// The produced value.
    type Value;
    /// Runs the deserialization.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;

    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

macro_rules! delegate_to_any {
    ($($(#[$doc:meta])* fn $method:ident;)*) => {$(
        $(#[$doc])*
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
            self.deserialize_any(visitor)
        }
    )*};
}

/// A data format that can deserialize the serde data model.
///
/// Every `deserialize_*` hint defaults to [`deserialize_any`]
/// (self-describing formats need nothing else); non-self-describing
/// formats like the netpipe wire codec override each hint.
///
/// [`deserialize_any`]: Deserializer::deserialize_any
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Deserializes whatever the input contains next.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    delegate_to_any! {
        /// Expects a `bool`.
        fn deserialize_bool;
        /// Expects an `i8`.
        fn deserialize_i8;
        /// Expects an `i16`.
        fn deserialize_i16;
        /// Expects an `i32`.
        fn deserialize_i32;
        /// Expects an `i64`.
        fn deserialize_i64;
        /// Expects a `u8`.
        fn deserialize_u8;
        /// Expects a `u16`.
        fn deserialize_u16;
        /// Expects a `u32`.
        fn deserialize_u32;
        /// Expects a `u64`.
        fn deserialize_u64;
        /// Expects an `f32`.
        fn deserialize_f32;
        /// Expects an `f64`.
        fn deserialize_f64;
        /// Expects a `char`.
        fn deserialize_char;
        /// Expects a string slice.
        fn deserialize_str;
        /// Expects an owned string.
        fn deserialize_string;
        /// Expects raw bytes.
        fn deserialize_bytes;
        /// Expects an owned byte buffer.
        fn deserialize_byte_buf;
        /// Expects an option.
        fn deserialize_option;
        /// Expects `()`.
        fn deserialize_unit;
        /// Expects a sequence.
        fn deserialize_seq;
        /// Expects a map.
        fn deserialize_map;
        /// Expects a field or variant identifier.
        fn deserialize_identifier;
        /// Skips a value.
        fn deserialize_ignored_any;
    }

    /// Expects a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Expects a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Expects a tuple of known arity.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Expects a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Expects a struct with the named fields.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Expects an enum with the named variants.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Whether the format is human readable.
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Drives construction of one value from deserializer callbacks.
pub trait Visitor<'de>: Sized {
    /// The constructed value.
    type Value;

    /// Describes what this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Receives a `bool`.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(Unexpected("bool", &self)))
    }

    /// Receives an `i8`.
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(i64::from(v))
    }

    /// Receives an `i16`.
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(i64::from(v))
    }

    /// Receives an `i32`.
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(i64::from(v))
    }

    /// Receives an `i64`.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(Unexpected("i64", &self)))
    }

    /// Receives a `u8`.
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(u64::from(v))
    }

    /// Receives a `u16`.
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(u64::from(v))
    }

    /// Receives a `u32`.
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(u64::from(v))
    }

    /// Receives a `u64`.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(Unexpected("u64", &self)))
    }

    /// Receives an `f32`.
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(f64::from(v))
    }

    /// Receives an `f64`.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(Unexpected("f64", &self)))
    }

    /// Receives a `char`.
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(Unexpected("char", &self)))
    }

    /// Receives a string slice.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(Unexpected("string", &self)))
    }

    /// Receives a string borrowed from the input.
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    /// Receives an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Receives a byte slice.
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(Unexpected("bytes", &self)))
    }

    /// Receives bytes borrowed from the input.
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }

    /// Receives an owned byte buffer.
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    /// Receives `None`.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom(Unexpected("none", &self)))
    }

    /// Receives `Some`; the inner value is behind the deserializer.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::custom(Unexpected("some", &self)))
    }

    /// Receives `()`.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom(Unexpected("unit", &self)))
    }

    /// Receives a newtype struct's inner value.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::custom(Unexpected("newtype struct", &self)))
    }

    /// Receives a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(A::Error::custom(Unexpected("sequence", &self)))
    }

    /// Receives a map.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(A::Error::custom(Unexpected("map", &self)))
    }

    /// Receives an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(A::Error::custom(Unexpected("enum", &self)))
    }
}

/// "invalid type: got X, expected Y" message helper.
struct Unexpected<'a, V>(&'a str, &'a V);

impl<'de, V: Visitor<'de>> Display for Unexpected<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        struct Expecting<'b, V2>(&'b V2);
        impl<'de2, V2: Visitor<'de2>> Display for Expecting<'_, V2> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.expecting(f)
            }
        }
        write!(
            f,
            "invalid type: {}, expected {}",
            self.0,
            Expecting(self.1)
        )
    }
}

/// Access to the elements of a sequence.
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;

    /// Deserializes the next element through a seed.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Deserializes the next element.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    /// Remaining element count, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map.
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;

    /// Deserializes the next key through a seed.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    /// Deserializes the value paired with the last key.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    /// Deserializes the next key.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    /// Deserializes the next value.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    /// Remaining entry count, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Accessor for the variant payload.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Deserializes the variant tag through a seed.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Deserializes the variant tag.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of one enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// The variant has no payload.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// Deserializes a newtype variant's payload through a seed.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    /// Deserializes a newtype variant's payload.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// Deserializes a tuple variant's payload.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// Deserializes a struct variant's payload.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

// ---------------------------------------------------------------------
// IntoDeserializer (used by wire codecs to decode enum variant indices)
// ---------------------------------------------------------------------

/// Conversion of a primitive into a trivial deserializer over itself.
pub trait IntoDeserializer<'de, E: Error> {
    /// The deserializer produced.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Performs the conversion.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// A deserializer holding one `u32` (typically an enum variant index).
pub struct U32Deserializer<E> {
    value: u32,
    marker: PhantomData<E>,
}

impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
    type Error = E;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
    type Deserializer = U32Deserializer<E>;

    fn into_deserializer(self) -> U32Deserializer<E> {
        U32Deserializer {
            value: self,
            marker: PhantomData,
        }
    }
}

/// A `DeserializeSeed` producing an enum's `u32` variant index, used by
/// derived `Deserialize` impls via `deserialize_identifier`.
pub struct VariantIndexSeed;

impl<'de> DeserializeSeed<'de> for VariantIndexSeed {
    type Value = u32;

    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<u32, D::Error> {
        struct IndexVisitor;
        impl<'de2> Visitor<'de2> for IndexVisitor {
            type Value = u32;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a variant index")
            }

            fn visit_u32<E: Error>(self, v: u32) -> Result<u32, E> {
                Ok(v)
            }

            fn visit_u64<E: Error>(self, v: u64) -> Result<u32, E> {
                u32::try_from(v).map_err(|_| E::custom("variant index exceeds u32"))
            }
        }
        deserializer.deserialize_identifier(IndexVisitor)
    }
}

// ---------------------------------------------------------------------
// Deserialize impls for primitives and std containers
// ---------------------------------------------------------------------

macro_rules! primitive_deserialize {
    ($($ty:ty => ($method:ident, $visit:ident, $expect:literal)),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct PrimitiveVisitor;
                impl<'de2> Visitor<'de2> for PrimitiveVisitor {
                    type Value = $ty;

                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str($expect)
                    }

                    fn $visit<E: Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$method(PrimitiveVisitor)
            }
        }
    )*};
}

primitive_deserialize! {
    bool => (deserialize_bool, visit_bool, "a bool"),
    i8 => (deserialize_i8, visit_i8, "an i8"),
    i16 => (deserialize_i16, visit_i16, "an i16"),
    i32 => (deserialize_i32, visit_i32, "an i32"),
    i64 => (deserialize_i64, visit_i64, "an i64"),
    u8 => (deserialize_u8, visit_u8, "a u8"),
    u16 => (deserialize_u16, visit_u16, "a u16"),
    u32 => (deserialize_u32, visit_u32, "a u32"),
    u64 => (deserialize_u64, visit_u64, "a u64"),
    f32 => (deserialize_f32, visit_f32, "an f32"),
    f64 => (deserialize_f64, visit_f64, "an f64"),
    char => (deserialize_char, visit_char, "a char"),
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = u64::deserialize(deserializer)?;
        usize::try_from(v).map_err(|_| D::Error::custom("usize overflow"))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de2> Visitor<'de2> for StringVisitor {
            type Value = String;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }

            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }

            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de2> Visitor<'de2> for UnitVisitor {
            type Value = ();

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }

            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de2, T2: Deserialize<'de2>> Visitor<'de2> for OptionVisitor<T2> {
            type Value = Option<T2>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }

            fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }

            fn visit_some<D2: Deserializer<'de2>>(
                self,
                deserializer: D2,
            ) -> Result<Self::Value, D2::Error> {
                T2::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de2, T2: Deserialize<'de2>> Visitor<'de2> for VecVisitor<T2> {
            type Value = Vec<T2>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }

            fn visit_seq<A: SeqAccess<'de2>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de2, K2, V2> Visitor<'de2> for MapVisitor<K2, V2>
        where
            K2: Deserialize<'de2> + Ord,
            V2: Deserialize<'de2>,
        {
            type Value = std::collections::BTreeMap<K2, V2>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }

            fn visit_map<A: MapAccess<'de2>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some(key) = map.next_key()? {
                    let value = map.next_value()?;
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

macro_rules! tuple_deserialize {
    ($(($($name:ident),+) => $len:expr;)*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct TupleVisitor<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de2, $($name: Deserialize<'de2>),+> Visitor<'de2> for TupleVisitor<$($name),+> {
                    type Value = ($($name,)+);

                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, "a tuple of arity {}", $len)
                    }

                    #[allow(non_snake_case)]
                    fn visit_seq<ACC: SeqAccess<'de2>>(
                        self,
                        mut seq: ACC,
                    ) -> Result<Self::Value, ACC::Error> {
                        $(
                            let $name = seq
                                .next_element()?
                                .ok_or_else(|| ACC::Error::custom("tuple too short"))?;
                        )+
                        Ok(($($name,)+))
                    }
                }
                deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
            }
        }
    )*};
}

tuple_deserialize! {
    (T0) => 1;
    (T0, T1) => 2;
    (T0, T1, T2) => 3;
    (T0, T1, T2, T3) => 4;
    (T0, T1, T2, T3, T4) => 5;
    (T0, T1, T2, T3, T4, T5) => 6;
}
