//! A minimal, API-compatible stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of serde's data model it actually uses:
//! the `Serialize`/`Deserialize` traits, the `Serializer`/`Deserializer`
//! trait pairs with their compound-access companions, and derive macros
//! for plain structs and enums (via the sibling `serde_derive` shim).
//!
//! The netpipe wire codec (`netpipe::wire`) implements these traits from
//! scratch, exactly as it would against real serde; swapping the real
//! crate back in requires no source changes in the workspace.

pub mod de;
pub mod ser;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

// Derive macros share the trait names (macro namespace vs type
// namespace), mirroring serde's `derive` feature.
pub use serde_derive::{Deserialize, Serialize};
