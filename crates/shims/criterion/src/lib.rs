//! A minimal, API-compatible stand-in for the `criterion` benchmark
//! harness (the build environment has no network access to crates.io).
//!
//! It supports the subset this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`/`iter_custom`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! fixed-sample timing loop instead of criterion's statistics engine.
//!
//! Under `cargo test` (cargo passes `--test` to `harness = false` bench
//! targets) each benchmark body runs once, as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives one benchmark body and records its timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Hands the iteration count to `f`, which returns the measured time.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        self.elapsed = f(self.iters);
    }
}

/// The top-level harness handle.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes `harness = false` bench targets with `--test`
        // under `cargo test`; run each body once in that mode.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function(
        &mut self,
        name: &str,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        run_bench(name, self.test_mode, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Registers and runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&full, self.criterion.test_mode, samples, &mut f);
        self
    }

    /// Registers and runs one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&full, self.criterion.test_mode, samples, &mut |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench(name: &str, test_mode: bool, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {name} ... ok (bench smoke)");
        return;
    }
    // Warm-up call, then a fixed number of timed samples.
    let mut warm = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let samples = samples.max(1);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed / u32::try_from(b.iters.max(1)).unwrap_or(1);
        best = best.min(per_iter);
        total += per_iter;
    }
    let mean = total / u32::try_from(samples).unwrap_or(1);
    println!("bench {name:<48} mean {mean:>12.3?}  best {best:>12.3?}  ({samples} samples)");
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
