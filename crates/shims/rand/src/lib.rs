//! A minimal, API-compatible stand-in for the `rand` crate (the build
//! environment has no network access to crates.io). Provides the slice
//! the workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::random_range` over integer and float ranges.
//!
//! The generator is xorshift64* seeded through splitmix64 — statistically
//! fine for jitter models and tests, deterministic per seed, and *not*
//! cryptographic.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly random `bool`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        sample_unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator (xorshift64* here; the real crate uses
    /// ChaCha12 — only determinism-per-seed matters to this workspace).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 step avoids weak low-entropy seeds (incl. 0).
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            StdRng {
                state: z | 1, // xorshift state must be nonzero
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

fn sample_unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Ranges a value can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u128) - (start as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                ((start as u128) + v) as $ty
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($ty:ty => $uty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $ty
            }
        }
    )*};
}

signed_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + sample_unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + sample_unit_f64(rng.next_u64()) * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        (f64::from(self.start)..f64::from(self.end)).sample(rng) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let sa: Vec<u64> = (0..8).map(|_| a.random_range(0..=u64::MAX)).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.random_range(0..=u64::MAX)).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.random_range(0..=u64::MAX)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.random_range(0.75..=1.25);
            assert!((0.75..=1.25).contains(&f));
            let i: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }
}
