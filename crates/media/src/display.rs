//! The display sink and the resizer of the paper's examples.

use crate::frame::RawFrame;
use crate::stats::TimingStats;
use infopipes::{Consumer, ControlEvent, EventCtx, Function, Item, ItemType, Stage, StageCtx};
use parking_lot::Mutex;
use std::sync::Arc;
use typespec::Typespec;

/// Statistics collected by a [`DisplaySink`].
#[derive(Clone, Debug, Default)]
pub struct DisplayStats {
    /// Arrival timing (presentation jitter).
    pub timing: TimingStats,
    /// Sequence numbers presented, in order.
    pub presented: Vec<u64>,
    /// Frames whose checksum did not match their payload (pipeline bug).
    pub corrupt: u64,
}

impl DisplayStats {
    /// Frames presented.
    #[must_use]
    pub fn count(&self) -> usize {
        self.presented.len()
    }
}

/// A passive video display: records when each frame is presented, for the
/// jitter experiments (Fig. 1's motivation for the jitter buffer).
pub struct DisplaySink {
    stats: Arc<Mutex<DisplayStats>>,
}

impl DisplaySink {
    /// Creates the display and a shared handle on its statistics.
    #[must_use]
    pub fn new() -> (DisplaySink, Arc<Mutex<DisplayStats>>) {
        let stats = Arc::new(Mutex::new(DisplayStats::default()));
        (
            DisplaySink {
                stats: Arc::clone(&stats),
            },
            stats,
        )
    }
}

impl Stage for DisplaySink {
    fn name(&self) -> &str {
        "video-display"
    }

    fn accepts(&self) -> Typespec {
        Typespec::with_item_type(ItemType::of::<RawFrame>()).offering_event("window-resize")
    }
}

impl Consumer for DisplaySink {
    fn push(&mut self, ctx: &mut StageCtx<'_, '_>, item: Item) {
        let frame = item.expect::<RawFrame>();
        let mut stats = self.stats.lock();
        stats.timing.record(ctx.now().as_micros());
        stats.presented.push(frame.seq);
    }
}

/// The paper's resizing component (§2.2): scales frames to the current
/// window size, which it learns from `WindowResize` control events sent
/// by the display.
pub struct Resizer {
    width: u32,
    height: u32,
    /// Resize events handled (observable for the control-event tests).
    resizes: Arc<Mutex<u32>>,
}

impl Resizer {
    /// Creates a resizer with an initial target size and a counter handle
    /// for observed resize events.
    #[must_use]
    pub fn new(width: u32, height: u32) -> (Resizer, Arc<Mutex<u32>>) {
        let resizes = Arc::new(Mutex::new(0));
        (
            Resizer {
                width,
                height,
                resizes: Arc::clone(&resizes),
            },
            resizes,
        )
    }
}

impl Stage for Resizer {
    fn name(&self) -> &str {
        "resizer"
    }

    fn accepts(&self) -> Typespec {
        // The resizer *requires* its peers to deliver window-resize events
        // (§2.3's event-capability checking).
        Typespec::with_item_type(ItemType::of::<RawFrame>()).requiring_event("window-resize")
    }

    fn on_event(&mut self, _ctx: &mut EventCtx<'_, '_>, event: &ControlEvent) {
        if let ControlEvent::WindowResize { width, height } = event {
            self.width = *width;
            self.height = *height;
            *self.resizes.lock() += 1;
        }
    }
}

impl Function for Resizer {
    fn convert(&mut self, mut item: Item) -> Option<Item> {
        if let Some(frame) = item.payload_mut::<RawFrame>() {
            frame.width = self.width;
            frame.height = self.height;
        }
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resizer_applies_current_window_size() {
        let (mut r, resizes) = Resizer::new(320, 200);
        let item = Item::cloneable(RawFrame {
            seq: 0,
            pts_us: 0,
            width: 640,
            height: 480,
            checksum: 0,
        });
        let out = r.convert(item).unwrap();
        let f = out.expect::<RawFrame>();
        assert_eq!((f.width, f.height), (320, 200));
        assert_eq!(*resizes.lock(), 0);
    }

    #[test]
    fn resizer_spec_requires_the_resize_event() {
        let (r, _) = Resizer::new(1, 1);
        let needs = r.accepts();
        assert!(needs.events_required().any(|e| e == "window-resize"));
        // The display offers it.
        let (d, _) = DisplaySink::new();
        assert!(d.accepts().events_offered().any(|e| e == "window-resize"));
    }
}
