//! Group-of-pictures structure: which frames are I, P, or B, and who
//! depends on whom.

use crate::frame::FrameType;
use serde::{Deserialize, Serialize};

/// Describes the repeating frame pattern of the synthetic stream.
///
/// A GOP of `gop_size` frames starts with an I frame; every
/// `b_run + 1`-th following frame is a P frame with `b_run` B frames in
/// between: `gop_size = 9, b_run = 2` gives the classic `I B B P B B P B B`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GopStructure {
    /// Frames per group of pictures (≥ 1).
    pub gop_size: u64,
    /// Consecutive B frames between references.
    pub b_run: u64,
}

impl GopStructure {
    /// The classic `I B B P B B P B B` pattern.
    #[must_use]
    pub fn ibbp() -> GopStructure {
        GopStructure {
            gop_size: 9,
            b_run: 2,
        }
    }

    /// An intra-only stream (every frame decodable alone).
    #[must_use]
    pub fn intra_only() -> GopStructure {
        GopStructure {
            gop_size: 1,
            b_run: 0,
        }
    }

    /// A custom structure.
    ///
    /// # Panics
    ///
    /// Panics if `gop_size` is zero.
    #[must_use]
    pub fn new(gop_size: u64, b_run: u64) -> GopStructure {
        assert!(gop_size >= 1, "GOP size must be at least 1");
        GopStructure { gop_size, b_run }
    }

    /// The frame type at stream position `seq`.
    #[must_use]
    pub fn frame_type(&self, seq: u64) -> FrameType {
        let pos = seq % self.gop_size;
        if pos == 0 {
            FrameType::I
        } else if self.b_run == 0 || pos.is_multiple_of(self.b_run + 1) {
            FrameType::P
        } else {
            FrameType::B
        }
    }

    /// The reference frame `seq` depends on, if any: B and P frames need
    /// the nearest preceding reference (I or P) in the same GOP.
    #[must_use]
    pub fn dependency(&self, seq: u64) -> Option<u64> {
        if self.frame_type(seq) == FrameType::I {
            return None;
        }
        let gop_start = seq - (seq % self.gop_size);
        (gop_start..seq)
            .rev()
            .find(|&s| self.frame_type(s).is_reference())
    }

    /// The full transitive set of frames `seq` needs (excluding itself),
    /// nearest first.
    #[must_use]
    pub fn dependency_closure(&self, seq: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = seq;
        while let Some(dep) = self.dependency(cur) {
            out.push(dep);
            cur = dep;
        }
        out
    }

    /// Whether `seq` is decodable given the set of frames actually
    /// available (delivered *and* decodable themselves).
    #[must_use]
    pub fn decodable(&self, seq: u64, decoded: &dyn Fn(u64) -> bool) -> bool {
        match self.dependency(seq) {
            None => true,
            Some(dep) => decoded(dep),
        }
    }
}

impl Default for GopStructure {
    fn default() -> Self {
        GopStructure::ibbp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ibbp_pattern_matches_the_classic_layout() {
        let g = GopStructure::ibbp();
        let types: String = (0..9).map(|s| g.frame_type(s).to_string()).collect();
        assert_eq!(types, "IBBPBBPBB");
        // The next GOP starts over.
        assert_eq!(g.frame_type(9), FrameType::I);
    }

    #[test]
    fn intra_only_never_depends() {
        let g = GopStructure::intra_only();
        for s in 0..20 {
            assert_eq!(g.frame_type(s), FrameType::I);
            assert_eq!(g.dependency(s), None);
        }
    }

    #[test]
    fn dependencies_point_at_nearest_reference() {
        let g = GopStructure::ibbp(); // I B B P B B P B B
        assert_eq!(g.dependency(0), None); // I
        assert_eq!(g.dependency(1), Some(0)); // B -> I
        assert_eq!(g.dependency(2), Some(0)); // B -> I
        assert_eq!(g.dependency(3), Some(0)); // P -> I
        assert_eq!(g.dependency(4), Some(3)); // B -> P
        assert_eq!(g.dependency(6), Some(3)); // P -> P
        assert_eq!(g.dependency(8), Some(6)); // B -> P
                                              // Nothing crosses a GOP boundary.
        assert_eq!(g.dependency(9), None);
        assert_eq!(g.dependency(10), Some(9));
    }

    #[test]
    fn dependency_closure_chains_to_the_i_frame() {
        let g = GopStructure::ibbp();
        assert_eq!(g.dependency_closure(8), vec![6, 3, 0]);
        assert_eq!(g.dependency_closure(0), Vec::<u64>::new());
    }

    #[test]
    fn decodable_respects_missing_references() {
        let g = GopStructure::ibbp();
        // Frame 6 (P) depends on 3 (P): if 3 is gone, 6 is not decodable.
        assert!(!g.decodable(6, &|s| s != 3));
        assert!(g.decodable(6, &|_| true));
        assert!(g.decodable(0, &|_| false));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_gop_size_is_rejected() {
        let _ = GopStructure::new(0, 0);
    }
}
