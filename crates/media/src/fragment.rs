//! Fragmentation to MTU-sized packets and reassembly, with loss
//! tolerance: a frame missing any packet is discarded whole.

use crate::frame::{CompressedFrame, FrameType};
use infopipes::{Consumer, Item, ItemType, Stage, StageCtx};
use serde::{Deserialize, Serialize};
use typespec::{TypeError, Typespec};

/// One network packet of a fragmented frame.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// The frame this packet belongs to.
    pub frame_seq: u64,
    /// Packet index within the frame (0-based).
    pub index: u32,
    /// Total packets in the frame.
    pub count: u32,
    /// The frame's type (so in-network policies could prioritize too).
    pub ftype: FrameType,
    /// Presentation timestamp of the frame.
    pub pts_us: u64,
    /// This packet's slice of the payload.
    pub bytes: Vec<u8>,
}

/// Splits compressed frames into packets of at most `mtu` payload bytes
/// (push style — the natural direction for a fragmenter, §3.3).
pub struct Fragmenter {
    mtu: usize,
}

impl Fragmenter {
    /// Creates a fragmenter with the given MTU.
    ///
    /// # Panics
    ///
    /// Panics if `mtu` is zero.
    #[must_use]
    pub fn new(mtu: usize) -> Fragmenter {
        assert!(mtu > 0, "MTU must be positive");
        Fragmenter { mtu }
    }
}

impl Stage for Fragmenter {
    fn name(&self) -> &str {
        "fragmenter"
    }

    fn accepts(&self) -> Typespec {
        Typespec::with_item_type(ItemType::of::<CompressedFrame>())
    }

    fn transform_spec(&self, input: &Typespec) -> Result<Typespec, TypeError> {
        Ok(input.clone().map_item(ItemType::of::<Packet>()))
    }
}

impl Consumer for Fragmenter {
    fn push(&mut self, ctx: &mut StageCtx<'_, '_>, item: Item) {
        let meta = item.meta;
        let frame = item.expect::<CompressedFrame>();
        let chunks: Vec<&[u8]> = if frame.data.is_empty() {
            vec![&[][..]]
        } else {
            frame.data.chunks(self.mtu).collect()
        };
        let count = u32::try_from(chunks.len()).unwrap_or(u32::MAX);
        for (i, chunk) in chunks.into_iter().enumerate() {
            let pkt = Packet {
                frame_seq: frame.seq,
                index: u32::try_from(i).unwrap_or(u32::MAX),
                count,
                ftype: frame.ftype,
                pts_us: frame.pts_us,
                bytes: chunk.to_vec(),
            };
            let mut out = Item::cloneable(pkt);
            out.meta = meta;
            ctx.put(out);
        }
    }
}

/// Reassembles packets into frames (push style). A frame with missing or
/// out-of-order-lost packets is discarded when the next frame begins.
pub struct Defragmenter {
    current: Option<PartialFrame>,
    /// Frames discarded because packets were lost.
    pub incomplete_dropped: u64,
}

struct PartialFrame {
    frame_seq: u64,
    count: u32,
    ftype: FrameType,
    pts_us: u64,
    got: u32,
    bytes: Vec<u8>,
}

impl Defragmenter {
    /// Creates an empty reassembler.
    #[must_use]
    pub fn new() -> Defragmenter {
        Defragmenter {
            current: None,
            incomplete_dropped: 0,
        }
    }

    fn flush_incomplete(&mut self) {
        if self.current.take().is_some() {
            self.incomplete_dropped += 1;
        }
    }
}

impl Default for Defragmenter {
    fn default() -> Self {
        Defragmenter::new()
    }
}

impl Stage for Defragmenter {
    fn name(&self) -> &str {
        "defragmenter"
    }

    fn accepts(&self) -> Typespec {
        Typespec::with_item_type(ItemType::of::<Packet>())
    }

    fn transform_spec(&self, input: &Typespec) -> Result<Typespec, TypeError> {
        Ok(input.clone().map_item(ItemType::of::<CompressedFrame>()))
    }
}

impl Consumer for Defragmenter {
    fn push(&mut self, ctx: &mut StageCtx<'_, '_>, item: Item) {
        let meta = item.meta;
        let pkt = item.expect::<Packet>();

        // A new frame begins: anything unfinished is lost.
        let switch = self
            .current
            .as_ref()
            .is_none_or(|p| p.frame_seq != pkt.frame_seq);
        if switch {
            self.flush_incomplete();
            if pkt.index != 0 {
                // Mid-frame join (head packets lost): unusable.
                self.incomplete_dropped += 1;
                return;
            }
            self.current = Some(PartialFrame {
                frame_seq: pkt.frame_seq,
                count: pkt.count,
                ftype: pkt.ftype,
                pts_us: pkt.pts_us,
                got: 0,
                bytes: Vec::new(),
            });
        }
        let Some(cur) = self.current.as_mut() else {
            return;
        };
        if pkt.index != cur.got {
            // A gap inside the frame: discard it.
            self.flush_incomplete();
            return;
        }
        cur.bytes.extend_from_slice(&pkt.bytes);
        cur.got += 1;
        if cur.got == cur.count {
            let done = self.current.take().expect("current frame exists");
            let frame = CompressedFrame {
                seq: done.frame_seq,
                pts_us: done.pts_us,
                ftype: done.ftype,
                data: done.bytes,
            };
            let mut out = Item::cloneable(frame);
            out.meta = meta;
            ctx.put(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::synth_payload;
    use infopipes::helpers::{CollectSink, IterSource};
    use infopipes::{FreePump, Pipeline};
    use mbthread::{Kernel, KernelConfig};

    fn frame(seq: u64, size: usize) -> CompressedFrame {
        CompressedFrame {
            seq,
            pts_us: seq * 1000,
            ftype: crate::GopStructure::ibbp().frame_type(seq),
            data: synth_payload(seq, size),
        }
    }

    fn run_frag_defrag(
        frames: Vec<CompressedFrame>,
        mtu: usize,
        lose: impl Fn(&Packet) -> bool + Clone + Send + 'static,
    ) -> Vec<CompressedFrame> {
        let kernel = Kernel::new(KernelConfig::virtual_time());
        let out_frames = {
            let pipeline = Pipeline::new(&kernel, "frag");
            let src = pipeline.add_producer("src", IterSource::new("src", frames));
            let pump = pipeline.add_pump("pump", FreePump::new());
            let frag = pipeline.add_consumer("frag", Fragmenter::new(mtu));
            let lossy =
                pipeline.add_function(
                    "lossy",
                    infopipes::helpers::FnFunction::new("lossy", move |p: Packet| {
                        if lose(&p) {
                            None
                        } else {
                            Some(p)
                        }
                    }),
                );
            let defrag = pipeline.add_consumer("defrag", Defragmenter::new());
            let (sink, out) = CollectSink::<CompressedFrame>::new("sink");
            let sink = pipeline.add_consumer("sink", sink);
            let _ = src >> pump >> frag >> lossy >> defrag >> sink;
            let running = pipeline.start().unwrap();
            running.start_flow().unwrap();
            running.wait_quiescent();
            let v = out.lock().clone();
            v
        };
        kernel.shutdown();
        out_frames
    }

    #[test]
    fn lossless_fragmentation_round_trips() {
        let frames: Vec<CompressedFrame> = (0..6).map(|s| frame(s, 100)).collect();
        let got = run_frag_defrag(frames.clone(), 32, |_| false);
        assert_eq!(got, frames);
    }

    #[test]
    fn mtu_larger_than_frame_is_one_packet() {
        let frames = vec![frame(0, 10)];
        let got = run_frag_defrag(frames.clone(), 1000, |_| false);
        assert_eq!(got, frames);
    }

    #[test]
    fn losing_one_packet_discards_only_that_frame() {
        let frames: Vec<CompressedFrame> = (0..4).map(|s| frame(s, 100)).collect();
        // Lose packet 1 of frame 2.
        let got = run_frag_defrag(frames.clone(), 32, |p| p.frame_seq == 2 && p.index == 1);
        let seqs: Vec<u64> = got.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 1, 3]);
        // The surviving frames are byte-identical.
        assert_eq!(got[0], frames[0]);
        assert_eq!(got[2], frames[3]);
    }

    #[test]
    fn losing_head_packet_discards_the_frame() {
        let frames: Vec<CompressedFrame> = (0..3).map(|s| frame(s, 100)).collect();
        let got = run_frag_defrag(frames, 32, |p| p.frame_seq == 1 && p.index == 0);
        let seqs: Vec<u64> = got.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 2]);
    }

    #[test]
    fn empty_frames_survive_fragmentation() {
        let frames = vec![CompressedFrame {
            seq: 0,
            pts_us: 0,
            ftype: crate::FrameType::I,
            data: Vec::new(),
        }];
        let got = run_frag_defrag(frames.clone(), 16, |_| false);
        assert_eq!(got, frames);
    }
}
