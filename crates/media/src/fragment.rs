//! Fragmentation to MTU-sized packets and reassembly, with loss
//! tolerance: a frame missing any packet is discarded whole.
//!
//! Fragmentation is **zero-copy**: each [`Packet`] carries a
//! [`PayloadBytes`] view into the parent frame's allocation
//! ([`PayloadBytes::slice`]), so fragmenting a 100 KiB frame into MTU
//! packets allocates packet headers only — never the payload.

use crate::frame::{CompressedFrame, FrameType};
use infopipes::{Consumer, Item, ItemType, PayloadBytes, Stage, StageCtx};
use serde::{Deserialize, Serialize};
use typespec::{TypeError, Typespec};

/// One network packet of a fragmented frame.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// The frame this packet belongs to.
    pub frame_seq: u64,
    /// Packet index within the frame (0-based).
    pub index: u32,
    /// Total packets in the frame.
    pub count: u32,
    /// The frame's type (so in-network policies could prioritize too).
    pub ftype: FrameType,
    /// Presentation timestamp of the frame.
    pub pts_us: u64,
    /// This packet's slice of the payload — a shared view of the parent
    /// frame's buffer, not a copy.
    pub bytes: PayloadBytes,
}

/// Splits compressed frames into packets of at most `mtu` payload bytes
/// (push style — the natural direction for a fragmenter, §3.3).
pub struct Fragmenter {
    mtu: usize,
}

impl Fragmenter {
    /// Creates a fragmenter with the given MTU.
    ///
    /// # Panics
    ///
    /// Panics if `mtu` is zero.
    #[must_use]
    pub fn new(mtu: usize) -> Fragmenter {
        assert!(mtu > 0, "MTU must be positive");
        Fragmenter { mtu }
    }
}

impl Stage for Fragmenter {
    fn name(&self) -> &str {
        "fragmenter"
    }

    fn accepts(&self) -> Typespec {
        Typespec::with_item_type(ItemType::of::<CompressedFrame>())
    }

    fn transform_spec(&self, input: &Typespec) -> Result<Typespec, TypeError> {
        Ok(input.clone().map_item(ItemType::of::<Packet>()))
    }
}

impl Consumer for Fragmenter {
    fn push(&mut self, ctx: &mut StageCtx<'_, '_>, item: Item) {
        let meta = item.meta;
        let frame = item.expect::<CompressedFrame>();
        // `chunks_shared` views share the frame's allocation: the
        // fragmenter emits N packets and zero payload copies.
        let chunks: Vec<PayloadBytes> = frame.data.chunks_shared(self.mtu).collect();
        let count = u32::try_from(chunks.len()).unwrap_or(u32::MAX);
        for (i, chunk) in chunks.into_iter().enumerate() {
            let pkt = Packet {
                frame_seq: frame.seq,
                index: u32::try_from(i).unwrap_or(u32::MAX),
                count,
                ftype: frame.ftype,
                pts_us: frame.pts_us,
                bytes: chunk,
            };
            let mut out = Item::cloneable(pkt);
            out.meta = meta;
            ctx.put(out);
        }
    }
}

/// Reassembles packets into frames (push style). A frame with missing or
/// out-of-order-lost packets is discarded when the next frame begins.
pub struct Defragmenter {
    current: Option<PartialFrame>,
    /// Frames discarded because packets were lost.
    pub incomplete_dropped: u64,
}

struct PartialFrame {
    frame_seq: u64,
    count: u32,
    ftype: FrameType,
    pts_us: u64,
    got: u32,
    /// Received fragments, in order (shared views, not copies).
    parts: Vec<PayloadBytes>,
}

impl PartialFrame {
    /// Joins the fragments into one payload. A single-fragment frame is
    /// returned as the fragment's own view (no copy); multi-fragment
    /// frames are concatenated into one fresh buffer — the single
    /// reassembly copy a scatter of packets fundamentally needs.
    fn assemble(self) -> PayloadBytes {
        if let [only] = &self.parts[..] {
            return only.clone();
        }
        let total: usize = self.parts.iter().map(PayloadBytes::len).sum();
        let mut out = Vec::with_capacity(total);
        for p in &self.parts {
            out.extend_from_slice(p);
        }
        PayloadBytes::from_vec(out)
    }
}

impl Defragmenter {
    /// Creates an empty reassembler.
    #[must_use]
    pub fn new() -> Defragmenter {
        Defragmenter {
            current: None,
            incomplete_dropped: 0,
        }
    }

    fn flush_incomplete(&mut self) {
        if self.current.take().is_some() {
            self.incomplete_dropped += 1;
        }
    }
}

impl Default for Defragmenter {
    fn default() -> Self {
        Defragmenter::new()
    }
}

impl Stage for Defragmenter {
    fn name(&self) -> &str {
        "defragmenter"
    }

    fn accepts(&self) -> Typespec {
        Typespec::with_item_type(ItemType::of::<Packet>())
    }

    fn transform_spec(&self, input: &Typespec) -> Result<Typespec, TypeError> {
        Ok(input.clone().map_item(ItemType::of::<CompressedFrame>()))
    }
}

impl Consumer for Defragmenter {
    fn push(&mut self, ctx: &mut StageCtx<'_, '_>, item: Item) {
        let meta = item.meta;
        let pkt = item.expect::<Packet>();

        // A new frame begins: anything unfinished is lost.
        let switch = self
            .current
            .as_ref()
            .is_none_or(|p| p.frame_seq != pkt.frame_seq);
        if switch {
            self.flush_incomplete();
            if pkt.index != 0 {
                // Mid-frame join (head packets lost): unusable.
                self.incomplete_dropped += 1;
                return;
            }
            self.current = Some(PartialFrame {
                frame_seq: pkt.frame_seq,
                count: pkt.count,
                ftype: pkt.ftype,
                pts_us: pkt.pts_us,
                got: 0,
                parts: Vec::new(),
            });
        }
        let Some(cur) = self.current.as_mut() else {
            return;
        };
        if pkt.index != cur.got {
            // A gap inside the frame: discard it.
            self.flush_incomplete();
            return;
        }
        cur.parts.push(pkt.bytes);
        cur.got += 1;
        if cur.got == cur.count {
            let done = self.current.take().expect("current frame exists");
            let frame = CompressedFrame {
                seq: done.frame_seq,
                pts_us: done.pts_us,
                ftype: done.ftype,
                data: done.assemble(),
            };
            let mut out = Item::cloneable(frame);
            out.meta = meta;
            ctx.put(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::synth_payload;
    use infopipes::helpers::{CollectSink, IterSource};
    use infopipes::{FreePump, Pipeline};
    use mbthread::{Kernel, KernelConfig};

    fn frame(seq: u64, size: usize) -> CompressedFrame {
        CompressedFrame {
            seq,
            pts_us: seq * 1000,
            ftype: crate::GopStructure::ibbp().frame_type(seq),
            data: synth_payload(seq, size),
        }
    }

    fn run_frag_defrag(
        frames: Vec<CompressedFrame>,
        mtu: usize,
        lose: impl Fn(&Packet) -> bool + Clone + Send + 'static,
    ) -> Vec<CompressedFrame> {
        let kernel = Kernel::new(KernelConfig::virtual_time());
        let out_frames = {
            let pipeline = Pipeline::new(&kernel, "frag");
            let src = pipeline.add_producer("src", IterSource::new("src", frames));
            let pump = pipeline.add_pump("pump", FreePump::new());
            let frag = pipeline.add_consumer("frag", Fragmenter::new(mtu));
            let lossy =
                pipeline.add_function(
                    "lossy",
                    infopipes::helpers::FnFunction::new("lossy", move |p: Packet| {
                        if lose(&p) {
                            None
                        } else {
                            Some(p)
                        }
                    }),
                );
            let defrag = pipeline.add_consumer("defrag", Defragmenter::new());
            let (sink, out) = CollectSink::<CompressedFrame>::new("sink");
            let sink = pipeline.add_consumer("sink", sink);
            let _ = src >> pump >> frag >> lossy >> defrag >> sink;
            let running = pipeline.start().unwrap();
            running.start_flow().unwrap();
            running.wait_quiescent();
            let v = out.lock().clone();
            v
        };
        kernel.shutdown();
        out_frames
    }

    #[test]
    fn lossless_fragmentation_round_trips() {
        let frames: Vec<CompressedFrame> = (0..6).map(|s| frame(s, 100)).collect();
        let got = run_frag_defrag(frames.clone(), 32, |_| false);
        assert_eq!(got, frames);
    }

    #[test]
    fn mtu_larger_than_frame_is_one_packet() {
        let frames = vec![frame(0, 10)];
        let got = run_frag_defrag(frames.clone(), 1000, |_| false);
        assert_eq!(got, frames);
    }

    #[test]
    fn losing_one_packet_discards_only_that_frame() {
        let frames: Vec<CompressedFrame> = (0..4).map(|s| frame(s, 100)).collect();
        // Lose packet 1 of frame 2.
        let got = run_frag_defrag(frames.clone(), 32, |p| p.frame_seq == 2 && p.index == 1);
        let seqs: Vec<u64> = got.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 1, 3]);
        // The surviving frames are byte-identical.
        assert_eq!(got[0], frames[0]);
        assert_eq!(got[2], frames[3]);
    }

    #[test]
    fn losing_head_packet_discards_the_frame() {
        let frames: Vec<CompressedFrame> = (0..3).map(|s| frame(s, 100)).collect();
        let got = run_frag_defrag(frames, 32, |p| p.frame_seq == 1 && p.index == 0);
        let seqs: Vec<u64> = got.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 2]);
    }

    #[test]
    fn empty_frames_survive_fragmentation() {
        let frames = vec![CompressedFrame {
            seq: 0,
            pts_us: 0,
            ftype: crate::FrameType::I,
            data: infopipes::PayloadBytes::new(),
        }];
        let got = run_frag_defrag(frames.clone(), 16, |_| false);
        assert_eq!(got, frames);
    }

    #[test]
    fn fragments_share_the_parent_frame_allocation() {
        // Drive the fragmenter directly and check aliasing: every packet
        // must view the frame's buffer, at the right offset.
        let f = frame(1, 100);
        let parent = f.data.clone();
        let kernel = Kernel::new(KernelConfig::virtual_time());
        let packets = {
            let pipeline = Pipeline::new(&kernel, "frag-alias");
            let src = pipeline.add_producer("src", IterSource::new("src", vec![f]));
            let pump = pipeline.add_pump("pump", FreePump::new());
            let frag = pipeline.add_consumer("frag", Fragmenter::new(32));
            let (sink, out) = CollectSink::<Packet>::new("sink");
            let sink = pipeline.add_consumer("sink", sink);
            let _ = src >> pump >> frag >> sink;
            let running = pipeline.start().unwrap();
            running.start_flow().unwrap();
            running.wait_quiescent();
            let v = out.lock().clone();
            v
        };
        kernel.shutdown();
        assert_eq!(packets.len(), 4, "100 B at MTU 32 -> 4 packets");
        let mut offset = 0;
        for pkt in &packets {
            assert!(
                pkt.bytes.shares_allocation_with(&parent),
                "packet {} must alias the parent frame",
                pkt.index
            );
            assert_eq!(pkt.bytes.as_ptr(), unsafe { parent.as_ptr().add(offset) });
            offset += pkt.bytes.len();
        }
        assert_eq!(offset, 100);
    }

    #[test]
    fn single_packet_frames_reassemble_without_copying() {
        let frames = vec![frame(0, 10)];
        let parent = frames[0].data.clone();
        let got = run_frag_defrag(frames, 1000, |_| false);
        assert_eq!(got.len(), 1);
        assert_eq!(
            got[0].data.as_ptr(),
            parent.as_ptr(),
            "one-packet frames must come back as the same allocation"
        );
    }
}
