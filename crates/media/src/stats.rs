//! Timing statistics shared by the measuring sinks.

use std::fmt;

/// Accumulates arrival timestamps and computes rate/jitter summaries.
#[derive(Clone, Debug, Default)]
pub struct TimingStats {
    arrivals_us: Vec<u64>,
}

impl TimingStats {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> TimingStats {
        TimingStats::default()
    }

    /// Records one arrival at the given kernel time (microseconds).
    pub fn record(&mut self, at_us: u64) {
        self.arrivals_us.push(at_us);
    }

    /// Number of recorded arrivals.
    #[must_use]
    pub fn count(&self) -> usize {
        self.arrivals_us.len()
    }

    /// All recorded arrival times (microseconds).
    #[must_use]
    pub fn arrivals_us(&self) -> &[u64] {
        &self.arrivals_us
    }

    /// Inter-arrival intervals in microseconds.
    #[must_use]
    pub fn intervals_us(&self) -> Vec<u64> {
        self.arrivals_us.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Mean inter-arrival interval (microseconds); `None` with fewer than
    /// two arrivals.
    #[must_use]
    pub fn mean_interval_us(&self) -> Option<f64> {
        let iv = self.intervals_us();
        if iv.is_empty() {
            return None;
        }
        Some(iv.iter().sum::<u64>() as f64 / iv.len() as f64)
    }

    /// Jitter: the mean absolute deviation of inter-arrival intervals from
    /// their mean, in microseconds (the paper's buffers exist to "remove
    /// rate fluctuations" — this is the number they reduce).
    #[must_use]
    pub fn jitter_us(&self) -> Option<f64> {
        let iv = self.intervals_us();
        let mean = self.mean_interval_us()?;
        Some(iv.iter().map(|&d| (d as f64 - mean).abs()).sum::<f64>() / iv.len() as f64)
    }

    /// The largest single inter-arrival interval (microseconds).
    #[must_use]
    pub fn max_interval_us(&self) -> Option<u64> {
        self.intervals_us().into_iter().max()
    }
}

impl fmt::Display for TimingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.mean_interval_us(), self.jitter_us()) {
            (Some(mean), Some(jit)) => write!(
                f,
                "{} arrivals, mean interval {:.1} us, jitter {:.1} us",
                self.count(),
                mean,
                jit
            ),
            _ => write!(f, "{} arrivals", self.count()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_paced_arrivals_have_zero_jitter() {
        let mut t = TimingStats::new();
        for i in 0..10u64 {
            t.record(i * 1000);
        }
        assert_eq!(t.count(), 10);
        assert_eq!(t.mean_interval_us(), Some(1000.0));
        assert_eq!(t.jitter_us(), Some(0.0));
        assert_eq!(t.max_interval_us(), Some(1000));
    }

    #[test]
    fn bursty_arrivals_show_jitter() {
        let mut t = TimingStats::new();
        for at in [0u64, 100, 1900, 2000, 3900] {
            t.record(at);
        }
        let j = t.jitter_us().unwrap();
        assert!(j > 500.0, "jitter {j}");
        assert_eq!(t.max_interval_us(), Some(1900));
    }

    #[test]
    fn degenerate_cases_are_none() {
        let mut t = TimingStats::new();
        assert_eq!(t.mean_interval_us(), None);
        assert_eq!(t.jitter_us(), None);
        t.record(5);
        assert_eq!(t.jitter_us(), None);
        assert!(!t.to_string().is_empty());
    }
}
