//! The feedback-controlled drop filter of Fig. 1: "the filter drops when
//! the network is congested... This lets us control which data is dropped
//! rather than incurring arbitrary dropping in the network."

use crate::frame::CompressedFrame;
use infopipes::{ControlEvent, EventCtx, Function, Item, ItemType, Stage};
use parking_lot::Mutex;
use std::sync::Arc;
use typespec::Typespec;

/// Counters kept by a [`PriorityDropFilter`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DropFilterStats {
    /// Frames passed through.
    pub passed: u64,
    /// Frames dropped, by the filter's own choice.
    pub dropped: u64,
    /// The current drop level.
    pub level: u8,
}

/// A function-style filter that discards frames *least-important-first*:
/// level 0 passes everything, level 1 drops B frames, level 2 drops B and
/// P, level 3 drops everything. The level is set at runtime by
/// [`ControlEvent::SetDropLevel`] — typically from a feedback controller
/// watching the consumer side.
pub struct PriorityDropFilter {
    stats: Arc<Mutex<DropFilterStats>>,
}

impl PriorityDropFilter {
    /// Creates the filter (level 0) and a handle on its statistics.
    #[must_use]
    pub fn new() -> (PriorityDropFilter, Arc<Mutex<DropFilterStats>>) {
        let stats = Arc::new(Mutex::new(DropFilterStats::default()));
        (
            PriorityDropFilter {
                stats: Arc::clone(&stats),
            },
            stats,
        )
    }
}

impl Stage for PriorityDropFilter {
    fn name(&self) -> &str {
        "priority-drop-filter"
    }

    fn accepts(&self) -> Typespec {
        Typespec::with_item_type(ItemType::of::<CompressedFrame>()).offering_event("set-drop-level")
    }

    fn on_event(&mut self, _ctx: &mut EventCtx<'_, '_>, event: &ControlEvent) {
        if let ControlEvent::SetDropLevel(level) = event {
            self.stats.lock().level = *level;
        }
    }
}

impl Function for PriorityDropFilter {
    fn convert(&mut self, item: Item) -> Option<Item> {
        let level = {
            let stats = self.stats.lock();
            stats.level
        };
        let drop = item
            .payload_ref::<CompressedFrame>()
            .is_some_and(|f| level >= f.ftype.drop_threshold());
        let mut stats = self.stats.lock();
        if drop {
            stats.dropped += 1;
            None
        } else {
            stats.passed += 1;
            Some(item)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::synth_payload;
    use crate::{FrameType, GopStructure};

    fn frame(seq: u64) -> Item {
        let gop = GopStructure::ibbp();
        Item::cloneable(CompressedFrame {
            seq,
            pts_us: 0,
            ftype: gop.frame_type(seq),
            data: synth_payload(seq, 16),
        })
    }

    fn kinds_passed(level: u8) -> Vec<FrameType> {
        let (mut f, stats) = PriorityDropFilter::new();
        stats.lock().level = level;
        (0..9)
            .filter_map(|s| f.convert(frame(s)))
            .map(|i| i.expect::<CompressedFrame>().ftype)
            .collect()
    }

    #[test]
    fn level_zero_passes_everything() {
        let kinds = kinds_passed(0);
        assert_eq!(kinds.len(), 9);
    }

    #[test]
    fn level_one_drops_only_b_frames() {
        let kinds = kinds_passed(1);
        assert!(!kinds.contains(&FrameType::B));
        assert!(kinds.contains(&FrameType::P));
        assert!(kinds.contains(&FrameType::I));
        assert_eq!(kinds.len(), 3); // I P P in an IBBPBBPBB GOP
    }

    #[test]
    fn level_two_keeps_only_i_frames() {
        let kinds = kinds_passed(2);
        assert_eq!(kinds, vec![FrameType::I]);
    }

    #[test]
    fn level_three_drops_all() {
        assert!(kinds_passed(3).is_empty());
    }

    #[test]
    fn stats_count_both_directions() {
        let (mut f, stats) = PriorityDropFilter::new();
        stats.lock().level = 1;
        for s in 0..9 {
            let _ = f.convert(frame(s));
        }
        let s = *stats.lock();
        assert_eq!(s.passed, 3);
        assert_eq!(s.dropped, 6);
    }
}
