//! Audio: a clocked sample source and the paper's clock-driven **active
//! sink** — "audio devices that have their own timing control can be
//! implemented as a clock-driven active sink" (§3.1).

use crate::stats::TimingStats;
use infopipes::{Item, ItemType, Producer, Stage, StageCtx};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;
use typespec::{QosKey, QosRange, Typespec};

/// One audio buffer's worth of samples.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sample {
    /// Sample-block sequence number.
    pub seq: u64,
    /// Nominal playback time (microseconds of stream time).
    pub pts_us: u64,
    /// Synthetic PCM data (a shared buffer; clones refcount).
    pub data: infopipes::PayloadBytes,
}

/// A passive source producing sample blocks at a nominal block rate.
pub struct AudioSource {
    block_count: u64,
    block_us: u64,
    block_bytes: usize,
    next: u64,
}

impl AudioSource {
    /// Creates a source of `block_count` blocks, each covering
    /// `block_us` microseconds of audio with `block_bytes` bytes.
    #[must_use]
    pub fn new(block_count: u64, block_us: u64, block_bytes: usize) -> AudioSource {
        AudioSource {
            block_count,
            block_us,
            block_bytes,
            next: 0,
        }
    }
}

impl Stage for AudioSource {
    fn name(&self) -> &str {
        "audio-source"
    }

    fn offers(&self) -> Typespec {
        let rate = 1_000_000.0 / self.block_us as f64;
        Typespec::with_item_type(ItemType::of::<Sample>())
            .with_qos(QosKey::SampleRateHz, QosRange::exactly(rate))
    }
}

impl Producer for AudioSource {
    fn pull(&mut self, _ctx: &mut StageCtx<'_, '_>) -> Option<Item> {
        if self.next >= self.block_count {
            return None;
        }
        let seq = self.next;
        self.next += 1;
        let sample = Sample {
            seq,
            pts_us: seq * self.block_us,
            data: crate::frame::synth_payload(seq, self.block_bytes),
        };
        Some(Item::cloneable(sample).with_seq(seq))
    }
}

/// Statistics collected by an [`AudioDevice`].
#[derive(Clone, Debug, Default)]
pub struct AudioStats {
    /// Blocks played on time.
    pub on_time: u64,
    /// Blocks that were not available when their deadline arrived.
    pub deadline_misses: u64,
    /// Playback timing.
    pub timing: TimingStats,
}

/// The paper's clock-driven active sink: it *owns its section's activity*,
/// pulling one sample block per period of its own clock. A block that is
/// not ready when the device needs it is a deadline miss — the quantity
/// the priority experiments (E8) measure.
pub struct AudioDevice {
    period: Duration,
    stats: Arc<Mutex<AudioStats>>,
}

impl AudioDevice {
    /// Creates a device playing one block per `period`, plus a handle on
    /// its statistics.
    #[must_use]
    pub fn new(period: Duration) -> (AudioDevice, Arc<Mutex<AudioStats>>) {
        let stats = Arc::new(Mutex::new(AudioStats::default()));
        (
            AudioDevice {
                period,
                stats: Arc::clone(&stats),
            },
            stats,
        )
    }
}

impl Stage for AudioDevice {
    fn name(&self) -> &str {
        "audio-device"
    }

    fn accepts(&self) -> Typespec {
        Typespec::with_item_type(ItemType::of::<Sample>())
    }
}

impl infopipes::ActiveObject for AudioDevice {
    fn run(&mut self, ctx: &mut StageCtx<'_, '_>) {
        let mut next_deadline = ctx.now() + self.period;
        loop {
            if ctx.stopping() {
                break;
            }
            // Ask for the next block. In a well-provisioned pipeline this
            // returns before the deadline; if production is slow, the time
            // we observe after the pull tells us we missed.
            let Some(item) = ctx.get() else { break };
            let arrived = ctx.now();
            {
                let mut stats = self.stats.lock();
                if arrived > next_deadline {
                    stats.deadline_misses += 1;
                } else {
                    stats.on_time += 1;
                }
            }
            // Wait out the rest of the period (device paced by its own
            // clock), then "play" the block.
            if arrived < next_deadline && !ctx.sleep_until(next_deadline) {
                break;
            }
            let played_at = ctx.now();
            self.stats.lock().timing.record(played_at.as_micros());
            drop(item);
            next_deadline += self.period;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infopipes::Pipeline;
    use mbthread::{Kernel, KernelConfig};

    #[test]
    fn audio_device_plays_blocks_at_its_own_rate() {
        let kernel = Kernel::new(KernelConfig::virtual_time());
        {
            let pipeline = Pipeline::new(&kernel, "audio");
            let src = pipeline.add_producer("src", AudioSource::new(5, 10_000, 64));
            let (dev, stats) = AudioDevice::new(Duration::from_millis(10));
            let sink = pipeline.add_active("sink", dev);
            let _ = src >> sink;
            let running = pipeline.start().unwrap();
            assert_eq!(running.report().sections[0].owner_kind, "active-sink");
            running.start_flow().unwrap();
            running.wait_quiescent();
            let s = stats.lock();
            assert_eq!(s.on_time, 5);
            assert_eq!(s.deadline_misses, 0);
            // Playback at exact 10 ms marks under the virtual clock.
            assert_eq!(
                s.timing.arrivals_us(),
                &[10_000, 20_000, 30_000, 40_000, 50_000]
            );
        }
        kernel.shutdown();
    }

    #[test]
    fn source_offers_its_block_rate() {
        let src = AudioSource::new(1, 20_000, 8);
        let spec = src.offers();
        assert_eq!(
            spec.qos(&QosKey::SampleRateHz),
            Some(QosRange::exactly(50.0))
        );
    }
}
