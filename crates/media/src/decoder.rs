//! The synthetic decoder: enforces reference dependencies and charges a
//! configurable decode cost in kernel time.

use crate::frame::{payload_checksum, CompressedFrame, RawFrame};
use crate::gop::GopStructure;
use infopipes::{Consumer, Item, ItemType, Stage, StageCtx};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;
use typespec::{TypeError, Typespec};

/// How long decoding takes, in kernel time. Under a virtual clock this is
/// deterministic; under the real clock it is an actual sleep, standing in
/// for CPU work at a controlled rate.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DecodeCost {
    /// Fixed cost per frame.
    pub base: Duration,
    /// Additional cost per payload byte.
    pub per_kilobyte: Duration,
}

impl DecodeCost {
    /// No decode delay (pure dependency checking).
    #[must_use]
    pub fn free() -> DecodeCost {
        DecodeCost::default()
    }

    /// The total cost of a frame of `bytes` payload bytes.
    #[must_use]
    pub fn of(&self, bytes: usize) -> Duration {
        self.base + self.per_kilobyte * u32::try_from(bytes / 1024).unwrap_or(u32::MAX)
    }
}

/// Counters kept by a [`Decoder`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DecoderStats {
    /// Frames decoded successfully.
    pub decoded: u64,
    /// Frames skipped because a reference they need was never decoded.
    pub undecodable: u64,
    /// Reference frames that never arrived (gaps in the sequence).
    pub missing_references: u64,
}

impl DecoderStats {
    /// Fraction of *seen* frames that decoded.
    #[must_use]
    pub fn decode_ratio(&self) -> f64 {
        let seen = self.decoded + self.undecodable;
        if seen == 0 {
            1.0
        } else {
            self.decoded as f64 / seen as f64
        }
    }
}

/// A push-style decoder for the synthetic MPEG-like stream.
///
/// Tracks which reference frames were actually decoded; a frame whose
/// dependency is missing (dropped in the network or undecodable itself)
/// is discarded, and a gap where a reference *should* have been poisons
/// the stream until the next I frame — faithfully reproducing why
/// arbitrary dropping is so much worse than controlled B-first dropping.
pub struct Decoder {
    gop: GopStructure,
    cost: DecodeCost,
    width: u32,
    height: u32,
    /// Sequence number of the last reference frame decoded, if still
    /// usable.
    last_ref: Option<u64>,
    /// Next sequence number we expect to see (gap detection).
    expected: u64,
    stats: Arc<Mutex<DecoderStats>>,
}

impl Decoder {
    /// Creates a decoder for streams with the given GOP structure.
    #[must_use]
    pub fn new(gop: GopStructure, cost: DecodeCost) -> Decoder {
        Decoder {
            gop,
            cost,
            width: 640,
            height: 480,
            last_ref: None,
            expected: 0,
            stats: Arc::new(Mutex::new(DecoderStats::default())),
        }
    }

    /// A shared handle on the decoder's statistics.
    #[must_use]
    pub fn stats_handle(&self) -> Arc<Mutex<DecoderStats>> {
        Arc::clone(&self.stats)
    }

    /// Registers the frames skipped between `self.expected` and `seq`:
    /// if any of them was a reference, the chain is broken.
    fn note_gap(&mut self, seq: u64) {
        let mut stats = self.stats.lock();
        for missing in self.expected..seq {
            if self.gop.frame_type(missing).is_reference() {
                stats.missing_references += 1;
                // Invalidate the chain unless an I frame restores it later.
                if self.last_ref.is_some_and(|r| r < missing) {
                    self.last_ref = None;
                }
            }
        }
    }

    fn decodable(&self, frame: &CompressedFrame) -> bool {
        match self.gop.dependency(frame.seq) {
            None => true,
            Some(dep) => self.last_ref == Some(dep),
        }
    }
}

impl Stage for Decoder {
    fn name(&self) -> &str {
        "mpeg-decoder"
    }

    fn accepts(&self) -> Typespec {
        Typespec::with_item_type(ItemType::of::<CompressedFrame>())
    }

    fn transform_spec(&self, input: &Typespec) -> Result<Typespec, TypeError> {
        Ok(input.clone().map_item(ItemType::of::<RawFrame>()))
    }
}

impl Consumer for Decoder {
    fn push(&mut self, ctx: &mut StageCtx<'_, '_>, item: Item) {
        let meta = item.meta;
        let frame = item.expect::<CompressedFrame>();
        if frame.seq > self.expected {
            self.note_gap(frame.seq);
        }
        self.expected = frame.seq + 1;

        if !self.decodable(&frame) {
            self.stats.lock().undecodable += 1;
            return;
        }
        // Charge the decode cost in kernel time.
        let cost = self.cost.of(frame.data.len());
        if cost > Duration::ZERO && !ctx.sleep(cost) {
            return;
        }
        if frame.ftype.is_reference() {
            self.last_ref = Some(frame.seq);
        }
        self.stats.lock().decoded += 1;
        let raw = RawFrame {
            seq: frame.seq,
            pts_us: frame.pts_us,
            width: self.width,
            height: self.height,
            checksum: payload_checksum(&frame.data),
        };
        let mut out = Item::cloneable(raw);
        out.meta = meta;
        ctx.put(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::synth_payload;
    use crate::FrameType;

    fn frame(gop: &GopStructure, seq: u64) -> CompressedFrame {
        CompressedFrame {
            seq,
            pts_us: seq * 33_333,
            ftype: gop.frame_type(seq),
            data: synth_payload(seq, 64),
        }
    }

    /// Drives a decoder directly (outside a pipeline) through a kernel so
    /// StageCtx is available.
    fn run_decoder(frames: Vec<CompressedFrame>) -> (Vec<u64>, DecoderStats) {
        use infopipes::helpers::{CollectSink, IterSource};
        use infopipes::{FreePump, Pipeline};
        use mbthread::{Kernel, KernelConfig};

        let kernel = Kernel::new(KernelConfig::virtual_time());
        let decoder = Decoder::new(GopStructure::ibbp(), DecodeCost::free());
        let stats = decoder.stats_handle();
        let decoded = {
            let pipeline = Pipeline::new(&kernel, "dec-test");
            let src = pipeline.add_producer("src", IterSource::new("src", frames));
            let pump = pipeline.add_pump("pump", FreePump::new());
            let dec = pipeline.add_consumer("dec", decoder);
            let (sink, out) = CollectSink::<RawFrame>::new("sink");
            let sink = pipeline.add_consumer("sink", sink);
            let _ = src >> pump >> dec >> sink;
            let running = pipeline.start().unwrap();
            running.start_flow().unwrap();
            running.wait_quiescent();
            let seqs: Vec<u64> = out.lock().iter().map(|r| r.seq).collect();
            seqs
        };
        kernel.shutdown();
        let s = *stats.lock();
        (decoded, s)
    }

    #[test]
    fn full_stream_decodes_completely() {
        let gop = GopStructure::ibbp();
        let frames: Vec<CompressedFrame> = (0..18).map(|s| frame(&gop, s)).collect();
        let (decoded, stats) = run_decoder(frames);
        assert_eq!(decoded, (0..18).collect::<Vec<u64>>());
        assert_eq!(stats.decoded, 18);
        assert_eq!(stats.undecodable, 0);
        assert!((stats.decode_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dropping_b_frames_costs_only_those_frames() {
        let gop = GopStructure::ibbp();
        let frames: Vec<CompressedFrame> = (0..9)
            .filter(|&s| gop.frame_type(s) != FrameType::B)
            .map(|s| frame(&gop, s))
            .collect();
        let (decoded, stats) = run_decoder(frames);
        // I(0), P(3), P(6) all decode.
        assert_eq!(decoded, vec![0, 3, 6]);
        assert_eq!(stats.undecodable, 0);
    }

    #[test]
    fn dropping_a_p_frame_poisons_the_rest_of_the_gop() {
        let gop = GopStructure::ibbp(); // I B B P B B P B B
        let frames: Vec<CompressedFrame> = (0..9)
            .filter(|&s| s != 3) // drop the first P
            .map(|s| frame(&gop, s))
            .collect();
        let (decoded, stats) = run_decoder(frames);
        // Everything after frame 2 depended (transitively) on frame 3.
        assert_eq!(decoded, vec![0, 1, 2]);
        assert_eq!(stats.undecodable, 5);
        assert_eq!(stats.missing_references, 1);
    }

    #[test]
    fn next_i_frame_recovers_the_stream() {
        let gop = GopStructure::ibbp();
        let frames: Vec<CompressedFrame> = (0..18)
            .filter(|&s| s != 3)
            .map(|s| frame(&gop, s))
            .collect();
        let (decoded, _) = run_decoder(frames);
        // GOP 2 (frames 9..18) is unaffected.
        assert!(decoded.contains(&9));
        assert!(decoded.contains(&17));
        assert_eq!(decoded.iter().filter(|&&s| s >= 9).count(), 9);
    }

    #[test]
    fn decode_cost_scales_with_size() {
        let cost = DecodeCost {
            base: Duration::from_micros(100),
            per_kilobyte: Duration::from_micros(50),
        };
        assert_eq!(cost.of(0), Duration::from_micros(100));
        assert_eq!(cost.of(2048), Duration::from_micros(200));
        assert_eq!(DecodeCost::free().of(10_000), Duration::ZERO);
    }
}
