//! The `mpeg_file` source of the paper's §4 example, synthesized: a
//! passive producer yielding a deterministic compressed stream.

use crate::frame::{synth_payload, CompressedFrame};
use crate::gop::GopStructure;
use infopipes::{Item, ItemType, Producer, Stage, StageCtx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use typespec::{QosKey, QosRange, Typespec};

/// A synthetic "MPEG file": produces `frame_count` compressed frames with
/// GOP structure, realistic relative sizes (I ≫ P > B), and presentation
/// timestamps at the configured frame rate. Passive pull-style, like a
/// file read.
pub struct MpegFileSource {
    gop: GopStructure,
    frame_count: u64,
    fps: f64,
    base_size: usize,
    next: u64,
    rng: StdRng,
}

impl MpegFileSource {
    /// Opens a synthetic file of `frame_count` frames at `fps`.
    ///
    /// `base_size` is the nominal P-frame size in bytes; I frames are
    /// about 4x, B frames about half, each with ±25 % deterministic
    /// jitter from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not strictly positive or `base_size` is zero.
    #[must_use]
    pub fn new(
        gop: GopStructure,
        frame_count: u64,
        fps: f64,
        base_size: usize,
        seed: u64,
    ) -> MpegFileSource {
        assert!(fps > 0.0 && fps.is_finite(), "fps must be positive");
        assert!(base_size > 0, "base_size must be positive");
        MpegFileSource {
            gop,
            frame_count,
            fps,
            base_size,
            next: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The GOP structure of the stream.
    #[must_use]
    pub fn gop(&self) -> GopStructure {
        self.gop
    }

    /// Generates the frame at position `seq` (also usable without a
    /// pipeline, e.g. to precompute expected outputs in tests).
    #[must_use]
    pub fn frame_at(&mut self, seq: u64) -> CompressedFrame {
        let ftype = self.gop.frame_type(seq);
        let nominal = match ftype {
            crate::FrameType::I => self.base_size * 4,
            crate::FrameType::P => self.base_size,
            crate::FrameType::B => self.base_size / 2,
        }
        .max(8);
        // ±25 % size jitter, deterministic via the seeded rng.
        let jitter = self.rng.random_range(0.75..=1.25);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let size = ((nominal as f64) * jitter) as usize;
        let pts_us = (seq as f64 * 1_000_000.0 / self.fps) as u64;
        CompressedFrame {
            seq,
            pts_us,
            ftype,
            data: synth_payload(seq, size.max(8)),
        }
    }
}

impl Stage for MpegFileSource {
    fn name(&self) -> &str {
        "mpeg-file"
    }

    fn offers(&self) -> Typespec {
        Typespec::with_item_type(ItemType::of::<CompressedFrame>())
            .with_qos(QosKey::FrameRateHz, QosRange::exactly(self.fps))
            .with_prop("codec", "synthetic-mpeg")
    }
}

impl Producer for MpegFileSource {
    fn pull(&mut self, ctx: &mut StageCtx<'_, '_>) -> Option<Item> {
        if self.next >= self.frame_count {
            return None;
        }
        let seq = self.next;
        self.next += 1;
        let frame = self.frame_at(seq);
        Some(Item::cloneable(frame).with_seq(seq).with_ts(ctx.now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrameType;

    #[test]
    fn frames_follow_the_gop_and_size_model() {
        let mut src = MpegFileSource::new(GopStructure::ibbp(), 18, 30.0, 1000, 7);
        let frames: Vec<CompressedFrame> = (0..18).map(|s| src.frame_at(s)).collect();
        // Types follow the pattern.
        for f in &frames {
            assert_eq!(f.ftype, GopStructure::ibbp().frame_type(f.seq));
        }
        // I frames are much larger than B frames on average.
        let avg = |t: FrameType| {
            let xs: Vec<usize> = frames
                .iter()
                .filter(|f| f.ftype == t)
                .map(CompressedFrame::size)
                .collect();
            xs.iter().sum::<usize>() as f64 / xs.len() as f64
        };
        assert!(avg(FrameType::I) > 2.0 * avg(FrameType::P));
        assert!(avg(FrameType::P) > 1.2 * avg(FrameType::B));
        // PTS advances at the frame rate: 33,333 us apart at 30 fps.
        assert_eq!(frames[0].pts_us, 0);
        assert_eq!(frames[1].pts_us, 33_333);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = MpegFileSource::new(GopStructure::ibbp(), 5, 30.0, 500, 11);
        let mut b = MpegFileSource::new(GopStructure::ibbp(), 5, 30.0, 500, 11);
        for s in 0..5 {
            assert_eq!(a.frame_at(s), b.frame_at(s));
        }
    }

    #[test]
    fn offers_carries_rate_and_codec() {
        let src = MpegFileSource::new(GopStructure::ibbp(), 1, 24.0, 100, 0);
        let spec = src.offers();
        assert_eq!(
            spec.qos(&QosKey::FrameRateHz),
            Some(QosRange::exactly(24.0))
        );
        assert_eq!(spec.prop("codec"), Some("synthetic-mpeg"));
    }
}
