//! Synthetic media substrate for the Infopipes reproduction.
//!
//! The paper's evaluation pipelines process MPEG video, PCM audio, and
//! MIDI. Real codecs and media files are not required to exercise the
//! middleware: what matters to Infopipes is item *sizes*, *timing*, and
//! the *inter-frame dependencies* that determine what breaks when frames
//! are dropped. This crate provides synthetic equivalents:
//!
//! * an MPEG-like stream model: I/P/B [`FrameType`]s in a configurable
//!   [`GopStructure`] with realistic relative sizes ([`MpegFileSource`]),
//! * a [`Decoder`] that enforces reference-frame dependencies — dropping
//!   a reference poisons dependent frames until the next I frame, which
//!   is exactly why the paper's feedback-controlled dropping beats
//!   arbitrary in-network dropping (Fig. 1),
//! * a [`PriorityDropFilter`] controlled by
//!   [`ControlEvent::SetDropLevel`](infopipes::ControlEvent::SetDropLevel),
//! * [`Fragmenter`]/[`Defragmenter`] for MTU-sized network packets,
//! * measuring sinks: [`DisplaySink`] (presentation jitter),
//!   [`AudioDevice`] (an active clock-driven sink counting deadline
//!   misses, §3.1's audio example),
//! * tiny-item MIDI flows for the small-message overhead experiments
//!   (§4's MIDI-mixer motivation).

#![warn(missing_docs)]

mod audio;
mod decoder;
mod display;
mod drop_filter;
mod file_source;
mod fragment;
mod frame;
mod gop;
mod midi;
mod stats;

pub use audio::{AudioDevice, AudioSource, AudioStats, Sample};
pub use decoder::{DecodeCost, Decoder, DecoderStats};
pub use display::{DisplaySink, DisplayStats, Resizer};
pub use drop_filter::{DropFilterStats, PriorityDropFilter};
pub use file_source::MpegFileSource;
pub use fragment::{Defragmenter, Fragmenter, Packet};
pub use frame::{CompressedFrame, FrameType, RawFrame};
pub use gop::GopStructure;
pub use midi::{MidiEvent, MidiSink, MidiSource};
pub use stats::TimingStats;
