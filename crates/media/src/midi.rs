//! MIDI flows: many tiny items, the workload where per-component thread
//! overhead hurts most (§4's MIDI-mixer motivation for minimizing
//! context switches).

use infopipes::{Consumer, Item, ItemType, Producer, Stage, StageCtx};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use typespec::Typespec;

/// A single MIDI-like event — a deliberately tiny item.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MidiEvent {
    /// Channel (0–15).
    pub channel: u8,
    /// Note number.
    pub note: u8,
    /// Velocity (0 = note off).
    pub velocity: u8,
    /// Event time in stream microseconds.
    pub at_us: u64,
}

/// A passive source producing a deterministic stream of tiny events.
pub struct MidiSource {
    channel: u8,
    count: u64,
    next: u64,
    spacing_us: u64,
}

impl MidiSource {
    /// `count` events on `channel`, `spacing_us` apart.
    #[must_use]
    pub fn new(channel: u8, count: u64, spacing_us: u64) -> MidiSource {
        MidiSource {
            channel,
            count,
            next: 0,
            spacing_us,
        }
    }
}

impl Stage for MidiSource {
    fn name(&self) -> &str {
        "midi-source"
    }

    fn offers(&self) -> Typespec {
        Typespec::with_item_type(ItemType::of::<MidiEvent>())
    }
}

impl Producer for MidiSource {
    fn pull(&mut self, _ctx: &mut StageCtx<'_, '_>) -> Option<Item> {
        if self.next >= self.count {
            return None;
        }
        let seq = self.next;
        self.next += 1;
        let ev = MidiEvent {
            channel: self.channel,
            note: 60 + (seq % 12) as u8,
            velocity: if seq.is_multiple_of(2) { 96 } else { 0 },
            at_us: seq * self.spacing_us,
        };
        Some(Item::cloneable(ev).with_seq(seq))
    }
}

/// A passive sink collecting events (per-channel counts plus the full
/// sequence).
pub struct MidiSink {
    out: Arc<Mutex<Vec<MidiEvent>>>,
}

impl MidiSink {
    /// Creates the sink and a shared handle on the collected events.
    #[must_use]
    pub fn new() -> (MidiSink, Arc<Mutex<Vec<MidiEvent>>>) {
        let out = Arc::new(Mutex::new(Vec::new()));
        (
            MidiSink {
                out: Arc::clone(&out),
            },
            out,
        )
    }
}

impl Stage for MidiSink {
    fn name(&self) -> &str {
        "midi-sink"
    }

    fn accepts(&self) -> Typespec {
        Typespec::with_item_type(ItemType::of::<MidiEvent>())
    }
}

impl Consumer for MidiSink {
    fn push(&mut self, _ctx: &mut StageCtx<'_, '_>, item: Item) {
        if let Ok((ev, _)) = item.into_payload::<MidiEvent>() {
            self.out.lock().push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infopipes::{FreePump, Pipeline};
    use mbthread::{Kernel, KernelConfig};

    #[test]
    fn midi_mixer_merges_channels_through_a_buffer() {
        let kernel = Kernel::new(KernelConfig::virtual_time());
        {
            let pipeline = Pipeline::new(&kernel, "mixer");
            let ch0 = pipeline.add_producer("ch0", MidiSource::new(0, 16, 100));
            let ch1 = pipeline.add_producer("ch1", MidiSource::new(1, 16, 100));
            let p0 = pipeline.add_pump("p0", FreePump::new());
            let p1 = pipeline.add_pump("p1", FreePump::new());
            let mix = pipeline.add_buffer("mix", 64);
            let pout = pipeline.add_pump("pout", FreePump::new());
            let (sink, out) = MidiSink::new();
            let sink = pipeline.add_consumer("sink", sink);
            let _ = ch0 >> p0 >> mix;
            let _ = ch1 >> p1 >> mix;
            let _ = mix >> pout >> sink;
            let running = pipeline.start().unwrap();
            running.start_flow().unwrap();
            running.wait_quiescent();
            let events = out.lock();
            assert_eq!(events.len(), 32);
            for ch in [0u8, 1] {
                let notes: Vec<u8> = events
                    .iter()
                    .filter(|e| e.channel == ch)
                    .map(|e| e.note)
                    .collect();
                assert_eq!(notes.len(), 16);
                // Per-channel order is preserved through the merge.
                let expect: Vec<u8> = (0..16).map(|s| 60 + (s % 12) as u8).collect();
                assert_eq!(notes, expect);
            }
        }
        kernel.shutdown();
    }
}
