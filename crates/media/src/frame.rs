//! Frame types: the items of the synthetic video flow.

use infopipes::PayloadBytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// MPEG-style frame classes, ordered by droppability.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FrameType {
    /// Bidirectional frame: references others, referenced by none —
    /// cheapest to drop.
    B,
    /// Predicted frame: references the previous reference frame and is
    /// itself a reference.
    P,
    /// Intra-coded frame: self-contained; dropping one poisons the whole
    /// group of pictures.
    I,
}

impl FrameType {
    /// Whether later frames may depend on this one.
    #[must_use]
    pub fn is_reference(self) -> bool {
        matches!(self, FrameType::I | FrameType::P)
    }

    /// The drop level at which a [`PriorityDropFilter`](crate::PriorityDropFilter)
    /// (crate::PriorityDropFilter) starts discarding this type:
    /// level ≥ 1 drops B, ≥ 2 drops P, ≥ 3 drops I.
    #[must_use]
    pub fn drop_threshold(self) -> u8 {
        match self {
            FrameType::B => 1,
            FrameType::P => 2,
            FrameType::I => 3,
        }
    }
}

impl fmt::Display for FrameType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FrameType::I => "I",
            FrameType::P => "P",
            FrameType::B => "B",
        })
    }
}

/// A compressed video frame as produced by the synthetic encoder.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedFrame {
    /// Stream-wide frame number (decode order).
    pub seq: u64,
    /// Presentation timestamp in microseconds of stream time.
    pub pts_us: u64,
    /// Frame class.
    pub ftype: FrameType,
    /// Compressed payload (synthetic bytes; only the size matters to the
    /// pipeline, but the bytes are real so marshalling is honest). A
    /// shared buffer: cloning a frame, teeing it, or fragmenting it
    /// shares this allocation instead of copying it.
    pub data: PayloadBytes,
}

impl CompressedFrame {
    /// Payload size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.data.len()
    }
}

impl fmt::Display for CompressedFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}#{} ({} B @ {} us)",
            self.ftype,
            self.seq,
            self.data.len(),
            self.pts_us
        )
    }
}

/// A decoded (raw) video frame.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawFrame {
    /// Stream-wide frame number.
    pub seq: u64,
    /// Presentation timestamp in microseconds of stream time.
    pub pts_us: u64,
    /// Width in pixels (after any resizing).
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// A checksum standing in for pixel data (decoders are deterministic,
    /// so displays can verify integrity end to end).
    pub checksum: u64,
}

impl fmt::Display for RawFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "raw#{} {}x{}", self.seq, self.width, self.height)
    }
}

/// Deterministic payload bytes for a frame: reproducible without storing
/// real video. Sealed into a shared buffer at creation, so the whole
/// downstream path refcounts it.
#[must_use]
pub(crate) fn synth_payload(seq: u64, size: usize) -> PayloadBytes {
    // A small xorshift keyed by seq: stable across runs and platforms.
    let mut state = seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..size)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 0xFF) as u8
        })
        .collect()
}

/// The checksum a correct decode of `data` yields.
#[must_use]
pub(crate) fn payload_checksum(data: &[u8]) -> u64 {
    data.iter().fold(0xcbf2_9ce4_8422_2325u64, |acc, b| {
        (acc ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01B3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_type_ordering_matches_droppability() {
        assert!(FrameType::B < FrameType::P);
        assert!(FrameType::P < FrameType::I);
        assert_eq!(FrameType::B.drop_threshold(), 1);
        assert_eq!(FrameType::P.drop_threshold(), 2);
        assert_eq!(FrameType::I.drop_threshold(), 3);
        assert!(FrameType::I.is_reference());
        assert!(FrameType::P.is_reference());
        assert!(!FrameType::B.is_reference());
    }

    #[test]
    fn synth_payload_is_deterministic_and_sized() {
        let a = synth_payload(42, 100);
        let b = synth_payload(42, 100);
        let c = synth_payload(43, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 100);
        assert_eq!(payload_checksum(&a), payload_checksum(&b));
        assert_ne!(payload_checksum(&a), payload_checksum(&c));
    }

    #[test]
    fn displays_are_nonempty() {
        let f = CompressedFrame {
            seq: 3,
            pts_us: 100,
            ftype: FrameType::P,
            data: vec![0; 10].into(),
        };
        assert!(f.to_string().contains("P#3"));
        assert_eq!(f.size(), 10);
        let r = RawFrame {
            seq: 3,
            pts_us: 100,
            width: 320,
            height: 240,
            checksum: 0,
        };
        assert!(r.to_string().contains("320x240"));
    }
}
