//! The trace reader: full-scan parsing with crash-safe torn-tail
//! recovery and a pooled, zero-copy payload path.
//!
//! Chunk bodies are read into buffers drawn from a
//! [`BufferPool`] and sealed once; every record payload is then a
//! zero-copy [`PayloadBytes::slice`] of its chunk's sealed buffer — one
//! read-time copy off the file descriptor (unavoidable with real I/O)
//! and none after it, mirroring the transport receive path.
//!
//! # Torn tails
//!
//! An append-only log's failure mode is truncation: the recording
//! process died (or the disk filled) mid-append, chopping the file at
//! an arbitrary byte. [`TraceReader::open`] never errors on pure
//! truncation. Whatever prefix of the final top-level record survived
//! is salvaged — for a torn chunk, the complete data records at the
//! front of the partial body (each record is self-delimiting, and
//! truncation only removes a suffix, so a fully present record is
//! exactly what the writer wrote) — and the dropped byte count is
//! reported in [`TraceReader::recovered_bytes`]. Mid-file damage (a CRC
//! mismatch with more data following, an oversized length) is *not*
//! explainable by truncation and stays a hard [`TraceError::Corrupt`].

use super::format::{
    op, ChannelDecl, TraceError, TraceFooter, TraceHeader, TraceRecord, CHUNK_PREAMBLE_LEN,
    DATA_HEADER_LEN, MAX_TOP_RECORD, TRACE_MAGIC, TRACE_SCHEMA_VERSION,
};
use crate::framing::FrameKind;
use crate::transport::SimConfig;
use crate::wire;
use infopipes::{BufferPool, Digest64, PayloadBytes};
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

/// A fully parsed trace.
#[derive(Debug)]
pub struct TraceReader {
    /// The file header.
    pub header: TraceHeader,
    /// Channel declarations, in file order.
    pub channels: Vec<ChannelDecl>,
    /// Every data record, in file order.
    pub records: Vec<TraceRecord>,
    /// The footer, when the trace was closed cleanly.
    pub footer: Option<TraceFooter>,
    /// Whether the trace ended with a valid footer.
    pub clean_close: bool,
    /// Bytes discarded recovering a torn tail (0 for a clean file).
    pub recovered_bytes: u64,
}

/// What `read_exact_or_eof` observed.
enum Fill {
    /// The buffer was filled completely.
    Full,
    /// EOF arrived after `n` bytes (possibly 0).
    Short(usize),
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<Fill, TraceError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Ok(Fill::Short(filled)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(TraceError::Io(e)),
        }
    }
    Ok(Fill::Full)
}

/// Parses complete data records off the front of `body`'s record
/// region, appending them to `salvaged`, and returns how many bytes
/// they consumed. A record whose header or payload extends past the end
/// of `body` terminates the parse — callers decide whether that is a
/// torn tail (salvage) or a count mismatch (corruption).
fn parse_records(
    body: &PayloadBytes,
    from: usize,
    salvaged: &mut Vec<TraceRecord>,
) -> Result<usize, TraceError> {
    let bytes = body.as_slice();
    let mut at = from;
    while bytes.len() - at >= DATA_HEADER_LEN {
        let h = &bytes[at..at + DATA_HEADER_LEN];
        let channel = u16::from_le_bytes([h[0], h[1]]);
        let ts_ns = u64::from_le_bytes(h[2..10].try_into().expect("8-byte slice"));
        let kind = FrameKind::from_byte(h[10])
            .map_err(|_| TraceError::Corrupt(format!("unknown data-record kind {}", h[10])))?;
        let plen = u32::from_le_bytes(h[11..15].try_into().expect("4-byte slice")) as usize;
        if bytes.len() - at - DATA_HEADER_LEN < plen {
            break;
        }
        let start = at + DATA_HEADER_LEN;
        salvaged.push(TraceRecord {
            channel,
            ts_ns,
            kind,
            // Zero-copy: a refcounted view into the chunk's sealed
            // buffer.
            payload: body.slice(start..start + plen),
        });
        at = start + plen;
    }
    Ok(at - from)
}

impl TraceReader {
    /// Opens and fully parses a trace file, recovering a torn tail.
    ///
    /// # Errors
    ///
    /// [`TraceError::Corrupt`] for files that are not traces or are
    /// damaged mid-file; [`TraceError::Version`] for traces written by a
    /// newer schema; I/O errors other than clean truncation.
    pub fn open(path: impl AsRef<Path>) -> Result<TraceReader, TraceError> {
        Self::open_with_pool(path, &BufferPool::new())
    }

    /// Like [`TraceReader::open`], drawing chunk buffers from `pool` so
    /// repeated opens (replay sweeps) recycle their chunk allocations.
    ///
    /// # Errors
    ///
    /// As [`TraceReader::open`].
    pub fn open_with_pool(
        path: impl AsRef<Path>,
        pool: &BufferPool,
    ) -> Result<TraceReader, TraceError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut r = BufReader::new(file);

        let mut magic = [0u8; TRACE_MAGIC.len()];
        match read_exact_or_eof(&mut r, &mut magic)? {
            Fill::Full if magic == TRACE_MAGIC => {}
            // A file too short to hold the magic *could* be a torn
            // creation, but nothing is salvageable and misidentifying an
            // unrelated file would be worse: refuse.
            _ => return Err(TraceError::Corrupt("bad trace magic".into())),
        }

        let mut header: Option<TraceHeader> = None;
        let mut channels = Vec::new();
        let mut records = Vec::new();
        let mut footer = None;
        // File offset of everything fully consumed into the result so
        // far; whatever lies beyond it at a torn tail is "recovered"
        // (dropped).
        let mut valid_end = TRACE_MAGIC.len() as u64;
        let mut offset = valid_end;
        let mut torn = false;

        loop {
            let record_start = offset;
            let mut top = [0u8; super::format::TOP_HEADER_LEN];
            match read_exact_or_eof(&mut r, &mut top)? {
                Fill::Short(0) => break, // clean end of records
                Fill::Short(_) => {
                    torn = true;
                    break;
                }
                Fill::Full => {}
            }
            offset += top.len() as u64;
            let opcode = top[0];
            let len = u32::from_le_bytes(top[1..5].try_into().expect("4-byte slice")) as usize;
            if len > MAX_TOP_RECORD {
                // A length field is written atomically with its op byte;
                // truncation cannot invent one. This is real damage.
                return Err(TraceError::Corrupt(format!(
                    "top-level record of {len} bytes exceeds MAX_TOP_RECORD"
                )));
            }

            // Chunk bodies go through the pool (the payload fast path);
            // metadata records are small and short-lived.
            let (body, short) = {
                let mut buf = pool.acquire(len);
                buf.buf_mut().resize(len, 0);
                match read_exact_or_eof(&mut r, buf.buf_mut())? {
                    Fill::Full => (buf.seal(), None),
                    Fill::Short(n) => {
                        buf.buf_mut().truncate(n);
                        (buf.seal(), Some(n))
                    }
                }
            };
            if let Some(n) = short {
                // Torn body. For a chunk, salvage the complete record
                // prefix of what survived; everything else is dropped.
                torn = true;
                if opcode == op::CHUNK && n > CHUNK_PREAMBLE_LEN {
                    let consumed = parse_records(&body, CHUNK_PREAMBLE_LEN, &mut records)?;
                    valid_end = record_start
                        + (super::format::TOP_HEADER_LEN + CHUNK_PREAMBLE_LEN + consumed) as u64;
                }
                break;
            }
            offset += len as u64;

            match opcode {
                op::HEADER => {
                    let h: TraceHeader = wire::from_bytes(body.as_slice())?;
                    if h.version > TRACE_SCHEMA_VERSION {
                        return Err(TraceError::Version(h.version));
                    }
                    if header.is_some() {
                        return Err(TraceError::Corrupt("duplicate trace header".into()));
                    }
                    header = Some(h);
                }
                op::CHANNEL => {
                    channels.push(wire::from_bytes::<ChannelDecl>(body.as_slice())?);
                }
                op::CHUNK => {
                    if body.len() < CHUNK_PREAMBLE_LEN {
                        return Err(TraceError::Corrupt(
                            "chunk body shorter than preamble".into(),
                        ));
                    }
                    let bytes = body.as_slice();
                    let crc = u32::from_le_bytes(bytes[0..4].try_into().expect("4-byte slice"));
                    let count =
                        u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice")) as usize;
                    let region = &bytes[CHUNK_PREAMBLE_LEN..];
                    if infopipes::crc32(region) != crc {
                        return Err(TraceError::Corrupt(format!(
                            "chunk at offset {record_start} failed its CRC"
                        )));
                    }
                    let before = records.len();
                    let consumed = parse_records(&body, CHUNK_PREAMBLE_LEN, &mut records)?;
                    if records.len() - before != count || consumed != region.len() {
                        return Err(TraceError::Corrupt(format!(
                            "chunk at offset {record_start} declared {count} records, parsed {}",
                            records.len() - before
                        )));
                    }
                }
                op::FOOTER => {
                    footer = Some(wire::from_bytes::<TraceFooter>(body.as_slice())?);
                }
                // Unknown op with a valid length: a future record type.
                // Skip it (forward compatibility).
                _ => {}
            }
            valid_end = offset;
        }

        let header = header.ok_or_else(|| TraceError::Corrupt("trace has no header".into()))?;
        let recovered_bytes = if torn { file_len - valid_end } else { 0 };
        Ok(TraceReader {
            header,
            channels,
            records,
            clean_close: footer.is_some() && !torn,
            footer,
            recovered_bytes,
        })
    }

    /// The recorded simulated-network scenario, when the header carries
    /// one.
    #[must_use]
    pub fn scenario(&self) -> Option<SimConfig> {
        self.header.scenario.as_ref().map(|s| s.to_sim_config())
    }

    /// Looks up a channel declaration by id.
    #[must_use]
    pub fn channel(&self, id: u16) -> Option<&ChannelDecl> {
        self.channels.iter().find(|c| c.id == id)
    }

    /// A frame-aware digest over every record (channel, timestamp, kind,
    /// and payload). Two traces digest equal iff they carry the same
    /// records in the same order with the same framing.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut d = Digest64::new();
        for rec in &self.records {
            d.update_u64(u64::from(rec.channel));
            d.update_u64(rec.ts_ns);
            d.update_u64(u64::from(rec.kind.to_byte()));
            d.update(rec.payload.as_slice());
        }
        d.value()
    }

    /// Total payload bytes across all records.
    #[must_use]
    pub fn payload_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.payload.len() as u64).sum()
    }
}
