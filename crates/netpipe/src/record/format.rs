//! The on-disk trace container: constants, record types, and the
//! byte-level layout shared by [`TraceWriter`](super::TraceWriter) and
//! [`TraceReader`](super::TraceReader).
//!
//! A trace file is a magic preamble followed by a flat sequence of
//! **top-level records**, each `[op: u8][len: u32 LE][body: len bytes]`:
//!
//! | op | record | body |
//! |----|--------|------|
//! | 1  | header       | wire-encoded [`TraceHeader`] |
//! | 2  | channel decl | wire-encoded [`ChannelDecl`] |
//! | 3  | chunk        | `[crc: u32 LE][count: u32 LE][count data records]` |
//! | 4  | footer       | wire-encoded [`TraceFooter`] |
//!
//! Data records live only inside chunks, back to back:
//! `[channel: u16 LE][ts: u64 LE][kind: u8][plen: u32 LE][payload]`
//! (a fixed [`DATA_HEADER_LEN`]-byte header, then the payload). The
//! chunk CRC-32 covers the data-record region only, so a torn tail is
//! distinguishable from in-place corruption. Readers skip top-level ops
//! they do not know (forward compatibility); they refuse headers whose
//! version is *newer* than [`TRACE_SCHEMA_VERSION`].

use crate::framing::FrameKind;
use crate::transport::SimConfig;
use crate::wire::{self, WireError};
use infopipes::PayloadBytes;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;
use typespec::{ItemType, Typespec};

/// The 8-byte file preamble.
pub const TRACE_MAGIC: [u8; 8] = *b"NPTRACE\0";

/// The trace container schema version, stored in the [`TraceHeader`].
/// Bump on any layout change; readers accept any version up to their
/// own and refuse newer files loudly instead of misdecoding.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// Length of a top-level record header (`op` + `len`).
pub const TOP_HEADER_LEN: usize = 5;

/// Length of a data-record header inside a chunk
/// (`channel` + `ts` + `kind` + `plen`).
pub const DATA_HEADER_LEN: usize = 15;

/// Length of the chunk-body preamble (`crc` + `count`).
pub const CHUNK_PREAMBLE_LEN: usize = 8;

/// Top-level record opcodes.
pub(crate) mod op {
    pub const HEADER: u8 = 1;
    pub const CHANNEL: u8 = 2;
    pub const CHUNK: u8 = 3;
    pub const FOOTER: u8 = 4;
}

/// Largest accepted top-level record body: a full chunk of
/// [`MAX_FRAME`](crate::framing::MAX_FRAME)-sized payloads plus slack.
/// A corrupted length prefix must not allocate unbounded memory.
pub const MAX_TOP_RECORD: usize = (64 << 20) + (1 << 16);

/// Errors raised by the record & replay subsystem.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a trace, or a record is structurally invalid in a
    /// way that cannot be explained by a torn tail.
    Corrupt(String),
    /// The trace was written by a newer schema than this reader speaks.
    Version(u32),
    /// A wire-codec failure while encoding or decoding a record body.
    Wire(WireError),
    /// The writer was already finished.
    Finished,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Corrupt(s) => write!(f, "corrupt trace: {s}"),
            TraceError::Version(v) => write!(
                f,
                "trace schema v{v} is newer than supported v{TRACE_SCHEMA_VERSION}"
            ),
            TraceError::Wire(e) => write!(f, "trace wire codec error: {e}"),
            TraceError::Finished => write!(f, "trace writer already finished"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<WireError> for TraceError {
    fn from(e: WireError) -> Self {
        TraceError::Wire(e)
    }
}

/// The simulated-network scenario a trace was captured under, serialized
/// into the header so a replay reconstructs the exact [`SimConfig`] —
/// same seed, same latency/jitter/bandwidth/queue — and therefore the
/// exact loss and timing behavior.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Jitter-source seed.
    pub seed: u64,
    /// Propagation latency in nanoseconds.
    pub latency_ns: u64,
    /// Uniform jitter bound in nanoseconds.
    pub jitter_ns: u64,
    /// Link bandwidth in bytes/second (`None` = infinite).
    pub bandwidth_bps: Option<f64>,
    /// Bounded queue size in bytes (drops on overflow).
    pub queue_bytes: u64,
}

impl From<&SimConfig> for ScenarioConfig {
    fn from(cfg: &SimConfig) -> Self {
        ScenarioConfig {
            seed: cfg.seed,
            latency_ns: u64::try_from(cfg.latency.as_nanos()).unwrap_or(u64::MAX),
            jitter_ns: u64::try_from(cfg.jitter.as_nanos()).unwrap_or(u64::MAX),
            bandwidth_bps: cfg.bandwidth_bps,
            queue_bytes: cfg.queue_bytes as u64,
        }
    }
}

impl ScenarioConfig {
    /// Reconstructs the [`SimConfig`] this scenario describes.
    #[must_use]
    pub fn to_sim_config(&self) -> SimConfig {
        SimConfig {
            latency: Duration::from_nanos(self.latency_ns),
            jitter: Duration::from_nanos(self.jitter_ns),
            bandwidth_bps: self.bandwidth_bps,
            queue_bytes: usize::try_from(self.queue_bytes).unwrap_or(usize::MAX),
            seed: self.seed,
        }
    }
}

/// The trace file header (op 1, always the first record).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceHeader {
    /// The writer's [`TRACE_SCHEMA_VERSION`].
    pub version: u32,
    /// A human-chosen trace name (the session or experiment label).
    pub name: String,
    /// The simulated-network scenario, when the recorded session ran on
    /// a [`SimTransport`](crate::SimTransport).
    pub scenario: Option<ScenarioConfig>,
}

/// A channel declaration (op 2): the trace-local id data records refer
/// to, plus enough of the channel's typespec to re-register the flow on
/// replay.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChannelDecl {
    /// Trace-local channel id, referenced by data records.
    pub id: u16,
    /// The channel's name (usually the link or stage name).
    pub name: String,
    /// The flow's item type name ([`ItemType::name`]).
    pub item: String,
    /// The flow's location property, if stamped.
    pub location: Option<String>,
    /// QoS ranges as `(key, min, max)` triples (display-keyed;
    /// informational).
    pub qos: Vec<(String, f64, f64)>,
}

impl ChannelDecl {
    /// A declaration with the given id, name, and item type name.
    #[must_use]
    pub fn new(id: u16, name: impl Into<String>, item: impl Into<String>) -> ChannelDecl {
        ChannelDecl {
            id,
            name: name.into(),
            item: item.into(),
            location: None,
            qos: Vec::new(),
        }
    }

    /// Captures a channel's [`Typespec`] into a declaration.
    #[must_use]
    pub fn describe(id: u16, name: impl Into<String>, spec: &Typespec) -> ChannelDecl {
        ChannelDecl {
            id,
            name: name.into(),
            item: spec.item().name().to_owned(),
            location: spec.location().map(str::to_owned),
            qos: spec
                .qos_map()
                .iter()
                .map(|(k, r)| (k.to_string(), r.min(), r.max()))
                .collect(),
        }
    }

    /// Reconstructs a [`Typespec`] carrying the declared item type and
    /// location (QoS triples are informational and not reconstructed —
    /// their keys are display-form).
    #[must_use]
    pub fn to_typespec(&self) -> Typespec {
        let spec = Typespec::with_item_type(ItemType::named(self.item.clone()));
        match &self.location {
            Some(loc) => spec.at_location(loc.clone()),
            None => spec,
        }
    }
}

/// One entry of the footer's chunk index.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChunkIndexEntry {
    /// File offset of the chunk's top-level record header.
    pub offset: u64,
    /// Data records in the chunk.
    pub records: u32,
    /// Virtual timestamp of the chunk's first record (ns).
    pub first_ts: u64,
    /// Virtual timestamp of the chunk's last record (ns).
    pub last_ts: u64,
}

/// The trace footer (op 4, last record of a cleanly closed trace): a
/// chunk index for random access plus whole-trace totals. A trace
/// without a footer is readable — the reader rebuilds everything by
/// scanning — but reports `clean_close = false`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceFooter {
    /// Index of every chunk, in file order.
    pub chunks: Vec<ChunkIndexEntry>,
    /// Total data records in the trace.
    pub records: u64,
    /// Total payload bytes in the trace.
    pub bytes: u64,
}

/// One data record, as parsed back out of a chunk.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// The channel the frame travelled on.
    pub channel: u16,
    /// Virtual timestamp (kernel nanoseconds) at capture.
    pub ts_ns: u64,
    /// What the frame carried.
    pub kind: FrameKind,
    /// The frame payload. For records parsed from a chunk this is a
    /// zero-copy slice of the chunk's (pooled) buffer.
    pub payload: PayloadBytes,
}

/// Assembles the fixed data-record header on the stack.
pub(crate) fn encode_data_header(
    channel: u16,
    ts_ns: u64,
    kind: FrameKind,
    payload_len: usize,
) -> [u8; DATA_HEADER_LEN] {
    let plen = u32::try_from(payload_len).expect("payload below MAX_FRAME fits in u32");
    let mut h = [0u8; DATA_HEADER_LEN];
    h[0..2].copy_from_slice(&channel.to_le_bytes());
    h[2..10].copy_from_slice(&ts_ns.to_le_bytes());
    h[10] = kind.to_byte();
    h[11..15].copy_from_slice(&plen.to_le_bytes());
    h
}

/// Assembles a top-level record header on the stack.
pub(crate) fn encode_top_header(op: u8, body_len: usize) -> [u8; TOP_HEADER_LEN] {
    let len = u32::try_from(body_len).expect("top-level body below MAX_TOP_RECORD fits in u32");
    let mut h = [0u8; TOP_HEADER_LEN];
    h[0] = op;
    h[1..].copy_from_slice(&len.to_le_bytes());
    h
}

/// Encodes a wire-framed top-level record (header/decl/footer bodies).
pub(crate) fn encode_wire_record<T: Serialize>(op: u8, value: &T) -> Result<Vec<u8>, TraceError> {
    let body = wire::to_bytes(value)?;
    let mut out = Vec::with_capacity(TOP_HEADER_LEN + body.len());
    out.extend_from_slice(&encode_top_header(op, body.len()));
    out.extend_from_slice(&body);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_round_trips_a_sim_config() {
        let cfg = SimConfig {
            latency: Duration::from_millis(20),
            jitter: Duration::from_micros(300),
            bandwidth_bps: Some(8000.0),
            queue_bytes: 2048,
            seed: 9,
        };
        let scen = ScenarioConfig::from(&cfg);
        let back = scen.to_sim_config();
        assert_eq!(back.latency, cfg.latency);
        assert_eq!(back.jitter, cfg.jitter);
        assert_eq!(back.bandwidth_bps, cfg.bandwidth_bps);
        assert_eq!(back.queue_bytes, cfg.queue_bytes);
        assert_eq!(back.seed, cfg.seed);
    }

    #[test]
    fn header_and_footer_round_trip_through_wire() {
        let header = TraceHeader {
            version: TRACE_SCHEMA_VERSION,
            name: "session-1".into(),
            scenario: Some(ScenarioConfig {
                seed: 3,
                latency_ns: 1_000_000,
                jitter_ns: 0,
                bandwidth_bps: None,
                queue_bytes: 1 << 20,
            }),
        };
        let bytes = wire::to_bytes(&header).unwrap();
        let back: TraceHeader = wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, header);

        let footer = TraceFooter {
            chunks: vec![ChunkIndexEntry {
                offset: 13,
                records: 2,
                first_ts: 5,
                last_ts: 9,
            }],
            records: 2,
            bytes: 128,
        };
        let bytes = wire::to_bytes(&footer).unwrap();
        let back: TraceFooter = wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, footer);
    }

    #[test]
    fn channel_decl_captures_and_rebuilds_a_typespec() {
        let spec = Typespec::of::<u32>().at_location("sim://edge");
        let decl = ChannelDecl::describe(4, "uplink", &spec);
        assert_eq!(decl.id, 4);
        assert_eq!(decl.item, spec.item().name());
        assert_eq!(decl.location.as_deref(), Some("sim://edge"));

        let back = decl.to_typespec();
        assert_eq!(back.item().name(), spec.item().name());
        assert_eq!(back.location(), Some("sim://edge"));
    }

    #[test]
    fn data_header_layout_is_fixed() {
        let h = encode_data_header(0x0102, 0x0304_0506_0708_090A, FrameKind::Control, 7);
        assert_eq!(h[0..2], 0x0102u16.to_le_bytes());
        assert_eq!(h[2..10], 0x0304_0506_0708_090Au64.to_le_bytes());
        assert_eq!(h[10], FrameKind::Control.to_byte());
        assert_eq!(h[11..15], 7u32.to_le_bytes());
    }
}
