//! The append-only chunked trace writer.
//!
//! A [`TraceWriter`] is a cheaply cloneable handle (taps on several
//! links share one writer) accumulating data records into an in-memory
//! chunk: each [`record`](TraceWriter::record) stores a stack-assembled
//! 15-byte header plus the payload's refcounted [`PayloadBytes`] handle
//! — **no payload copy**. When the chunk reaches its
//! [`ChunkPolicy`] bound it is flushed as one vectored write
//! (header slices interleaved with payload slices, via the same
//! [`write_all_vectored`](crate::framing) path the TCP backend batches
//! through), with a CRC-32 over the record region computed incrementally
//! at record time.

use super::format::{
    self, op, ChannelDecl, ChunkIndexEntry, ScenarioConfig, TraceError, TraceFooter, TraceHeader,
    CHUNK_PREAMBLE_LEN, DATA_HEADER_LEN, TOP_HEADER_LEN, TRACE_MAGIC, TRACE_SCHEMA_VERSION,
};
use crate::framing::{self, FrameKind, MAX_FRAME};
use crate::transport::{Frame, SimConfig};
use crate::wire;
use infopipes::PayloadBytes;
use parking_lot::Mutex;
use std::fs::File;
use std::io::{BufWriter, IoSlice, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// When an in-memory chunk is flushed to the file.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ChunkPolicy {
    /// Maximum data records per chunk.
    pub max_records: usize,
    /// Maximum payload bytes per chunk.
    pub max_bytes: usize,
}

impl Default for ChunkPolicy {
    fn default() -> ChunkPolicy {
        ChunkPolicy {
            max_records: 64,
            max_bytes: 256 * 1024,
        }
    }
}

/// Lock-free counters shared between a [`TraceWriter`] and the
/// inspector ([`crate::inspect::register_recorder`]).
#[derive(Debug, Default)]
pub struct RecorderCounters {
    records: AtomicU64,
    payload_bytes: AtomicU64,
    file_bytes: AtomicU64,
    chunk_flushes: AtomicU64,
}

impl RecorderCounters {
    /// Data records accepted so far.
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Payload bytes accepted so far.
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes.load(Ordering::Relaxed)
    }

    /// Bytes written to the file so far (headers, chunks, footer).
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes.load(Ordering::Relaxed)
    }

    /// Chunks flushed so far.
    pub fn chunk_flushes(&self) -> u64 {
        self.chunk_flushes.load(Ordering::Relaxed)
    }

    /// A plain-value snapshot.
    pub fn snapshot(&self) -> RecorderStats {
        RecorderStats {
            records: self.records(),
            payload_bytes: self.payload_bytes(),
            file_bytes: self.file_bytes(),
            chunk_flushes: self.chunk_flushes(),
        }
    }
}

/// A point-in-time view of a writer's [`RecorderCounters`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Data records accepted.
    pub records: u64,
    /// Payload bytes accepted.
    pub payload_bytes: u64,
    /// Bytes written to the file.
    pub file_bytes: u64,
    /// Chunks flushed.
    pub chunk_flushes: u64,
}

/// One pending data record: its stack-encoded header and the payload
/// handle (shared, never copied).
struct Pending {
    header: [u8; DATA_HEADER_LEN],
    payload: PayloadBytes,
}

struct WriterInner {
    sink: Box<dyn Write + Send>,
    policy: ChunkPolicy,
    /// Records of the open (unflushed) chunk.
    pending: Vec<Pending>,
    pending_payload_bytes: usize,
    /// Incremental CRC over the open chunk's record region.
    crc: infopipes::Crc32,
    chunk_first_ts: u64,
    chunk_last_ts: u64,
    /// File offset where the *next* top-level record lands.
    offset: u64,
    index: Vec<ChunkIndexEntry>,
    total_records: u64,
    total_payload_bytes: u64,
    finished: bool,
}

impl WriterInner {
    fn write_raw(&mut self, bytes: &[u8], counters: &RecorderCounters) -> Result<(), TraceError> {
        self.sink.write_all(bytes)?;
        self.offset += bytes.len() as u64;
        counters
            .file_bytes
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Flushes the open chunk as one vectored write:
    /// `[op][len][crc][count]` on the stack, then each record's header
    /// and payload as alternating [`IoSlice`]s.
    fn flush_chunk(&mut self, counters: &RecorderCounters) -> Result<(), TraceError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let records_len: usize = self
            .pending
            .iter()
            .map(|p| DATA_HEADER_LEN + p.payload.len())
            .sum();
        let body_len = CHUNK_PREAMBLE_LEN + records_len;
        let chunk_offset = self.offset;

        let mut preamble = [0u8; TOP_HEADER_LEN + CHUNK_PREAMBLE_LEN];
        preamble[..TOP_HEADER_LEN].copy_from_slice(&format::encode_top_header(op::CHUNK, body_len));
        preamble[TOP_HEADER_LEN..TOP_HEADER_LEN + 4]
            .copy_from_slice(&self.crc.value().to_le_bytes());
        preamble[TOP_HEADER_LEN + 4..].copy_from_slice(
            &u32::try_from(self.pending.len())
                .expect("chunk record count fits in u32")
                .to_le_bytes(),
        );

        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(1 + self.pending.len() * 2);
        slices.push(IoSlice::new(&preamble));
        for p in &self.pending {
            slices.push(IoSlice::new(&p.header));
            slices.push(IoSlice::new(p.payload.as_slice()));
        }
        framing::write_all_vectored(&mut self.sink, &mut slices)?;
        drop(slices);

        let written = (TOP_HEADER_LEN + body_len) as u64;
        self.offset += written;
        counters.file_bytes.fetch_add(written, Ordering::Relaxed);
        counters.chunk_flushes.fetch_add(1, Ordering::Relaxed);
        self.index.push(ChunkIndexEntry {
            offset: chunk_offset,
            records: self.pending.len() as u32,
            first_ts: self.chunk_first_ts,
            last_ts: self.chunk_last_ts,
        });
        self.pending.clear();
        self.pending_payload_bytes = 0;
        self.crc = infopipes::Crc32::new();
        Ok(())
    }

    fn finish(&mut self, counters: &RecorderCounters) -> Result<(), TraceError> {
        if self.finished {
            return Ok(());
        }
        self.flush_chunk(counters)?;
        let footer = TraceFooter {
            chunks: std::mem::take(&mut self.index),
            records: self.total_records,
            bytes: self.total_payload_bytes,
        };
        let rec = format::encode_wire_record(op::FOOTER, &footer)?;
        self.write_raw(&rec, counters)?;
        self.sink.flush()?;
        self.finished = true;
        Ok(())
    }
}

struct Shared {
    inner: Mutex<WriterInner>,
    counters: Arc<RecorderCounters>,
}

/// A handle onto one trace file being written. Cheap to clone; clones
/// share the file, the open chunk, and the counters.
#[derive(Clone)]
pub struct TraceWriter {
    shared: Arc<Shared>,
}

impl TraceWriter {
    /// Creates a trace file at `path` (truncating any existing file) and
    /// writes the magic + header. `scenario` should carry the
    /// [`SimConfig`] of the recorded network when there is one, so a
    /// replay can reconstruct the exact scenario.
    ///
    /// # Errors
    ///
    /// I/O or wire-codec failures writing the preamble.
    pub fn create(
        path: impl AsRef<Path>,
        name: &str,
        scenario: Option<&SimConfig>,
    ) -> Result<TraceWriter, TraceError> {
        let file = BufWriter::new(File::create(path)?);
        TraceWriter::to_sink(Box::new(file), name, scenario)
    }

    /// Like [`TraceWriter::create`] over an arbitrary sink (tests,
    /// in-memory captures).
    ///
    /// # Errors
    ///
    /// I/O or wire-codec failures writing the preamble.
    pub fn to_sink(
        sink: Box<dyn Write + Send>,
        name: &str,
        scenario: Option<&SimConfig>,
    ) -> Result<TraceWriter, TraceError> {
        let counters = Arc::new(RecorderCounters::default());
        let mut inner = WriterInner {
            sink,
            policy: ChunkPolicy::default(),
            pending: Vec::new(),
            pending_payload_bytes: 0,
            crc: infopipes::Crc32::new(),
            chunk_first_ts: 0,
            chunk_last_ts: 0,
            offset: 0,
            index: Vec::new(),
            total_records: 0,
            total_payload_bytes: 0,
            finished: false,
        };
        inner.write_raw(&TRACE_MAGIC, &counters)?;
        let header = TraceHeader {
            version: TRACE_SCHEMA_VERSION,
            name: name.to_owned(),
            scenario: scenario.map(ScenarioConfig::from),
        };
        let rec = format::encode_wire_record(op::HEADER, &header)?;
        inner.write_raw(&rec, &counters)?;
        Ok(TraceWriter {
            shared: Arc::new(Shared {
                inner: Mutex::new(inner),
                counters,
            }),
        })
    }

    /// Overrides the chunk flush policy (builder style; affects all
    /// clones).
    #[must_use]
    pub fn with_chunk_policy(self, policy: ChunkPolicy) -> TraceWriter {
        self.shared.inner.lock().policy = policy;
        self
    }

    /// Declares a channel. The open chunk is flushed first so the
    /// declaration precedes every data record that follows it in file
    /// order.
    ///
    /// # Errors
    ///
    /// [`TraceError::Finished`] after [`finish`](TraceWriter::finish);
    /// I/O or wire-codec failures otherwise.
    pub fn declare_channel(&self, decl: &ChannelDecl) -> Result<(), TraceError> {
        let mut inner = self.shared.inner.lock();
        if inner.finished {
            return Err(TraceError::Finished);
        }
        inner.flush_chunk(&self.shared.counters)?;
        let rec = format::encode_wire_record(op::CHANNEL, decl)?;
        inner.write_raw(&rec, &self.shared.counters)
    }

    /// Appends one data record. The payload handle is shared into the
    /// open chunk — zero copies — and written out when the chunk
    /// flushes.
    ///
    /// # Errors
    ///
    /// [`TraceError::Finished`] after [`finish`](TraceWriter::finish);
    /// [`TraceError::Corrupt`] for oversized payloads; I/O failures on a
    /// policy-triggered flush.
    pub fn record(
        &self,
        channel: u16,
        ts_ns: u64,
        kind: FrameKind,
        payload: PayloadBytes,
    ) -> Result<(), TraceError> {
        if payload.len() > MAX_FRAME {
            return Err(TraceError::Corrupt(format!(
                "payload of {} bytes exceeds MAX_FRAME",
                payload.len()
            )));
        }
        let mut inner = self.shared.inner.lock();
        if inner.finished {
            return Err(TraceError::Finished);
        }
        let header = format::encode_data_header(channel, ts_ns, kind, payload.len());
        inner.crc.update(&header);
        inner.crc.update(payload.as_slice());
        if inner.pending.is_empty() {
            inner.chunk_first_ts = ts_ns;
        }
        inner.chunk_last_ts = ts_ns;
        inner.pending_payload_bytes += payload.len();
        inner.total_records += 1;
        inner.total_payload_bytes += payload.len() as u64;
        self.shared.counters.records.fetch_add(1, Ordering::Relaxed);
        self.shared
            .counters
            .payload_bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        inner.pending.push(Pending { header, payload });
        if inner.pending.len() >= inner.policy.max_records
            || inner.pending_payload_bytes >= inner.policy.max_bytes
        {
            inner.flush_chunk(&self.shared.counters)?;
        }
        Ok(())
    }

    /// Records a transport [`Frame`]: data payloads are shared
    /// (zero-copy); events are wire-encoded; control bytes are wrapped;
    /// `Fin` is a zero-length record.
    ///
    /// # Errors
    ///
    /// As [`TraceWriter::record`], plus wire-codec failures for events.
    pub fn record_frame(&self, channel: u16, ts_ns: u64, frame: &Frame) -> Result<(), TraceError> {
        let (kind, payload) = match frame {
            Frame::Data(p) => (FrameKind::Data, p.clone()),
            Frame::Event(ev) => (FrameKind::Event, wire::to_payload(ev)?),
            Frame::Control(v) => (FrameKind::Control, PayloadBytes::from_vec(v.clone())),
            Frame::Fin => (FrameKind::Fin, PayloadBytes::new()),
        };
        self.record(channel, ts_ns, kind, payload)
    }

    /// Flushes the open chunk (if any) to the file.
    ///
    /// # Errors
    ///
    /// I/O failures; [`TraceError::Finished`] after `finish`.
    pub fn flush(&self) -> Result<(), TraceError> {
        let mut inner = self.shared.inner.lock();
        if inner.finished {
            return Err(TraceError::Finished);
        }
        inner.flush_chunk(&self.shared.counters)?;
        inner.sink.flush()?;
        Ok(())
    }

    /// Flushes everything and writes the footer index. Idempotent;
    /// called automatically when the last handle drops.
    ///
    /// # Errors
    ///
    /// I/O or wire-codec failures writing the tail.
    pub fn finish(&self) -> Result<(), TraceError> {
        self.shared.inner.lock().finish(&self.shared.counters)
    }

    /// The shared counters (hand to
    /// [`register_recorder`](crate::inspect::register_recorder)).
    #[must_use]
    pub fn counters(&self) -> Arc<RecorderCounters> {
        Arc::clone(&self.shared.counters)
    }

    /// A point-in-time stats snapshot.
    #[must_use]
    pub fn stats(&self) -> RecorderStats {
        self.shared.counters.snapshot()
    }
}

impl Drop for Shared {
    fn drop(&mut self) {
        // Best-effort clean close; a torn tail is recoverable anyway.
        let _ = self.inner.get_mut().finish(&self.counters);
    }
}

impl std::fmt::Debug for TraceWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceWriter")
            .field("stats", &self.stats())
            .finish()
    }
}
