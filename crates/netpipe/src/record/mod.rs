//! Record & replay: capture pipeline traffic, re-run it
//! bit-identically.
//!
//! Every scenario the middleware serves can become a repeatable
//! regression test and a benchmark workload: a recorded trace is a
//! *reified scenario* — the traffic, its virtual timing, the channel
//! typespecs, and the simulated-network configuration it ran under, all
//! in one append-only file.
//!
//! The pieces:
//!
//! * **Format** ([`mod@format`]): an MCAP-inspired chunked container —
//!   magic + versioned header ([`TRACE_SCHEMA_VERSION`]), channel
//!   declaration records ([`ChannelDecl`]), CRC-guarded chunks of data
//!   records `{channel, virtual timestamp, frame kind, payload}`, and a
//!   footer index ([`TraceFooter`]). The sim scenario
//!   ([`ScenarioConfig`]) is serialized into the header so a replay
//!   reconstructs the exact network.
//! * **Writer** ([`TraceWriter`]): append-only, chunked, zero-copy —
//!   payloads are shared by refcount into the open chunk and written
//!   with one vectored write per chunk.
//! * **Taps** ([`RecordingLink`], [`Recorder`]): attach recording to
//!   any link or pipeline edge without copying payloads; timestamps
//!   come from the kernel clock, so recordings under virtual time are
//!   deterministic.
//! * **Reader** ([`TraceReader`]): pooled zero-copy chunk reads,
//!   crash-safe torn-tail recovery (open never fails on pure
//!   truncation; the dropped byte count is reported), forward-compatible
//!   skipping of unknown record types.
//! * **Replayer** ([`Replayer`]): re-offers the trace to live links at
//!   recorded timestamps (or as fast as possible) from a kernel thread,
//!   preserving record order — and with it the control-overtakes-data
//!   priority. Replaying the same trace twice over the same seeded
//!   scenario is byte-identical, verified end to end with
//!   [`DigestSink`].
//!
//! See `docs/record_replay.md` for the format specification and replay
//! semantics.

pub mod format;
mod reader;
mod recorder;
mod replayer;
mod writer;

pub use format::{
    ChannelDecl, ChunkIndexEntry, ScenarioConfig, TraceError, TraceFooter, TraceHeader,
    TraceRecord, TRACE_MAGIC, TRACE_SCHEMA_VERSION,
};
pub use reader::TraceReader;
pub use recorder::{DigestProbe, DigestSink, Recorder, RecordingLink};
pub use replayer::{record_to_frame, ReplayCounters, ReplayHandle, ReplayMode, Replayer};
pub use writer::{ChunkPolicy, RecorderCounters, RecorderStats, TraceWriter};
