//! The replayer: a kernel thread that feeds recorded records back into
//! live links at their recorded virtual timestamps.
//!
//! Replay is **sequential by record order**: the replay thread walks
//! the trace front to back, scheduling itself a wake-up timer
//! ([`Ctx::set_timer`]) for each record whose timestamp lies ahead of
//! the virtual clock, and sending every due record through
//! [`Link::send_via`] before sleeping again. Sequential delivery is
//! what preserves the control-overtakes-data property end to end: a
//! [`FrameKind::Control`] or event record captured ahead of queued data
//! is re-offered to the link in exactly that relative order, and the
//! link's own control lane does the overtaking — the same division of
//! labor as live traffic.
//!
//! Under a virtual-time kernel the entire replay is deterministic: the
//! clock only advances to the next timer deadline, so every record is
//! sent at *exactly* its recorded nanosecond. Kick-off uses
//! [`Kernel::freeze_clock`] + [`ExternalPort::send_at`] so the first
//! record's deadline is registered before the clock starts moving.

use super::format::{TraceError, TraceRecord};
use super::reader::TraceReader;
use crate::framing::FrameKind;
use crate::proto::WireEvent;
use crate::transport::{Frame, Link, SendStatus};
use crate::wire;
use infopipes::PayloadBytes;
use mbthread::{Ctx, Envelope, Flow, Kernel, Message, Tag, ThreadId, Time};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Replay thread self-wakeup.
const REPLAY_KICK: Tag = Tag(0x5250_0001);

/// How replay timing maps recorded timestamps onto the clock.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReplayMode {
    /// Deliver each record at its recorded virtual timestamp (the
    /// default: bit-identical timing under virtual time).
    AsRecorded,
    /// Ignore timestamps and deliver everything immediately, in order
    /// (`--as-fast-as-possible`): same frames, same order, compressed
    /// schedule.
    AsFastAsPossible,
}

/// Lock-free counters shared between a running replay and the
/// inspector ([`crate::inspect::register_replayer`]).
#[derive(Debug, Default)]
pub struct ReplayCounters {
    frames: AtomicU64,
    bytes: AtomicU64,
    unroutable: AtomicU64,
    send_failures: AtomicU64,
    lag_last_ns: AtomicU64,
    lag_max_ns: AtomicU64,
    done: AtomicBool,
}

impl ReplayCounters {
    /// Frames re-offered to links so far.
    pub fn frames(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Payload bytes re-offered so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Records skipped because no link is routed for their channel.
    pub fn unroutable(&self) -> u64 {
        self.unroutable.load(Ordering::Relaxed)
    }

    /// Sends the link reported [`SendStatus::Closed`] for.
    pub fn send_failures(&self) -> u64 {
        self.send_failures.load(Ordering::Relaxed)
    }

    /// How far behind its recorded timestamp the most recent frame went
    /// out (ns). Always 0 under an unloaded virtual-time kernel.
    pub fn lag_last_ns(&self) -> u64 {
        self.lag_last_ns.load(Ordering::Relaxed)
    }

    /// The worst lag observed (ns).
    pub fn lag_max_ns(&self) -> u64 {
        self.lag_max_ns.load(Ordering::Relaxed)
    }

    /// Whether the replay has delivered its last record.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

/// Rebuilds a transport [`Frame`] from a recorded `(kind, payload)`.
///
/// Data payloads move zero-copy (the frame shares the trace chunk's
/// buffer); events are wire-decoded; control bytes are copied out of
/// the shared buffer into the `Vec` the frame variant requires.
///
/// # Errors
///
/// [`TraceError::Wire`] when an event payload fails to decode.
pub fn record_to_frame(kind: FrameKind, payload: &PayloadBytes) -> Result<Frame, TraceError> {
    Ok(match kind {
        FrameKind::Data => Frame::Data(payload.clone()),
        FrameKind::Event => Frame::Event(wire::from_bytes::<WireEvent>(payload.as_slice())?),
        FrameKind::Control => Frame::Control(payload.as_slice().to_vec()),
        FrameKind::Fin => Frame::Fin,
    })
}

struct ReplayFn<L: Link> {
    records: Vec<TraceRecord>,
    next: usize,
    routes: HashMap<u16, L>,
    mode: ReplayMode,
    counters: Arc<ReplayCounters>,
}

impl<L: Link> ReplayFn<L> {
    fn send_record(&self, ctx: &mut Ctx<'_>, idx: usize) {
        let rec = &self.records[idx];
        let Some(link) = self.routes.get(&rec.channel) else {
            self.counters.unroutable.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let frame = match record_to_frame(rec.kind, &rec.payload) {
            Ok(frame) => frame,
            Err(_) => {
                self.counters.send_failures.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        if matches!(self.mode, ReplayMode::AsRecorded) {
            let lag = ctx.now().as_nanos().saturating_sub(rec.ts_ns);
            self.counters.lag_last_ns.store(lag, Ordering::Relaxed);
            self.counters.lag_max_ns.fetch_max(lag, Ordering::Relaxed);
        }
        let status = link.send_via(&mut |to, msg| ctx.send(to, msg).is_ok(), frame);
        if matches!(status, SendStatus::Closed) {
            self.counters.send_failures.fetch_add(1, Ordering::Relaxed);
        }
        self.counters.frames.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes
            .fetch_add(rec.payload.len() as u64, Ordering::Relaxed);
    }
}

impl<L: Link> mbthread::CodeFn for ReplayFn<L> {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, env: Envelope) -> Flow {
        if env.tag() != REPLAY_KICK {
            return Flow::Continue;
        }
        while self.next < self.records.len() {
            if matches!(self.mode, ReplayMode::AsRecorded) {
                let at = Time::from_nanos(self.records[self.next].ts_ns);
                if at > ctx.now() {
                    // Not due yet: sleep until the recorded timestamp.
                    let _ = ctx.set_timer(at, Message::signal(REPLAY_KICK), None);
                    return Flow::Continue;
                }
            }
            let idx = self.next;
            self.next += 1;
            self.send_record(ctx, idx);
        }
        self.counters.done.store(true, Ordering::Release);
        Flow::Stop
    }
}

/// A trace replayer: routes recorded channels onto live links and
/// launches the replay thread.
pub struct Replayer<L: Link> {
    kernel: Kernel,
    mode: ReplayMode,
    routes: HashMap<u16, L>,
}

/// A handle onto a launched replay.
#[derive(Clone, Debug)]
pub struct ReplayHandle {
    thread: ThreadId,
    counters: Arc<ReplayCounters>,
}

impl ReplayHandle {
    /// The replay thread's id.
    #[must_use]
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The shared counters (hand to
    /// [`register_replayer`](crate::inspect::register_replayer)).
    #[must_use]
    pub fn counters(&self) -> Arc<ReplayCounters> {
        Arc::clone(&self.counters)
    }

    /// Whether the replay delivered its last record.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.counters.is_done()
    }
}

impl<L: Link> Replayer<L> {
    /// A replayer on `kernel` with the given timing mode.
    #[must_use]
    pub fn new(kernel: &Kernel, mode: ReplayMode) -> Replayer<L> {
        Replayer {
            kernel: kernel.clone(),
            mode,
            routes: HashMap::new(),
        }
    }

    /// Routes a recorded channel onto a live link (builder style).
    #[must_use]
    pub fn route(mut self, channel: u16, link: L) -> Replayer<L> {
        self.routes.insert(channel, link);
        self
    }

    /// Launches the replay of `reader`'s records.
    ///
    /// The clock is frozen across kick-off
    /// ([`Kernel::freeze_clock`]), the first wake-up is scheduled at
    /// the first record's timestamp via [`ExternalPort::send_at`]
    /// ([`Time::ZERO`] for [`ReplayMode::AsFastAsPossible`]), and only
    /// then is the clock released — so a virtual-time kernel cannot run
    /// past the first deadline before it exists.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] if the kernel refuses the spawn (shutdown).
    ///
    /// [`ExternalPort::send_at`]: mbthread::ExternalPort::send_at
    pub fn launch(self, reader: &TraceReader) -> Result<ReplayHandle, TraceError> {
        self.launch_records(reader.records.clone())
    }

    /// Like [`Replayer::launch`] over an explicit record list (already
    /// filtered or sliced by the caller).
    ///
    /// # Errors
    ///
    /// As [`Replayer::launch`].
    pub fn launch_records(self, records: Vec<TraceRecord>) -> Result<ReplayHandle, TraceError> {
        let counters = Arc::new(ReplayCounters::default());
        let kick_at = match self.mode {
            ReplayMode::AsRecorded => Time::from_nanos(records.first().map_or(0, |r| r.ts_ns)),
            ReplayMode::AsFastAsPossible => Time::ZERO,
        };
        let empty = records.is_empty();
        let replay = ReplayFn {
            records,
            next: 0,
            routes: self.routes,
            mode: self.mode,
            counters: Arc::clone(&counters),
        };
        let hold = self.kernel.freeze_clock();
        let thread = self
            .kernel
            .spawn("trace-replay", replay)
            .map_err(|_| TraceError::Io(std::io::Error::other("kernel is shutting down")))?;
        if empty {
            counters.done.store(true, Ordering::Release);
        }
        let port = self.kernel.external("trace-replay-kick");
        port.send_at(thread, kick_at, Message::signal(REPLAY_KICK))
            .map_err(|e| TraceError::Io(std::io::Error::other(format!("replay kick-off: {e}"))))?;
        drop(hold);
        Ok(ReplayHandle { thread, counters })
    }
}

impl<L: Link> std::fmt::Debug for Replayer<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replayer")
            .field("mode", &self.mode)
            .field("channels", &self.routes.keys().collect::<Vec<_>>())
            .finish()
    }
}
