//! Recorder taps: attaching a [`TraceWriter`] to the places traffic
//! flows through, without copying payloads.
//!
//! * [`RecordingLink`] wraps any [`Link`]: every frame offered to the
//!   send side is recorded (shared by refcount) *before* it is handed
//!   to the inner link. The tap records **offered** traffic — what the
//!   application sent, not what the network delivered — so a replay
//!   through the same seeded [`SimConfig`](crate::SimConfig) reproduces
//!   the original drops instead of baking them in.
//! * [`Recorder`] is a pipeline [`Function`] stage for taps on a
//!   pipeline edge: it passes [`WireBytes`] items through unchanged and
//!   records them as data frames.
//! * [`DigestSink`] is the verification consumer: it folds every
//!   delivered payload into a frame-aware [`Digest64`], which is how
//!   replay determinism is asserted end to end.
//!
//! Timestamps come from the kernel clock ([`Kernel::now`]), so a
//! recording under virtual time is itself deterministic.

use super::writer::TraceWriter;
use crate::framing::FrameKind;
use crate::marshal::WireBytes;
use crate::transport::{
    Frame, KernelPost, Link, LinkStats, PeerIdentity, RecvOutcome, SendStatus, TransportError,
};
use infopipes::{
    Consumer, ControlEvent, Digest64, InboxSender, Item, ItemType, Stage, StageCtx, Typespec,
};
use mbthread::Kernel;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A link wrapper that records every frame offered to its send side.
///
/// Cheap to clone (clones share the inner link and the writer); drops
/// in anywhere a [`Link`] is expected, so an existing pipeline gains
/// recording by swapping its link handle.
#[derive(Clone)]
pub struct RecordingLink<L: Link> {
    inner: L,
    writer: TraceWriter,
    channel: u16,
    kernel: Kernel,
}

impl<L: Link> RecordingLink<L> {
    /// Taps `link`: frames sent through the returned handle are recorded
    /// under `channel` with timestamps from `kernel`'s clock.
    #[must_use]
    pub fn attach(link: L, writer: TraceWriter, channel: u16, kernel: &Kernel) -> RecordingLink<L> {
        RecordingLink {
            inner: link,
            writer,
            channel,
            kernel: kernel.clone(),
        }
    }

    /// The wrapped link.
    #[must_use]
    pub fn inner(&self) -> &L {
        &self.inner
    }

    fn tap(&self, frame: &Frame) {
        // A full disk must not take the data path down with it: the tap
        // drops the record, never the frame.
        let _ = self
            .writer
            .record_frame(self.channel, self.kernel.now().as_nanos(), frame);
    }
}

impl<L: Link> Link for RecordingLink<L> {
    fn peer(&self) -> PeerIdentity {
        self.inner.peer()
    }

    fn send(&self, frame: Frame) -> SendStatus {
        self.tap(&frame);
        self.inner.send(frame)
    }

    fn send_ready(&self) -> bool {
        self.inner.send_ready()
    }

    fn send_via(&self, post: KernelPost<'_>, frame: Frame) -> SendStatus {
        self.tap(&frame);
        self.inner.send_via(post, frame)
    }

    fn recv(&self, timeout: Duration) -> RecvOutcome {
        self.inner.recv(timeout)
    }

    fn bind_receiver(
        &self,
        inbox: Option<InboxSender>,
        on_event: impl Fn(ControlEvent) + Send + 'static,
    ) -> Result<(), TransportError> {
        self.inner.bind_receiver(inbox, on_event)
    }

    fn stats(&self) -> LinkStats {
        self.inner.stats()
    }
}

impl<L: Link> std::fmt::Debug for RecordingLink<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordingLink")
            .field("peer", &self.inner.peer().to_string())
            .field("channel", &self.channel)
            .finish()
    }
}

/// A pass-through pipeline stage recording every [`WireBytes`] item
/// that crosses it as a data record. Attach on any pipeline edge
/// (typically between a `Marshal` and the send end).
pub struct Recorder {
    name: String,
    writer: TraceWriter,
    channel: u16,
    kernel: Kernel,
}

impl Recorder {
    /// A recorder stage writing to `writer` under `channel`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        writer: TraceWriter,
        channel: u16,
        kernel: &Kernel,
    ) -> Recorder {
        Recorder {
            name: name.into(),
            writer,
            channel,
            kernel: kernel.clone(),
        }
    }
}

impl Stage for Recorder {
    fn name(&self) -> &str {
        &self.name
    }

    fn accepts(&self) -> Typespec {
        Typespec::with_item_type(ItemType::of::<WireBytes>())
    }
}

impl infopipes::Function for Recorder {
    fn convert(&mut self, item: Item) -> Option<Item> {
        match item.into_payload::<WireBytes>() {
            Ok((bytes, meta)) => {
                // The record shares the payload by refcount and the item
                // is rebuilt around the same handle: zero copies.
                let _ = self.writer.record(
                    self.channel,
                    self.kernel.now().as_nanos(),
                    FrameKind::Data,
                    bytes.clone(),
                );
                let mut out = Item::bytes(bytes);
                out.meta = meta;
                Some(out)
            }
            Err(item) => Some(item),
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("name", &self.name)
            .field("channel", &self.channel)
            .finish()
    }
}

/// A shared probe onto a [`DigestSink`]'s running digest.
#[derive(Clone, Debug, Default)]
pub struct DigestProbe {
    digest: Arc<Mutex<Digest64>>,
    frames: Arc<AtomicU64>,
}

impl DigestProbe {
    /// The digest over everything consumed so far.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.digest.lock().value()
    }

    /// Frames consumed so far.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }
}

/// A consumer that folds every delivered [`WireBytes`] payload into a
/// frame-aware [`Digest64`] — the far end of a replay-determinism
/// check: two deliveries digest equal iff they carried the same
/// payloads, framed the same way, in the same order.
pub struct DigestSink {
    name: String,
    probe: DigestProbe,
}

impl DigestSink {
    /// A digest sink and its shared probe.
    #[must_use]
    pub fn new(name: impl Into<String>) -> (DigestSink, DigestProbe) {
        let probe = DigestProbe::default();
        (
            DigestSink {
                name: name.into(),
                probe: probe.clone(),
            },
            probe,
        )
    }
}

impl Stage for DigestSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn accepts(&self) -> Typespec {
        Typespec::with_item_type(ItemType::of::<WireBytes>())
    }
}

impl Consumer for DigestSink {
    fn push(&mut self, _ctx: &mut StageCtx<'_, '_>, item: Item) {
        if let Ok((bytes, _)) = item.into_payload::<WireBytes>() {
            self.probe.digest.lock().update(bytes.as_slice());
            self.probe.frames.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for DigestSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DigestSink")
            .field("name", &self.name)
            .finish()
    }
}
