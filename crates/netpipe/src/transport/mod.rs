//! Pluggable netpipe transports (§2.4).
//!
//! "Different transport protocols can be easily integrated into the
//! Infopipe framework as netpipes." This module makes that promise
//! concrete: one [`Transport`] trait with interchangeable backends, so a
//! remote pipeline is assembled identically whether it crosses a TCP
//! socket, the deterministic network simulator, or an in-process channel.
//!
//! # The model
//!
//! A [`Transport`] is a connector factory: [`Transport::listen`] binds an
//! [`Acceptor`], [`Transport::connect`] opens a [`Link`] to it. A link is
//! one bidirectional connection carrying [`Frame`]s on two lanes:
//!
//! * the **data lane** carries [`Frame::Data`] (marshalled items). It is
//!   bounded: [`Link::send`] reports backpressure through [`SendStatus`]
//!   — `Saturated` when the link is congested, `Dropped` when a lossy
//!   backend sheds the frame (the "arbitrary dropping in the network" of
//!   Fig. 1).
//! * the **control lane** carries [`Frame::Event`] (out-of-band control
//!   events), [`Frame::Control`] (factory-protocol messages), and
//!   [`Frame::Fin`]. It is unbounded and has priority: control frames
//!   overtake queued data, matching the paper's high-priority control
//!   events (§2.2).
//!
//! The receive side is either polled ([`Link::recv`], used by the remote
//! factory protocol) or bound to a pipeline ([`Link::bind_receiver`]):
//! data frames feed an [`InboxSender`], events invoke a callback, and
//! `Fin` finishes the inbox. [`NetSendEnd`] is the producer-side pipeline
//! stage — one generic implementation shared by every backend.
//!
//! Each link end keeps [`LinkStats`] ([`Link::stats`]) counting frames
//! sent, delivered, dropped and refused.
//!
//! # Built-in backends
//!
//! | backend | scheme | loss | timing |
//! |---------|--------|------|--------|
//! | [`InProcTransport`] | `inproc` | drops on full ring | immediate |
//! | [`SimTransport`] | `sim` | drops on queue overflow | modelled latency/bandwidth/jitter, deterministic under virtual time |
//! | [`TcpTransport`] | `tcp` | reliable (saturates, never drops) | real sockets |
//! | [`UdpTransport`] | `udp` | lossy datagrams (oversize or overflow shed) | real sockets |
//!
//! # Writing your own backend
//!
//! A new transport (UDP, QUIC, shared memory, …) is a single file:
//!
//! 1. Define the transport value (configuration + any rendezvous state)
//!    and implement [`Transport`] — `scheme`, `listen`, `connect`.
//! 2. Define the link type: a cheaply cloneable handle (backends wrap an
//!    `Arc`) implementing [`Link`]. You must provide [`Link::peer`]
//!    (drives the Typespec *location* rewrite in
//!    [`Unmarshal`](crate::Unmarshal)), [`Link::send`] (map the frame to
//!    your wire; report [`SendStatus`] honestly — backpressure is the
//!    feedback loops' signal), [`Link::recv`], and [`Link::stats`].
//! 3. Keep the two-lane contract: control frames must not wait behind
//!    data frames on the *sending* side. On a single ordered byte stream
//!    (like TCP) it is enough to let control frames jump the local send
//!    queue.
//! 4. Implement `bind_receiver`: enforce the single-binding rule (a
//!    swapped atomic flag), then either drain `recv` on an OS thread
//!    (what the inproc and TCP backends do) or deliver from your own
//!    event loop. Only the simulator delivers in-kernel, to stay
//!    deterministic under virtual time.
//! 5. Run the conformance suite (`crates/netpipe/tests/
//!    transport_conformance.rs`) against the new backend: ordering,
//!    backpressure, control-event priority, and clean shutdown are the
//!    same four properties for everyone.
//!
//! For stream-oriented backends, [`crate::framing`] provides the
//! `Frame` ⇄ byte-stream codec used by the TCP backend.

mod inproc;
mod sim;
mod tcp;
mod udp;

/// Shared in-process rendezvous plumbing for backends whose "network"
/// lives inside the process (sim, inproc): a named registry of
/// endpoints, each with a pending-connection queue the acceptor blocks
/// on. Generic over the link type so every future in-process backend
/// reuses it.
pub(crate) mod rendezvous {
    use super::TransportError;
    use parking_lot::{Condvar, Mutex};
    use std::collections::{HashMap, VecDeque};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    pub(crate) struct Endpoint<L> {
        pending: Mutex<VecDeque<L>>,
        cv: Condvar,
        closed: AtomicBool,
    }

    impl<L> Endpoint<L> {
        /// Hands an accepted-side link to the listener.
        pub(crate) fn offer(&self, link: L) {
            self.pending.lock().push_back(link);
            self.cv.notify_one();
        }
    }

    pub(crate) type Registry<L> = Arc<Mutex<HashMap<String, Arc<Endpoint<L>>>>>;

    pub(crate) fn new_registry<L>() -> Registry<L> {
        Arc::new(Mutex::new(HashMap::new()))
    }

    /// Binds `addr`; the returned handle unbinds on drop.
    pub(crate) fn listen<L>(
        registry: &Registry<L>,
        addr: &str,
    ) -> Result<Bound<L>, TransportError> {
        let mut reg = registry.lock();
        if reg.contains_key(addr) {
            return Err(TransportError::AddrInUse(addr.to_owned()));
        }
        let endpoint = Arc::new(Endpoint {
            pending: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            closed: AtomicBool::new(false),
        });
        reg.insert(addr.to_owned(), Arc::clone(&endpoint));
        Ok(Bound {
            addr: addr.to_owned(),
            endpoint,
            registry: Arc::clone(registry),
        })
    }

    /// Looks up a live listener for a connect attempt.
    pub(crate) fn claim<L>(
        registry: &Registry<L>,
        addr: &str,
    ) -> Result<Arc<Endpoint<L>>, TransportError> {
        let endpoint = registry
            .lock()
            .get(addr)
            .cloned()
            .ok_or_else(|| TransportError::NotFound(addr.to_owned()))?;
        if endpoint.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        Ok(endpoint)
    }

    /// A bound endpoint: the acceptor half of the rendezvous.
    pub(crate) struct Bound<L> {
        addr: String,
        endpoint: Arc<Endpoint<L>>,
        registry: Registry<L>,
    }

    impl<L> Bound<L> {
        pub(crate) fn local_addr(&self) -> String {
            self.addr.clone()
        }

        pub(crate) fn accept(&self) -> Result<L, TransportError> {
            let mut pending = self.endpoint.pending.lock();
            loop {
                if let Some(link) = pending.pop_front() {
                    return Ok(link);
                }
                if self.endpoint.closed.load(Ordering::Acquire) {
                    return Err(TransportError::Closed);
                }
                self.endpoint.cv.wait(&mut pending);
            }
        }

        pub(crate) fn accept_timeout(
            &self,
            timeout: Duration,
        ) -> Result<Option<L>, TransportError> {
            let deadline = Instant::now() + timeout;
            let mut pending = self.endpoint.pending.lock();
            loop {
                if let Some(link) = pending.pop_front() {
                    return Ok(Some(link));
                }
                if self.endpoint.closed.load(Ordering::Acquire) {
                    return Err(TransportError::Closed);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Ok(None);
                }
                let _ = self.endpoint.cv.wait_for(&mut pending, deadline - now);
            }
        }
    }

    impl<L> Drop for Bound<L> {
        fn drop(&mut self) {
            self.endpoint.closed.store(true, Ordering::Release);
            self.endpoint.cv.notify_all();
            self.registry.lock().remove(&self.addr);
        }
    }
}

pub use inproc::{InProcAcceptor, InProcLink, InProcTransport};
pub use sim::{SimAcceptor, SimConfig, SimLink, SimTransport};
pub use tcp::{TcpAcceptor, TcpLink, TcpTransport};
pub use udp::{UdpAcceptor, UdpLink, UdpTransport, DEFAULT_MAX_DATAGRAM};

use crate::marshal::WireBytes;
use crate::proto::WireEvent;
use infopipes::{
    Consumer, ControlEvent, EventCtx, InboxSender, Item, ItemType, Node, PayloadBytes, Pipeline,
    Stage, StageCtx,
};
use mbthread::{Message, ThreadId};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use typespec::Typespec;

// ---------------------------------------------------------------------
// Vocabulary types
// ---------------------------------------------------------------------

/// One message travelling over a netpipe transport.
///
/// Data frames carry [`PayloadBytes`]: cloning a frame (or teeing it to
/// several links) shares the sealed buffer by refcount, so the transport
/// layer never copies a payload it did not itself read off a wire.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// A marshalled data item (data lane).
    Data(PayloadBytes),
    /// An out-of-band control event (control lane, priority).
    Event(WireEvent),
    /// A factory/query protocol message (control lane, priority).
    Control(Vec<u8>),
    /// Orderly end of stream (control lane).
    Fin,
}

/// The backpressure signal of a frame-level send.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SendStatus {
    /// Accepted for transmission.
    Sent,
    /// Accepted, but the link is congested — senders should slow down or
    /// shed load (this is what feedback loops react to).
    Saturated,
    /// Refused: a lossy link's bounded queue was full; the frame was
    /// discarded and counted in [`LinkStats::dropped`].
    Dropped,
    /// The link is closed (peer gone or `Fin` already sent).
    Closed,
}

impl SendStatus {
    /// Whether the frame was accepted (sent or saturated).
    #[must_use]
    pub fn accepted(self) -> bool {
        matches!(self, SendStatus::Sent | SendStatus::Saturated)
    }
}

/// The outcome of a [`Link::recv`] poll.
#[derive(Debug)]
pub enum RecvOutcome {
    /// A frame arrived.
    Frame(Frame),
    /// The peer ended the stream in order (`Fin` received).
    Fin,
    /// The link died without a `Fin` (peer dropped, I/O error).
    Closed,
    /// Nothing arrived within the timeout.
    TimedOut,
}

/// Identity of the remote end of a link, e.g. `tcp://127.0.0.1:41234`.
///
/// This is what the marshalling filters stamp into the Typespec
/// *location* property when a flow crosses the netpipe
/// ([`Unmarshal::at_peer`](crate::Unmarshal::at_peer)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerIdentity {
    scheme: &'static str,
    addr: String,
}

impl PeerIdentity {
    /// Builds an identity from a transport scheme and address.
    #[must_use]
    pub fn new(scheme: &'static str, addr: impl Into<String>) -> PeerIdentity {
        PeerIdentity {
            scheme,
            addr: addr.into(),
        }
    }

    /// The transport scheme (`tcp`, `sim`, `inproc`, …).
    #[must_use]
    pub fn scheme(&self) -> &'static str {
        self.scheme
    }

    /// The transport-specific address.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl fmt::Display for PeerIdentity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}", self.scheme, self.addr)
    }
}

/// Counters kept by each end of a [`Link`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Data frames handed to the link by this end.
    pub sent: u64,
    /// Data frames this end received.
    pub delivered: u64,
    /// Data frames dropped by the link (queue overflow / lossy backend).
    pub dropped: u64,
    /// Data frames refused by a full consumer inbox on this end.
    pub refused: u64,
    /// Payload bytes accepted for sending.
    pub bytes_sent: u64,
    /// Actual socket writes (`write_vectored` / `send` syscalls) the link
    /// performed. In-process backends keep this at zero; on wire backends
    /// `wire_writes / sent` is the syscalls-per-frame figure batching
    /// drives below one.
    pub wire_writes: u64,
    /// Frames shed because the receive queue was full — a subset of
    /// `dropped`, split out so memory pressure on the receive side is
    /// observable separately from send-side loss.
    pub rx_shed: u64,
}

impl LinkStats {
    /// The delivered fraction of sent frames, as observable by a single
    /// end (in-process backends share counters between both ends).
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }
}

/// Lock-free shared counters backing [`LinkStats`].
#[derive(Debug, Default)]
pub(crate) struct SharedStats {
    pub(crate) sent: AtomicU64,
    pub(crate) delivered: AtomicU64,
    pub(crate) dropped: AtomicU64,
    pub(crate) refused: AtomicU64,
    pub(crate) bytes_sent: AtomicU64,
    pub(crate) wire_writes: AtomicU64,
    pub(crate) rx_shed: AtomicU64,
}

impl SharedStats {
    pub(crate) fn snapshot(&self) -> LinkStats {
        LinkStats {
            sent: self.sent.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            wire_writes: self.wire_writes.load(Ordering::Relaxed),
            rx_shed: self.rx_shed.load(Ordering::Relaxed),
        }
    }
}

/// Errors raised by transport operations.
#[derive(Debug)]
pub enum TransportError {
    /// No listener at the address.
    NotFound(String),
    /// The address is already bound.
    AddrInUse(String),
    /// The link or listener is closed.
    Closed,
    /// The receive side was already consumed by `bind_receiver`.
    ReceiverTaken,
    /// An operation timed out.
    Timeout,
    /// A socket error.
    Io(std::io::Error),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::NotFound(a) => write!(f, "no listener at '{a}'"),
            TransportError::AddrInUse(a) => write!(f, "address '{a}' already bound"),
            TransportError::Closed => write!(f, "link closed"),
            TransportError::ReceiverTaken => write!(f, "receive side already bound"),
            TransportError::Timeout => write!(f, "operation timed out"),
            TransportError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// A kernel-thread message poster, for [`Link::send_via`]: pipeline
/// stages post through their kernel context so in-kernel backends (the
/// simulator) stay deterministic under virtual time.
pub type KernelPost<'a> = &'a mut dyn FnMut(ThreadId, Message) -> bool;

// ---------------------------------------------------------------------
// The traits
// ---------------------------------------------------------------------

/// A netpipe transport: a factory for listeners and connections.
///
/// Transport values are cheap to clone; in-process backends (sim,
/// inproc) share their rendezvous registry between clones, so both ends
/// of a test can connect through the same value.
pub trait Transport: Clone + Send + 'static {
    /// The connection type.
    type Link: Link;
    /// The listener type.
    type Acceptor: Acceptor<Link = Self::Link>;

    /// The identity scheme (`tcp`, `sim`, `inproc`, …).
    fn scheme(&self) -> &'static str;

    /// Binds a listening endpoint.
    ///
    /// # Errors
    ///
    /// [`TransportError::AddrInUse`] or backend-specific I/O errors.
    fn listen(&self, addr: &str) -> Result<Self::Acceptor, TransportError>;

    /// Opens a link to a listening endpoint.
    ///
    /// # Errors
    ///
    /// [`TransportError::NotFound`] or backend-specific I/O errors.
    fn connect(&self, addr: &str) -> Result<Self::Link, TransportError>;
}

/// A bound listening endpoint.
pub trait Acceptor: Send {
    /// The connection type produced.
    type Link: Link;

    /// The concrete bound address (resolves ephemeral/auto addresses).
    fn local_addr(&self) -> String;

    /// Accepts the next incoming link, blocking.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] when the transport shut down.
    fn accept(&self) -> Result<Self::Link, TransportError>;

    /// Accepts the next incoming link, waiting at most `timeout`;
    /// `Ok(None)` means the timeout elapsed with no connection pending.
    ///
    /// This is the polling form accept loops are built on
    /// ([`AcceptLoop`](crate::serve::AcceptLoop)): a serving thread can
    /// check its shutdown flag between bounded waits instead of parking
    /// forever inside [`Acceptor::accept`].
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] when the transport shut down.
    fn accept_timeout(&self, timeout: Duration) -> Result<Option<Self::Link>, TransportError>;
}

/// One end of an established netpipe connection.
///
/// Links are cheaply cloneable handles; clones share the underlying
/// connection (one clone feeds a [`NetSendEnd`] stage while another is
/// probed for [`LinkStats`]). They are also `Sync`: the serving tier
/// ([`crate::serve`]) sends on a link from whichever thread runs the
/// broadcast sweep while an accept loop and housekeeper hold the same
/// handle.
pub trait Link: Clone + Send + Sync + 'static {
    /// Identity of the remote end.
    fn peer(&self) -> PeerIdentity;

    /// Sends one frame from outside the kernel, reporting backpressure.
    fn send(&self, frame: Frame) -> SendStatus;

    /// Whether a data-lane [`send`](Link::send) would return without
    /// blocking right now. Backends that shed on overflow instead of
    /// waiting (inproc, sim, udp) are always ready — the default. A
    /// stream backend whose send can wait for queue space (TCP) must
    /// report readiness honestly, so a fan-out sweep
    /// ([`crate::serve`]) can leave a stalled client's frames queued
    /// instead of stalling inside its send path. A closed link is
    /// "ready": its send returns [`SendStatus::Closed`] immediately.
    fn send_ready(&self) -> bool {
        true
    }

    /// Sends one frame from inside a kernel thread (pipeline stages).
    ///
    /// Defaults to [`Link::send`]; in-kernel backends override it to post
    /// through the caller's kernel context, which keeps virtual-time
    /// kernels deterministic.
    fn send_via(&self, post: KernelPost<'_>, frame: Frame) -> SendStatus {
        let _ = post;
        self.send(frame)
    }

    /// Receives the next frame, waiting at most `timeout`. Control-lane
    /// frames have priority over queued data frames.
    fn recv(&self, timeout: Duration) -> RecvOutcome;

    /// Permanently binds the receive side to a pipeline: data frames feed
    /// `inbox` (refusals are counted in [`LinkStats::refused`], matching
    /// a full network buffer), events invoke `on_event`, and `Fin`
    /// finishes the inbox. At most one binding per link — "network
    /// packets … are mapped to messages by the platform" (§4).
    ///
    /// Thread-backed backends delegate to the crate's shared drain loop;
    /// the simulator instead delivers from its kernel thread to stay
    /// deterministic under virtual time.
    ///
    /// # Errors
    ///
    /// [`TransportError::ReceiverTaken`] if already bound.
    fn bind_receiver(
        &self,
        inbox: Option<InboxSender>,
        on_event: impl Fn(ControlEvent) + Send + 'static,
    ) -> Result<(), TransportError>;

    /// This end's link statistics.
    fn stats(&self) -> LinkStats;
}

/// The shared receive pump for thread-backed backends: drains
/// [`Link::recv`] on an OS thread, feeding data to the inbox (counting
/// refusals into `rx_stats`), events to the callback, and finishing the
/// inbox on `Fin`/close.
///
/// An events-only binding (`inbox == None`) additionally reaps itself
/// once `abandoned` reports that the drain thread holds the last handle
/// — otherwise an abandoned client link would keep its connection (and
/// this thread) alive forever. Data bindings intentionally stay alive
/// while the peer may still send ("bind and forget" is the normal
/// consumer-side pattern).
pub(crate) fn drain_receiver<L: Link>(
    link: L,
    inbox: Option<InboxSender>,
    on_event: impl Fn(ControlEvent) + Send + 'static,
    rx_stats: Arc<SharedStats>,
    abandoned: impl Fn(&L) -> bool + Send + 'static,
) -> Result<(), TransportError> {
    std::thread::Builder::new()
        .name("netpipe-receiver".into())
        .spawn(move || loop {
            match link.recv(Duration::from_millis(50)) {
                RecvOutcome::Frame(Frame::Data(bytes)) => {
                    if let Some(inbox) = &inbox {
                        // The bytes fast path: the inbox item shares the
                        // frame buffer, no copy and no payload box.
                        if !inbox.put(Item::bytes(bytes)) {
                            rx_stats.refused.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                RecvOutcome::Frame(Frame::Event(ev)) => on_event(ev.into()),
                RecvOutcome::Frame(_) => {}
                RecvOutcome::TimedOut => {
                    if inbox.is_none() && abandoned(&link) {
                        return;
                    }
                }
                RecvOutcome::Fin | RecvOutcome::Closed => {
                    if let Some(inbox) = &inbox {
                        inbox.finish();
                    }
                    return;
                }
            }
        })
        .map_err(TransportError::Io)?;
    Ok(())
}

// ---------------------------------------------------------------------
// The generic producer-side send end
// ---------------------------------------------------------------------

/// The default reading name under which [`NetSendEnd`] broadcasts its
/// send-side congestion observations (see
/// [`NetSendEnd::with_congestion_reports`]). Canonically
/// [`feedback::readings::SEND_SATURATION`]; re-exported here so
/// transport users need not import `feedback`.
pub const SEND_SATURATION_READING: &str = feedback::readings::SEND_SATURATION;

/// Reading name for the pool-miss rate of a link's buffer pool: the
/// fraction of acquisitions that fell back to a fresh allocation (0..1).
/// Rising values mean downstream consumers hold payloads longer than the
/// pool can recycle them — memory pressure a congestion controller can
/// react to just like send saturation. Canonically
/// [`feedback::readings::POOL_MISS`].
pub const POOL_MISS_READING: &str = feedback::readings::POOL_MISS;

/// Reading name for the UDP receive-queue shed count: frames discarded
/// because the bounded receive queue was full. Reported as a cumulative
/// count; pair with a rate window when controlling on it. Canonically
/// [`feedback::readings::UDP_RX_SHED`].
pub const UDP_RX_SHED_READING: &str = feedback::readings::UDP_RX_SHED;

/// A lock-free probe onto a [`NetSendEnd`]'s most recent *completed*
/// saturation window: the same 0..1 fraction the stage broadcasts as a
/// control event, readable from outside the pipeline. This is how send
/// saturation enters the process [`StatsRegistry`](infopipes::StatsRegistry)
/// (see [`crate::inspect::register_saturation`]), where a
/// `feedback::RegistrySensor` can poll it alongside receive-side signals.
///
/// Reads 0.0 until the first window completes; stays at the last
/// completed window thereafter.
#[derive(Clone, Debug, Default)]
pub struct SaturationProbe {
    bits: Arc<AtomicU64>,
}

impl SaturationProbe {
    /// The most recent completed window's saturation fraction.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn set(&self, fraction: f64) {
        self.bits.store(fraction.to_bits(), Ordering::Relaxed);
    }
}

/// How a wire-backed link coalesces small data frames before writing.
///
/// A batch closes when it reaches `max_frames` frames or `max_bytes`
/// payload bytes, when a control/event frame needs to overtake, at end of
/// stream, or — if `linger` is set — when the linger deadline passes with
/// the batch still undersized. The default (`linger: None`) flushes as
/// soon as the sender's queue runs dry, trading no latency for fewer
/// syscalls only under genuine load.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum data frames coalesced into one vectored write.
    pub max_frames: usize,
    /// Maximum payload bytes coalesced into one vectored write.
    pub max_bytes: usize,
    /// How long to hold an undersized batch open waiting for more frames;
    /// `None` sends as soon as the queue is drained.
    pub linger: Option<Duration>,
}

impl Default for BatchPolicy {
    fn default() -> BatchPolicy {
        BatchPolicy {
            max_frames: 64,
            max_bytes: 256 * 1024,
            linger: None,
        }
    }
}

impl BatchPolicy {
    /// A policy that never coalesces: each frame is written on its own.
    #[must_use]
    pub fn unbatched() -> BatchPolicy {
        BatchPolicy {
            max_frames: 1,
            ..BatchPolicy::default()
        }
    }
}

/// The default congestion-report window (data sends per reading).
const SATURATION_WINDOW: u64 = 32;

/// The producer-side end of a netpipe: a passive pipeline sink accepting
/// [`WireBytes`] and transmitting them as data frames over any
/// [`Link`]. Broadcast control events are forwarded on the control lane;
/// end of stream becomes a `Fin` frame.
///
/// One generic implementation serves every backend — this is what makes
/// remote pipelines transport-agnostic at the composition level.
///
/// # Send-side congestion sensing
///
/// The stage doubles as a sensor: every window of data sends it
/// broadcasts a custom control event (default name
/// [`SEND_SATURATION_READING`]) whose value is the fraction of sends in
/// that window the link reported as [`SendStatus::Saturated`] or
/// [`SendStatus::Dropped`]. Feedback controllers (e.g.
/// `feedback::CongestionDropController`) subscribe to this reading, so
/// drop levels react to transport backpressure directly — not only to
/// the receive-rate sensor on the far side of the congested link.
pub struct NetSendEnd<L: Link> {
    name: String,
    link: L,
    reading_name: Option<String>,
    window: u64,
    window_sends: u64,
    window_pressured: u64,
    probe: SaturationProbe,
}

impl<L: Link> NetSendEnd<L> {
    /// Wraps a link end as a pipeline sink, reporting send-side
    /// congestion under [`SEND_SATURATION_READING`].
    #[must_use]
    pub fn new(name: impl Into<String>, link: L) -> NetSendEnd<L> {
        NetSendEnd {
            name: name.into(),
            link,
            reading_name: Some(SEND_SATURATION_READING.to_owned()),
            window: SATURATION_WINDOW,
            window_sends: 0,
            window_pressured: 0,
            probe: SaturationProbe::default(),
        }
    }

    /// Overrides the congestion reading name and window (data sends per
    /// report).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    #[must_use]
    pub fn with_congestion_reports(
        mut self,
        reading_name: impl Into<String>,
        every: u64,
    ) -> NetSendEnd<L> {
        assert!(every > 0, "report window must be positive");
        self.reading_name = Some(reading_name.into());
        self.window = every;
        self
    }

    /// Disables congestion reporting.
    #[must_use]
    pub fn without_congestion_reports(mut self) -> NetSendEnd<L> {
        self.reading_name = None;
        self
    }

    /// The underlying link (for stats probes).
    #[must_use]
    pub fn link(&self) -> &L {
        &self.link
    }

    /// A shared probe onto this stage's completed saturation windows —
    /// take it *before* handing the stage to a pipeline, then register
    /// it with the process stats registry. Updated only while congestion
    /// reporting is enabled.
    #[must_use]
    pub fn saturation_probe(&self) -> SaturationProbe {
        self.probe.clone()
    }

    /// Folds one send status into the current window; returns a reading
    /// to broadcast when the window completes.
    fn observe_send(&mut self, status: SendStatus) -> Option<ControlEvent> {
        let reading = self.reading_name.as_deref()?;
        // A closed link is not a calm link: counting Closed sends would
        // complete windows at 0.0 saturation and walk drop levels back
        // down while nothing is being delivered at all.
        if matches!(status, SendStatus::Closed) {
            return None;
        }
        self.window_sends += 1;
        if matches!(status, SendStatus::Saturated | SendStatus::Dropped) {
            self.window_pressured += 1;
        }
        if self.window_sends < self.window {
            return None;
        }
        let fraction = self.window_pressured as f64 / self.window_sends as f64;
        self.window_sends = 0;
        self.window_pressured = 0;
        self.probe.set(fraction);
        Some(ControlEvent::custom(reading, fraction))
    }
}

impl<L: Link> Stage for NetSendEnd<L> {
    fn name(&self) -> &str {
        &self.name
    }

    fn accepts(&self) -> Typespec {
        Typespec::with_item_type(ItemType::of::<WireBytes>())
    }

    fn on_event(&mut self, ctx: &mut EventCtx<'_, '_>, event: &ControlEvent) {
        match event {
            ControlEvent::Eos => {
                let _ = self
                    .link
                    .send_via(&mut |to, msg| ctx.post(to, msg), Frame::Fin);
            }
            // Start/Stop are pipeline-local; everything else is forwarded
            // to the remote side (feedback commands, resizes, ...).
            ControlEvent::Start | ControlEvent::Stop => {}
            // The stage's own congestion readings are local-loop signals:
            // forwarding them would push extra control frames onto the
            // very link that is saturated, hand the remote side a reading
            // that describes *this* sender, and — with send ends on both
            // sides using the same reading name — echo back and forth
            // forever.
            ControlEvent::Custom { name, .. }
                if Some(name.as_ref()) == self.reading_name.as_deref() => {}
            other => {
                let _ = self.link.send_via(
                    &mut |to, msg| ctx.post(to, msg),
                    Frame::Event(WireEvent::from(other)),
                );
            }
        }
    }
}

impl<L: Link> Consumer for NetSendEnd<L> {
    fn push(&mut self, ctx: &mut StageCtx<'_, '_>, item: Item) {
        if let Ok((bytes, _)) = item.into_payload::<WireBytes>() {
            let status = self
                .link
                .send_via(&mut |to, msg| ctx.post(to, msg), Frame::Data(bytes));
            if let Some(reading) = self.observe_send(status) {
                ctx.broadcast(&reading);
            }
        }
    }
}

impl<L: Link> fmt::Debug for NetSendEnd<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetSendEnd")
            .field("name", &self.name)
            .field("peer", &self.link.peer().to_string())
            .finish()
    }
}

/// Transport-aware pipeline composition helpers.
pub trait PipelineTransportExt {
    /// Adds a [`NetSendEnd`] over `link` as a consumer stage and records
    /// the link's peer identity as the stage's transport in the plan
    /// (surfaces in [`StagePlacement`](infopipes::StagePlacement)).
    fn add_net_sink<'p, L: Link>(&'p self, name: &str, link: &L) -> Node<'p>;
}

impl PipelineTransportExt for Pipeline {
    fn add_net_sink<'p, L: Link>(&'p self, name: &str, link: &L) -> Node<'p> {
        let node = self.add_consumer(name, NetSendEnd::new(name, link.clone()));
        self.set_transport(node, link.peer().to_string());
        node
    }
}
