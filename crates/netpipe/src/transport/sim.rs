//! The simulated-network transport, running inside a kernel.
//!
//! Each direction of a `sim` connection is a message-based kernel
//! thread: the sending end posts frames to it; the thread models
//! serialization delay (bandwidth), propagation latency, jitter, and a
//! bounded byte queue that drops on overflow — the "arbitrary dropping
//! in the network" of Fig. 1 — and delivers arrivals to the receiving
//! end via kernel timers. Under a virtual-time kernel the whole network
//! is deterministic.
//!
//! Control-lane frames (events, factory messages, `Fin`) skip the
//! bandwidth model and the bounded queue: they experience propagation
//! latency only, which is how the out-of-band priority of control
//! events (§2.2) shows up in a simulated network.
//!
//! With `jitter > 0` the per-packet delay varies, and — as on a real
//! datagram network — data frames may be **reordered**. The in-order
//! conformance property applies to the jitter-free configuration;
//! jittered links are for experiments whose consumers (defragmenters,
//! jitter buffers) are built to tolerate reordering. `Fin` is never
//! reordered ahead of data: it waits for every in-flight frame to land.

use super::rendezvous::{self, Registry};
use super::{
    Acceptor, Frame, KernelPost, Link, LinkStats, PeerIdentity, RecvOutcome, SendStatus,
    SharedStats, Transport, TransportError,
};
use crate::marshal::WireBytes;
use infopipes::{ControlEvent, InboxSender, Item};
use mbthread::{Ctx, Envelope, ExternalPort, Flow, Kernel, Message, Tag, ThreadId};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Send end → direction thread: a data frame to transmit.
const NET_DATA: Tag = Tag(0x4E50_0001);
/// Send end → direction thread: a control-lane frame (latency only).
const NET_CTRL: Tag = Tag(0x4E50_0002);
/// Direction thread → itself (timer): a data frame arrives now.
const NET_DELIVER_DATA: Tag = Tag(0x4E50_0003);
/// Direction thread → itself (timer): a control frame arrives now.
const NET_DELIVER_CTRL: Tag = Tag(0x4E50_0004);

/// Link parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Propagation latency.
    pub latency: Duration,
    /// Uniform random extra delay in `[0, jitter]` per packet.
    pub jitter: Duration,
    /// Link bandwidth in bytes/second (`None` = infinite).
    pub bandwidth_bps: Option<f64>,
    /// Bytes the link will queue before dropping (congestion).
    pub queue_bytes: usize,
    /// Seed for the jitter source.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency: Duration::from_millis(5),
            jitter: Duration::ZERO,
            bandwidth_bps: None,
            queue_bytes: 1 << 20,
            seed: 0,
        }
    }
}

// ---------------------------------------------------------------------
// Receiving side state
// ---------------------------------------------------------------------

type EventCallback = Box<dyn Fn(ControlEvent) + Send>;

enum RxSink {
    /// Frames queue for external `recv` polls.
    External(VecDeque<Frame>),
    /// Frames flow straight into a pipeline.
    Bound {
        inbox: Option<InboxSender>,
        on_event: EventCallback,
    },
}

struct RxShared {
    sink: Mutex<RxSink>,
    cv: Condvar,
    fin: AtomicBool,
    closed: AtomicBool,
}

impl RxShared {
    fn new() -> RxShared {
        RxShared {
            sink: Mutex::new(RxSink::External(VecDeque::new())),
            cv: Condvar::new(),
            fin: AtomicBool::new(false),
            closed: AtomicBool::new(false),
        }
    }
}

// ---------------------------------------------------------------------
// The per-direction kernel thread
// ---------------------------------------------------------------------

/// Data admitted to the bounded queue but not yet delivered. Frames
/// are tracked as well as bytes so end-of-stream gating holds even for
/// zero-length payloads.
#[derive(Default)]
struct InFlight {
    bytes: AtomicUsize,
    frames: AtomicUsize,
}

struct DirectionFn {
    cfg: SimConfig,
    rx: Arc<RxShared>,
    stats: Arc<SharedStats>,
    in_flight: Arc<InFlight>,
    busy_until_ns: u64,
    /// A `Fin` arrived while data frames were still in flight; deliver it
    /// once the last one lands.
    eos_pending: bool,
    rng: StdRng,
}

impl DirectionFn {
    fn arrival_time(&mut self, ctx: &Ctx<'_>, tx_ns: u64) -> mbthread::Time {
        let now_ns = ctx.now().as_nanos();
        let done_ns = self.busy_until_ns.max(now_ns) + tx_ns;
        if tx_ns > 0 {
            self.busy_until_ns = done_ns;
        }
        let jitter_ns = if self.cfg.jitter.is_zero() {
            0
        } else {
            self.rng
                .random_range(0..=u64::try_from(self.cfg.jitter.as_nanos()).unwrap_or(u64::MAX))
        };
        mbthread::Time::from_nanos(
            done_ns + u64::try_from(self.cfg.latency.as_nanos()).unwrap_or(u64::MAX) + jitter_ns,
        )
    }

    /// Hands an arrived frame to the receiving end, from the kernel
    /// thread: bound sinks get direct (deterministic) delivery, external
    /// sinks are woken through the condvar.
    fn deliver(&self, ctx: &mut Ctx<'_>, frame: Frame) {
        let fin = matches!(frame, Frame::Fin);
        {
            let mut sink = self.rx.sink.lock();
            match &mut *sink {
                RxSink::External(queue) => queue.push_back(frame),
                RxSink::Bound { inbox, on_event } => match frame {
                    Frame::Data(bytes) => {
                        if let Some(inbox) = inbox {
                            if inbox.put_via(ctx, Item::bytes(bytes)) {
                                self.stats.delivered.fetch_add(1, Ordering::Relaxed);
                            } else {
                                self.stats.refused.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    Frame::Event(ev) => on_event(ev.into()),
                    Frame::Control(_) => {}
                    Frame::Fin => {
                        if let Some(inbox) = inbox {
                            inbox.finish_via(ctx);
                        }
                    }
                },
            }
        }
        if fin {
            self.rx.fin.store(true, Ordering::Release);
        }
        self.rx.cv.notify_all();
    }
}

impl mbthread::CodeFn for DirectionFn {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, mut env: Envelope) -> Flow {
        match env.tag() {
            t if t == NET_DATA => {
                let Some(bytes) = env.message_mut().take_body::<WireBytes>() else {
                    return Flow::Continue;
                };
                let size = bytes.len();
                // Serialization delay: one packet at a time at the link's
                // bandwidth.
                let tx_ns = match self.cfg.bandwidth_bps {
                    Some(bw) if bw > 0.0 => (size as f64 / bw * 1e9) as u64,
                    _ => 0,
                };
                let arrival = self.arrival_time(ctx, tx_ns);
                let _ = ctx.set_timer(arrival, Message::new(NET_DELIVER_DATA, bytes), None);
            }
            t if t == NET_CTRL => {
                let Some(frame) = env.message_mut().take_body::<Frame>() else {
                    return Flow::Continue;
                };
                // Control lane: propagation latency only, no queueing.
                let arrival = mbthread::Time::from_nanos(
                    ctx.now().as_nanos()
                        + u64::try_from(self.cfg.latency.as_nanos()).unwrap_or(u64::MAX),
                );
                let _ = ctx.set_timer(arrival, Message::new(NET_DELIVER_CTRL, frame), None);
            }
            t if t == NET_DELIVER_DATA => {
                let Some(bytes) = env.message_mut().take_body::<WireBytes>() else {
                    return Flow::Continue;
                };
                self.in_flight
                    .bytes
                    .fetch_sub(bytes.len(), Ordering::AcqRel);
                self.in_flight.frames.fetch_sub(1, Ordering::AcqRel);
                // Delivery accounting for bound sinks happens in deliver();
                // external sinks count on the recv side.
                self.deliver(ctx, Frame::Data(bytes));
                if self.eos_pending && self.in_flight.frames.load(Ordering::Acquire) == 0 {
                    self.eos_pending = false;
                    self.deliver(ctx, Frame::Fin);
                }
            }
            t if t == NET_DELIVER_CTRL => {
                let Some(frame) = env.message_mut().take_body::<Frame>() else {
                    return Flow::Continue;
                };
                // End of stream waits for in-flight data to land.
                if matches!(frame, Frame::Fin) && self.in_flight.frames.load(Ordering::Acquire) > 0
                {
                    self.eos_pending = true;
                    return Flow::Continue;
                }
                self.deliver(ctx, frame);
            }
            _ => {}
        }
        Flow::Continue
    }
}

// ---------------------------------------------------------------------
// The link
// ---------------------------------------------------------------------

/// The sending half's view of one direction.
struct TxShared {
    thread: ThreadId,
    port: ExternalPort,
    stats: Arc<SharedStats>,
    in_flight: Arc<InFlight>,
    queue_bytes: usize,
    fin_sent: AtomicBool,
}

impl TxShared {
    /// The shared admission decision: the bounded queue is checked (and
    /// charged) at send time; the direction thread releases bytes on
    /// delivery. `sent` counts every data frame handed to the link,
    /// dropped or not, so `delivery_ratio` reflects offered load (same
    /// convention as the inproc backend).
    fn admit(&self, frame: Frame) -> Result<(Message, SendStatus), SendStatus> {
        if self.fin_sent.load(Ordering::Acquire) {
            return Err(SendStatus::Closed);
        }
        match frame {
            Frame::Data(bytes) => {
                let size = bytes.len();
                let occupied = self.in_flight.bytes.load(Ordering::Acquire);
                if occupied + size > self.queue_bytes {
                    self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                    self.stats.sent.fetch_add(1, Ordering::Relaxed);
                    return Err(SendStatus::Dropped);
                }
                self.in_flight.bytes.fetch_add(size, Ordering::AcqRel);
                self.in_flight.frames.fetch_add(1, Ordering::AcqRel);
                self.stats.sent.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_sent
                    .fetch_add(size as u64, Ordering::Relaxed);
                let status = if (occupied + size) * 2 > self.queue_bytes {
                    SendStatus::Saturated
                } else {
                    SendStatus::Sent
                };
                Ok((Message::new(NET_DATA, bytes), status))
            }
            Frame::Fin => {
                self.fin_sent.store(true, Ordering::Release);
                Ok((Message::new(NET_CTRL, Frame::Fin), SendStatus::Sent))
            }
            ctrl_frame => Ok((Message::new(NET_CTRL, ctrl_frame), SendStatus::Sent)),
        }
    }
}

struct SimLinkShared {
    peer: PeerIdentity,
    tx: TxShared,
    rx: Arc<RxShared>,
    /// The inbound direction's stats: this end's receive bookkeeping
    /// (delivered/refused) is credited to the direction the peer sends
    /// on, so the peer's `stats()` shows what its traffic achieved.
    rx_stats: Arc<SharedStats>,
    /// The peer end's receive state, closed when this end vanishes.
    peer_rx: Arc<RxShared>,
}

impl Drop for SimLinkShared {
    fn drop(&mut self) {
        // A vanished end closes the peer's receive side so nothing polls
        // forever.
        self.peer_rx.closed.store(true, Ordering::Release);
        self.peer_rx.cv.notify_all();
    }
}

/// One end of a simulated connection (cheap to clone).
#[derive(Clone)]
pub struct SimLink {
    shared: Arc<SimLinkShared>,
}

impl Link for SimLink {
    fn peer(&self) -> PeerIdentity {
        self.shared.peer.clone()
    }

    fn send(&self, frame: Frame) -> SendStatus {
        match self.shared.tx.admit(frame) {
            Ok((msg, status)) => {
                if self.shared.tx.port.send(self.shared.tx.thread, msg).is_ok() {
                    status
                } else {
                    SendStatus::Closed
                }
            }
            Err(status) => status,
        }
    }

    fn send_via(&self, post: KernelPost<'_>, frame: Frame) -> SendStatus {
        // Posting through the caller's kernel context keeps virtual-time
        // kernels deterministic (no external wakeups mid-run).
        match self.shared.tx.admit(frame) {
            Ok((msg, status)) => {
                if post(self.shared.tx.thread, msg) {
                    status
                } else {
                    SendStatus::Closed
                }
            }
            Err(status) => status,
        }
    }

    fn recv(&self, timeout: Duration) -> RecvOutcome {
        let rx = &self.shared.rx;
        let deadline = Instant::now() + timeout;
        let mut sink = rx.sink.lock();
        loop {
            match &mut *sink {
                RxSink::External(queue) => {
                    // Events and control messages overtake queued data;
                    // `Fin` keeps its place (the stream ends after its
                    // data).
                    if let Some(pos) = queue
                        .iter()
                        .position(|f| !matches!(f, Frame::Data(_) | Frame::Fin))
                    {
                        let frame = queue.remove(pos).expect("indexed frame");
                        return RecvOutcome::Frame(frame);
                    }
                    match queue.pop_front() {
                        Some(Frame::Fin) => return RecvOutcome::Fin,
                        Some(frame) => {
                            self.shared
                                .rx_stats
                                .delivered
                                .fetch_add(1, Ordering::Relaxed);
                            return RecvOutcome::Frame(frame);
                        }
                        None => {}
                    }
                    if rx.fin.load(Ordering::Acquire) {
                        return RecvOutcome::Fin;
                    }
                    if rx.closed.load(Ordering::Acquire) {
                        return RecvOutcome::Closed;
                    }
                }
                RxSink::Bound { .. } => return RecvOutcome::Closed,
            }
            let now = Instant::now();
            if now >= deadline {
                return RecvOutcome::TimedOut;
            }
            rx.cv.wait_for(&mut sink, deadline - now);
        }
    }

    fn bind_receiver(
        &self,
        inbox: Option<InboxSender>,
        on_event: impl Fn(ControlEvent) + Send + 'static,
    ) -> Result<(), TransportError> {
        let rx = &self.shared.rx;
        let mut sink = rx.sink.lock();
        let backlog = match &mut *sink {
            RxSink::External(queue) => std::mem::take(queue),
            RxSink::Bound { .. } => return Err(TransportError::ReceiverTaken),
        };
        // Flush frames that arrived before binding (external path).
        let mut fin_seen = false;
        for frame in backlog {
            match frame {
                Frame::Data(bytes) => {
                    if let Some(inbox) = &inbox {
                        if inbox.put(Item::bytes(bytes)) {
                            self.shared
                                .rx_stats
                                .delivered
                                .fetch_add(1, Ordering::Relaxed);
                        } else {
                            self.shared.rx_stats.refused.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Frame::Event(ev) => on_event(ev.into()),
                Frame::Control(_) => {}
                Frame::Fin => fin_seen = true,
            }
        }
        if fin_seen || rx.fin.load(Ordering::Acquire) {
            if let Some(inbox) = &inbox {
                inbox.finish();
            }
        }
        *sink = RxSink::Bound {
            inbox,
            on_event: Box::new(on_event),
        };
        Ok(())
    }

    fn stats(&self) -> LinkStats {
        // The outbound direction's counters: `delivered`/`refused` are
        // written by the receiving end into the same shared direction
        // stats, so a producer-side probe sees what its traffic achieved
        // (as the seed's `SimLink::stats` did).
        self.shared.tx.stats.snapshot()
    }
}

impl std::fmt::Debug for SimLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimLink")
            .field("peer", &self.shared.peer.to_string())
            .field("stats", &self.stats())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Transport and acceptor
// ---------------------------------------------------------------------

/// The simulated-network transport. Both ends must share (a clone of)
/// the same value, which carries the kernel and the link parameters.
#[derive(Clone)]
pub struct SimTransport {
    kernel: Kernel,
    cfg: SimConfig,
    registry: Registry<SimLink>,
    conn_counter: Arc<AtomicUsize>,
}

impl SimTransport {
    /// A transport whose connections model `cfg` in both directions,
    /// running on `kernel`.
    #[must_use]
    pub fn new(kernel: &Kernel, cfg: SimConfig) -> SimTransport {
        SimTransport {
            kernel: kernel.clone(),
            cfg,
            registry: rendezvous::new_registry(),
            conn_counter: Arc::new(AtomicUsize::new(0)),
        }
    }

    fn spawn_direction(
        &self,
        label: &str,
        rx: Arc<RxShared>,
        stats: Arc<SharedStats>,
    ) -> Result<(ThreadId, Arc<InFlight>), TransportError> {
        let in_flight = Arc::new(InFlight::default());
        let seed = self.cfg.seed;
        let dir = DirectionFn {
            cfg: self.cfg.clone(),
            rx,
            stats,
            in_flight: Arc::clone(&in_flight),
            busy_until_ns: 0,
            eos_pending: false,
            rng: StdRng::seed_from_u64(seed),
        };
        let thread = self
            .kernel
            .spawn(label, dir)
            .map_err(|_| TransportError::Closed)?;
        Ok((thread, in_flight))
    }
}

impl Transport for SimTransport {
    type Link = SimLink;
    type Acceptor = SimAcceptor;

    fn scheme(&self) -> &'static str {
        "sim"
    }

    fn listen(&self, addr: &str) -> Result<SimAcceptor, TransportError> {
        Ok(SimAcceptor {
            inner: rendezvous::listen(&self.registry, addr)?,
        })
    }

    fn connect(&self, addr: &str) -> Result<SimLink, TransportError> {
        let endpoint = rendezvous::claim(&self.registry, addr)?;
        let n = self.conn_counter.fetch_add(1, Ordering::Relaxed);

        // Two modelled directions, each with its own kernel thread. The
        // `stats` of a direction are shared by its sender (sent/dropped)
        // and its receiver (delivered/refused).
        let a_rx = Arc::new(RxShared::new()); // client receives here (b→a)
        let b_rx = Arc::new(RxShared::new()); // server receives here (a→b)
        let a_to_b_stats = Arc::new(SharedStats::default());
        let b_to_a_stats = Arc::new(SharedStats::default());
        let (a_to_b_thread, a_to_b_bytes) = self.spawn_direction(
            &format!("sim-{addr}-{n}-up"),
            Arc::clone(&b_rx),
            Arc::clone(&a_to_b_stats),
        )?;
        let (b_to_a_thread, b_to_a_bytes) = self.spawn_direction(
            &format!("sim-{addr}-{n}-down"),
            Arc::clone(&a_rx),
            Arc::clone(&b_to_a_stats),
        )?;

        let client = SimLink {
            shared: Arc::new(SimLinkShared {
                peer: PeerIdentity::new("sim", addr),
                tx: TxShared {
                    thread: a_to_b_thread,
                    port: self.kernel.external(&format!("sim-{addr}-{n}-client")),
                    stats: Arc::clone(&a_to_b_stats),
                    in_flight: a_to_b_bytes,
                    queue_bytes: self.cfg.queue_bytes,
                    fin_sent: AtomicBool::new(false),
                },
                rx: Arc::clone(&a_rx),
                rx_stats: b_to_a_stats.clone(),
                peer_rx: Arc::clone(&b_rx),
            }),
        };
        let server = SimLink {
            shared: Arc::new(SimLinkShared {
                peer: PeerIdentity::new("sim", format!("{addr}#client-{n}")),
                tx: TxShared {
                    thread: b_to_a_thread,
                    port: self.kernel.external(&format!("sim-{addr}-{n}-server")),
                    stats: b_to_a_stats,
                    in_flight: b_to_a_bytes,
                    queue_bytes: self.cfg.queue_bytes,
                    fin_sent: AtomicBool::new(false),
                },
                rx: b_rx,
                rx_stats: a_to_b_stats,
                peer_rx: a_rx,
            }),
        };

        endpoint.offer(server);
        Ok(client)
    }
}

impl std::fmt::Debug for SimTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimTransport")
            .field("cfg", &self.cfg)
            .finish()
    }
}

/// A bound simulated listening endpoint.
pub struct SimAcceptor {
    inner: rendezvous::Bound<SimLink>,
}

impl Acceptor for SimAcceptor {
    type Link = SimLink;

    fn local_addr(&self) -> String {
        self.inner.local_addr()
    }

    fn accept(&self) -> Result<SimLink, TransportError> {
        self.inner.accept()
    }

    fn accept_timeout(&self, timeout: Duration) -> Result<Option<SimLink>, TransportError> {
        self.inner.accept_timeout(timeout)
    }
}

impl std::fmt::Debug for SimAcceptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimAcceptor")
            .field("addr", &self.inner.local_addr())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::PipelineTransportExt;
    use infopipes::helpers::{CollectSink, IterSource};
    use infopipes::{BufferSpec, FreePump, Pipeline};
    use mbthread::KernelConfig;

    /// Builds producer >> marshal >> link >> inbox >> unmarshal >> sink
    /// over one virtual-time kernel and runs it to completion.
    fn run_link(cfg: SimConfig, n: u32) -> (Vec<u32>, LinkStats, u64) {
        let kernel = Kernel::new(KernelConfig::virtual_time());
        let result = {
            let transport = SimTransport::new(&kernel, cfg);
            let acceptor = transport.listen("link").unwrap();
            let link = transport.connect("link").unwrap();
            let receiver_end = acceptor.accept().unwrap();

            // Consumer side.
            let consumer = Pipeline::new(&kernel, "consumer");
            let (inbox, inbox_sender) = consumer.add_inbox("net-in", BufferSpec::bounded(1024));
            let pump_in = consumer.add_pump("pump-in", FreePump::new());
            let un = consumer.add_function("unmarshal", crate::Unmarshal::<u32>::new("unmarshal"));
            let (sink, out) = CollectSink::<u32>::new("sink");
            let sink = consumer.add_consumer("sink", sink);
            let _ = inbox >> pump_in >> un >> sink;
            receiver_end
                .bind_receiver(Some(inbox_sender), |_| {})
                .unwrap();
            let running_consumer = consumer.start().unwrap();
            running_consumer.start_flow().unwrap();

            // Producer side.
            let producer = Pipeline::new(&kernel, "producer");
            let src = producer.add_producer("src", IterSource::new("src", 0..n));
            let pump_out = producer.add_pump("pump-out", FreePump::new());
            let m = producer.add_function("marshal", crate::Marshal::<u32>::new("marshal"));
            let send = producer.add_net_sink("send", &link);
            let _ = src >> pump_out >> m >> send;
            let running_producer = producer.start().unwrap();
            running_producer.start_flow().unwrap();

            kernel.wait_quiescent();
            let end_time = kernel.now().as_micros();
            let got = out.lock().clone();
            (got, link.stats(), end_time)
        };
        kernel.shutdown();
        result
    }

    #[test]
    fn lossless_link_delivers_everything_in_order() {
        let (got, stats, _) = run_link(SimConfig::default(), 20);
        assert_eq!(got, (0..20).collect::<Vec<u32>>());
        assert_eq!(stats.sent, 20);
        assert_eq!(stats.delivered, 20);
        assert_eq!(stats.dropped, 0);
        assert!((stats.delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn latency_delays_completion_in_virtual_time() {
        let fast = run_link(
            SimConfig {
                latency: Duration::from_millis(1),
                ..SimConfig::default()
            },
            5,
        )
        .2;
        let slow = run_link(
            SimConfig {
                latency: Duration::from_millis(500),
                ..SimConfig::default()
            },
            5,
        )
        .2;
        assert!(
            slow >= fast + 400_000,
            "500 ms latency must show up in virtual time: fast={fast} slow={slow}"
        );
    }

    #[test]
    fn tiny_queue_drops_under_burst() {
        // The producer bursts all packets at t=0 (free pump), each 4 bytes
        // marshalled; an 8-byte queue holds only 2 in flight.
        let (got, stats, _) = run_link(
            SimConfig {
                latency: Duration::from_millis(50),
                queue_bytes: 8,
                bandwidth_bps: None,
                ..SimConfig::default()
            },
            20,
        );
        assert!(stats.dropped > 0, "{stats:?}");
        assert_eq!(stats.delivered as usize, got.len());
        assert!(got.len() < 20);
        // Survivors stay in order.
        assert!(got.windows(2).all(|w| w[0] < w[1]), "{got:?}");
    }

    #[test]
    fn bandwidth_paces_the_flow() {
        // 5 packets of 4-byte payload → 4 bytes wire each (u32); at 4
        // bytes/sec each takes 1 s of serialization.
        let (_, stats, end_us) = run_link(
            SimConfig {
                latency: Duration::ZERO,
                bandwidth_bps: Some(4.0),
                queue_bytes: 1 << 20,
                ..SimConfig::default()
            },
            5,
        );
        assert_eq!(stats.delivered, 5);
        assert!(
            end_us >= 5_000_000,
            "5 packets at 1 s each need 5 virtual seconds, got {end_us} us"
        );
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let cfg = |seed| SimConfig {
            latency: Duration::from_millis(10),
            jitter: Duration::from_millis(20),
            seed,
            ..SimConfig::default()
        };
        let a = run_link(cfg(7), 10);
        let b = run_link(cfg(7), 10);
        let c = run_link(cfg(8), 10);
        assert_eq!(a.0, b.0);
        assert_eq!(a.2, b.2, "same seed, same virtual completion time");
        // A different seed almost surely lands on a different schedule.
        assert_ne!(a.2, c.2);
    }
}
