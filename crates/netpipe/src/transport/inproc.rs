//! The in-process transport: a lock-free bounded ring per direction.
//!
//! `inproc` links connect pipelines running in the same process (e.g.
//! two kernels in one test, or co-located producer/consumer nodes)
//! without sockets or simulation. The data lane is a lock-free Vyukov
//! MPMC ring — full-queue sends are *dropped* (and counted), making the
//! backend behave like a bounded lossy network rather than an infinite
//! pipe, so backpressure experiments behave the same as on `sim`. The
//! control lane is a small mutex-guarded deque (rare traffic, must never
//! be dropped).

use super::rendezvous::{self, Registry};
use super::{
    Acceptor, Frame, Link, LinkStats, PeerIdentity, RecvOutcome, SendStatus, SharedStats,
    Transport, TransportError,
};
use crate::marshal::WireBytes;
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::Thread;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Lock-free bounded MPMC ring (Vyukov's array queue)
// ---------------------------------------------------------------------

struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded multi-producer multi-consumer queue; `push` never blocks
/// and fails when full, `pop` never blocks and fails when empty.
pub(crate) struct Ring<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    enqueue: AtomicUsize,
    dequeue: AtomicUsize,
}

unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    fn new(capacity: usize) -> Ring<T> {
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            slots,
            mask: cap - 1,
            enqueue: AtomicUsize::new(0),
            dequeue: AtomicUsize::new(0),
        }
    }

    fn push(&self, value: T) -> Result<(), T> {
        let mut pos = self.enqueue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq as isize - pos as isize {
                0 => {
                    match self.enqueue.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // The slot is ours: write, then publish.
                            unsafe { (*slot.value.get()).write(value) };
                            slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                            return Ok(());
                        }
                        Err(actual) => pos = actual,
                    }
                }
                d if d < 0 => return Err(value), // full
                _ => pos = self.enqueue.load(Ordering::Relaxed),
            }
        }
    }

    fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq as isize - (pos.wrapping_add(1)) as isize {
                0 => {
                    match self.dequeue.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            let value = unsafe { (*slot.value.get()).assume_init_read() };
                            slot.seq.store(
                                pos.wrapping_add(self.mask).wrapping_add(1),
                                Ordering::Release,
                            );
                            return Some(value);
                        }
                        Err(actual) => pos = actual,
                    }
                }
                d if d < 0 => return None, // empty
                _ => pos = self.dequeue.load(Ordering::Relaxed),
            }
        }
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

// ---------------------------------------------------------------------
// Directions and links
// ---------------------------------------------------------------------

/// One direction of an inproc connection.
struct Direction {
    data: Ring<WireBytes>,
    ctrl: Mutex<VecDeque<Frame>>,
    /// Parked receiver to unpark on arrival (one receiver at a time).
    waiter: Mutex<Option<Thread>>,
    /// Sender posted a `Fin`.
    fin: AtomicBool,
    /// Sender handle dropped without `Fin`.
    closed: AtomicBool,
    stats: Arc<SharedStats>,
    /// High-water mark: `Saturated` above this many queued data frames.
    high_water: usize,
}

impl Direction {
    fn new(capacity: usize) -> Direction {
        Direction {
            data: Ring::new(capacity),
            ctrl: Mutex::new(VecDeque::new()),
            waiter: Mutex::new(None),
            fin: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            stats: Arc::new(SharedStats::default()),
            high_water: capacity.next_power_of_two().max(2) * 3 / 4,
        }
    }

    fn wake_receiver(&self) {
        if let Some(t) = self.waiter.lock().take() {
            t.unpark();
        }
    }

    fn queued_data(&self) -> usize {
        let enq = self.data.enqueue.load(Ordering::Relaxed);
        let deq = self.data.dequeue.load(Ordering::Relaxed);
        enq.wrapping_sub(deq)
    }

    fn send(&self, frame: Frame) -> SendStatus {
        if self.fin.load(Ordering::Acquire) || self.closed.load(Ordering::Acquire) {
            return SendStatus::Closed;
        }
        let status = match frame {
            Frame::Data(bytes) => {
                let len = bytes.len() as u64;
                match self.data.push(bytes) {
                    Ok(()) => {
                        self.stats.sent.fetch_add(1, Ordering::Relaxed);
                        self.stats.bytes_sent.fetch_add(len, Ordering::Relaxed);
                        if self.queued_data() >= self.high_water {
                            SendStatus::Saturated
                        } else {
                            SendStatus::Sent
                        }
                    }
                    Err(_) => {
                        // `sent` counts every frame handed to the link,
                        // dropped or not (matching the sim backend).
                        self.stats.sent.fetch_add(1, Ordering::Relaxed);
                        self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                        SendStatus::Dropped
                    }
                }
            }
            Frame::Fin => {
                self.ctrl.lock().push_back(Frame::Fin);
                self.fin.store(true, Ordering::Release);
                SendStatus::Sent
            }
            ctrl_frame => {
                self.ctrl.lock().push_back(ctrl_frame);
                SendStatus::Sent
            }
        };
        self.wake_receiver();
        status
    }

    /// Pops the next frame. Events and control messages overtake queued
    /// data; `Fin` only ends the stream once the data lane is drained.
    fn try_recv(&self) -> Option<RecvOutcome> {
        {
            let mut ctrl = self.ctrl.lock();
            if let Some(pos) = ctrl.iter().position(|f| !matches!(f, Frame::Fin)) {
                let frame = ctrl.remove(pos).expect("indexed frame");
                return Some(RecvOutcome::Frame(frame));
            }
        }
        if let Some(bytes) = self.data.pop() {
            self.stats.delivered.fetch_add(1, Ordering::Relaxed);
            return Some(RecvOutcome::Frame(Frame::Data(bytes)));
        }
        {
            // Re-inspect under the lock: a non-Fin control frame may have
            // been pushed since the scan above, and popping it as a `Fin`
            // would both lose it and falsely end the stream.
            let mut ctrl = self.ctrl.lock();
            match ctrl.front() {
                Some(Frame::Fin) => {
                    // Data published before the Fin is visible now that we
                    // hold the lock the sender released after pushing it.
                    if let Some(bytes) = self.data.pop() {
                        drop(ctrl);
                        self.stats.delivered.fetch_add(1, Ordering::Relaxed);
                        return Some(RecvOutcome::Frame(Frame::Data(bytes)));
                    }
                    ctrl.pop_front();
                    return Some(RecvOutcome::Fin);
                }
                Some(_) => {
                    let frame = ctrl.pop_front().expect("non-empty front");
                    return Some(RecvOutcome::Frame(frame));
                }
                None => {}
            }
        }
        if self.fin.load(Ordering::Acquire) {
            // The Fin frame was already consumed on an earlier call.
            return Some(RecvOutcome::Fin);
        }
        if self.closed.load(Ordering::Acquire) {
            return Some(RecvOutcome::Closed);
        }
        None
    }

    fn recv(&self, timeout: Duration) -> RecvOutcome {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(out) = self.try_recv() {
                return out;
            }
            let now = Instant::now();
            if now >= deadline {
                return RecvOutcome::TimedOut;
            }
            *self.waiter.lock() = Some(std::thread::current());
            // Re-check after registering, then park for the remainder.
            if let Some(out) = self.try_recv() {
                self.waiter.lock().take();
                return out;
            }
            std::thread::park_timeout(deadline - now);
            self.waiter.lock().take();
        }
    }
}

struct LinkShared {
    peer: PeerIdentity,
    /// Outbound direction (this end sends here).
    out: Arc<Direction>,
    /// Inbound direction (this end receives here).
    inn: Arc<Direction>,
    /// A receiver binding exists (at most one per link).
    rx_bound: AtomicBool,
}

impl Drop for LinkShared {
    fn drop(&mut self) {
        // A vanished end closes its outbound direction so the peer's
        // receiver does not wait forever.
        self.out.closed.store(true, Ordering::Release);
        self.out.wake_receiver();
    }
}

/// One end of an in-process connection (cheap to clone).
#[derive(Clone)]
pub struct InProcLink {
    shared: Arc<LinkShared>,
}

impl Link for InProcLink {
    fn peer(&self) -> PeerIdentity {
        self.shared.peer.clone()
    }

    fn send(&self, frame: Frame) -> SendStatus {
        self.shared.out.send(frame)
    }

    fn recv(&self, timeout: Duration) -> RecvOutcome {
        self.shared.inn.recv(timeout)
    }

    fn bind_receiver(
        &self,
        inbox: Option<infopipes::InboxSender>,
        on_event: impl Fn(infopipes::ControlEvent) + Send + 'static,
    ) -> Result<(), TransportError> {
        if self.shared.rx_bound.swap(true, Ordering::AcqRel) {
            return Err(TransportError::ReceiverTaken);
        }
        // Refusals are credited to the inbound direction's stats, which
        // the peer's `stats()` reads as its outbound counters.
        let rx_stats = Arc::clone(&self.shared.inn.stats);
        super::drain_receiver(self.clone(), inbox, on_event, rx_stats, |link| {
            Arc::strong_count(&link.shared) == 1
        })
    }

    fn stats(&self) -> LinkStats {
        // The outbound direction's counters: the peer's receive side
        // credits `delivered`/`refused` into the same shared direction,
        // so a producer-side probe sees what its traffic achieved.
        self.shared.out.stats.snapshot()
    }
}

impl std::fmt::Debug for InProcLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcLink")
            .field("peer", &self.shared.peer.to_string())
            .field("stats", &self.stats())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Transport and acceptor
// ---------------------------------------------------------------------

/// The in-process transport. Clones share one rendezvous namespace, so
/// the connecting side uses a clone of the listening side's value.
#[derive(Clone)]
pub struct InProcTransport {
    registry: Registry<InProcLink>,
    capacity: usize,
    conn_counter: Arc<AtomicUsize>,
}

impl InProcTransport {
    /// A transport with the default per-direction data capacity (1024
    /// frames).
    #[must_use]
    pub fn new() -> InProcTransport {
        InProcTransport::with_capacity(1024)
    }

    /// A transport whose data lane rings hold `capacity` frames (rounded
    /// up to a power of two) before dropping.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> InProcTransport {
        InProcTransport {
            registry: rendezvous::new_registry(),
            capacity,
            conn_counter: Arc::new(AtomicUsize::new(0)),
        }
    }
}

impl Default for InProcTransport {
    fn default() -> Self {
        InProcTransport::new()
    }
}

impl Transport for InProcTransport {
    type Link = InProcLink;
    type Acceptor = InProcAcceptor;

    fn scheme(&self) -> &'static str {
        "inproc"
    }

    fn listen(&self, addr: &str) -> Result<InProcAcceptor, TransportError> {
        Ok(InProcAcceptor {
            inner: rendezvous::listen(&self.registry, addr)?,
        })
    }

    fn connect(&self, addr: &str) -> Result<InProcLink, TransportError> {
        let endpoint = rendezvous::claim(&self.registry, addr)?;
        let n = self.conn_counter.fetch_add(1, Ordering::Relaxed);
        let a_to_b = Arc::new(Direction::new(self.capacity));
        let b_to_a = Arc::new(Direction::new(self.capacity));
        let client = InProcLink {
            shared: Arc::new(LinkShared {
                peer: PeerIdentity::new("inproc", addr),
                out: Arc::clone(&a_to_b),
                inn: Arc::clone(&b_to_a),
                rx_bound: AtomicBool::new(false),
            }),
        };
        let server = InProcLink {
            shared: Arc::new(LinkShared {
                peer: PeerIdentity::new("inproc", format!("{addr}#client-{n}")),
                out: b_to_a,
                inn: a_to_b,
                rx_bound: AtomicBool::new(false),
            }),
        };
        endpoint.offer(server);
        Ok(client)
    }
}

impl std::fmt::Debug for InProcTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcTransport")
            .field("capacity", &self.capacity)
            .finish()
    }
}

/// A bound in-process listening endpoint.
pub struct InProcAcceptor {
    inner: rendezvous::Bound<InProcLink>,
}

impl Acceptor for InProcAcceptor {
    type Link = InProcLink;

    fn local_addr(&self) -> String {
        self.inner.local_addr()
    }

    fn accept(&self) -> Result<InProcLink, TransportError> {
        self.inner.accept()
    }

    fn accept_timeout(&self, timeout: Duration) -> Result<Option<InProcLink>, TransportError> {
        self.inner.accept_timeout(timeout)
    }
}

impl std::fmt::Debug for InProcAcceptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcAcceptor")
            .field("addr", &self.inner.local_addr())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_fifo_and_bounded() {
        let ring: Ring<WireBytes> = Ring::new(4);
        for i in 0..4u8 {
            ring.push(WireBytes::from(vec![i])).unwrap();
        }
        assert!(
            ring.push(WireBytes::from(vec![9])).is_err(),
            "full ring refuses"
        );
        for i in 0..4u8 {
            assert_eq!(ring.pop().unwrap(), vec![i]);
        }
        assert!(ring.pop().is_none());
    }

    #[test]
    fn ring_passes_buffers_through_without_copying() {
        let ring: Ring<WireBytes> = Ring::new(4);
        let buf = WireBytes::from(vec![1, 2, 3]);
        let ptr = buf.as_ptr();
        ring.push(buf).unwrap();
        assert_eq!(
            ring.pop().unwrap().as_ptr(),
            ptr,
            "the ring must move the shared buffer, not copy it"
        );
    }

    #[test]
    fn ring_survives_concurrent_producers() {
        let ring: Arc<Ring<WireBytes>> = Arc::new(Ring::new(1024));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u8 {
                    while ring.push(WireBytes::from(vec![t, i])).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut seen = 0;
        while seen < 800 {
            if ring.pop().is_some() {
                seen += 1;
            } else {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(ring.pop().is_none());
    }
}
