//! The UDP transport: lossy, datagram-framed, over real sockets.
//!
//! Unlike TCP there is no stream to frame: **one frame is one
//! datagram**, encoded as `[kind: u8][payload]` (the datagram boundary
//! is the length). The backend is honest about UDP's nature:
//!
//! * **lossy** — a frame larger than the configured datagram limit is
//!   dropped at the send end (and counted), the network itself may shed
//!   datagrams under load, and a stalled receiver sheds arrivals once
//!   its bounded receive queue fills (also counted); nothing is
//!   retransmitted. This is the "arbitrary dropping in the network" of
//!   Fig. 1 on a real socket.
//! * **connectionless underneath** — the listener socket serves every
//!   client; a connect is announced with a `HELLO` datagram, and the
//!   acceptor-side link demultiplexes by source address. A dedicated
//!   reader thread on the server routes arriving datagrams to per-peer
//!   queues.
//! * **control priority at the receiver** — datagrams arrive in kernel
//!   order, so the receive side drains everything available before
//!   serving, and control-lane frames overtake queued data there (the
//!   same reordering point the in-process backend uses).
//!
//! `Fin` travels in-band as its own datagram; with no handshake there
//! is no delivery guarantee for it. A client whose socket reports a
//! hard error (e.g. `ECONNREFUSED` via ICMP after the server vanished)
//! surfaces `Closed`; a peer that vanishes *silently* is
//! indistinguishable from an idle link — inherent to UDP — and must be
//! handled by inactivity timeouts at higher layers.
//! Payload buffers are [`PayloadBytes`]; note that the `[kind]` tag
//! prefix forces one send-side copy per datagram (tag + payload must be
//! contiguous), and receives seal each datagram once — the unavoidable
//! I/O-boundary copies, with none elsewhere.

use super::{
    Acceptor, BatchPolicy, Frame, Link, LinkStats, PeerIdentity, RecvOutcome, SendStatus,
    SharedStats, Transport, TransportError,
};
use crate::proto::WireEvent;
use crate::wire;
use infopipes::{BufferPool, PayloadBytes};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Datagram type bytes (first byte of every datagram).
const TAG_HELLO: u8 = 0xF0;
const TAG_DATA: u8 = 0;
const TAG_EVENT: u8 = 1;
const TAG_CONTROL: u8 = 2;
const TAG_FIN: u8 = 3;
/// A packed datagram of several small data frames:
/// `[TAG_BATCH]([len: u32 LE][payload])*` — N frames for one `send`.
const TAG_BATCH: u8 = 4;

/// The largest payload the backend will put in one datagram by default,
/// comfortably under the UDP maximum (65507) to leave header room.
pub const DEFAULT_MAX_DATAGRAM: usize = 60 * 1024;

/// How long a partial packed datagram is held open before the flusher
/// sends it, when the policy doesn't specify a linger.
const DEFAULT_UDP_LINGER: Duration = Duration::from_millis(1);

fn encode(frame: &Frame) -> Option<(u8, Vec<u8>)> {
    match frame {
        Frame::Data(_) => None, // data frames are framed inline in send_frame
        Frame::Event(ev) => Some((TAG_EVENT, wire::to_bytes(ev).ok()?)),
        Frame::Control(bytes) => Some((TAG_CONTROL, bytes.clone())),
        Frame::Fin => Some((TAG_FIN, Vec::new())),
    }
}

/// Seals `payload` into a pooled buffer — the receive-side copy off the
/// socket, allocation-free once the pool is warm.
fn seal_pooled(pool: &BufferPool, payload: &[u8]) -> PayloadBytes {
    let mut b = pool.acquire(payload.len());
    b.buf_mut().extend_from_slice(payload);
    b.seal()
}

/// Decodes one datagram into zero or more frames. A [`TAG_BATCH`]
/// datagram fans out into one `Data` frame per packed entry; a truncated
/// trailing entry (corruption) discards the remainder only.
fn decode_into(tag: u8, payload: &[u8], pool: &BufferPool, push: &mut impl FnMut(Frame)) {
    match tag {
        TAG_DATA => push(Frame::Data(seal_pooled(pool, payload))),
        TAG_BATCH => {
            let mut rest = payload;
            while rest.len() >= 4 {
                let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
                rest = &rest[4..];
                if rest.len() < len {
                    break;
                }
                push(Frame::Data(seal_pooled(pool, &rest[..len])));
                rest = &rest[len..];
            }
        }
        TAG_EVENT => {
            if let Ok(ev) = wire::from_bytes::<WireEvent>(payload) {
                push(Frame::Event(ev));
            }
        }
        TAG_CONTROL => push(Frame::Control(payload.to_vec())),
        TAG_FIN => push(Frame::Fin),
        _ => {}
    }
}

/// The packed datagram under construction on the send side.
struct TxBatch {
    /// `[TAG_BATCH]([len][payload])*` so far; empty when no batch is open.
    buf: Vec<u8>,
    /// Frames packed into `buf`.
    frames: u64,
    /// Payload bytes packed into `buf` (for `bytes_sent` on flush).
    payload_bytes: u64,
}

impl TxBatch {
    fn new() -> TxBatch {
        TxBatch {
            buf: Vec::new(),
            frames: 0,
            payload_bytes: 0,
        }
    }
}

// ---------------------------------------------------------------------
// Receive-side queue shared by both link flavours
// ---------------------------------------------------------------------

/// Data frames the receive queue holds before shedding arrivals: like
/// the other lossy backends, a stalled consumer must produce bounded
/// memory use and counted drops, not an unbounded backlog.
const RX_QUEUE_FRAMES: usize = 1024;

/// The two receive lanes, under one lock. Control frames (events,
/// factory messages, `Fin`) live apart from data so priority pops are
/// O(1) on the data path and never scan a deep data backlog.
struct RxLanes {
    ctrl: VecDeque<Frame>,
    data: VecDeque<PayloadBytes>,
}

/// Frames awaiting a `recv` (or the bind_receiver drain thread).
struct RxQueue {
    lanes: Mutex<RxLanes>,
    cv: Condvar,
    fin: AtomicBool,
    closed: AtomicBool,
}

impl RxQueue {
    fn new() -> RxQueue {
        RxQueue {
            lanes: Mutex::new(RxLanes {
                ctrl: VecDeque::new(),
                data: VecDeque::new(),
            }),
            cv: Condvar::new(),
            fin: AtomicBool::new(false),
            closed: AtomicBool::new(false),
        }
    }

    /// Enqueues an arrived frame. The data lane is bounded
    /// ([`RX_QUEUE_FRAMES`]): overflow sheds the arrival and counts it
    /// into `stats.dropped`, keeping the backend lossy rather than
    /// unbounded when the consumer stalls. The control lane is small and
    /// never shed.
    fn push(&self, frame: Frame, stats: &SharedStats) {
        {
            let mut lanes = self.lanes.lock();
            match frame {
                Frame::Data(bytes) => {
                    if lanes.data.len() >= RX_QUEUE_FRAMES {
                        // Receive-queue shed: counted both as a drop (it
                        // is loss) and separately as `rx_shed`, the
                        // memory-pressure signal feedback loops watch.
                        stats.dropped.fetch_add(1, Ordering::Relaxed);
                        stats.rx_shed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        lanes.data.push_back(bytes);
                    }
                }
                Frame::Fin => {
                    self.fin.store(true, Ordering::Release);
                    lanes.ctrl.push_back(Frame::Fin);
                }
                ctrl_frame => lanes.ctrl.push_back(ctrl_frame),
            }
        }
        self.cv.notify_all();
    }

    /// Marks the link dead (socket error observed); wakes waiters so
    /// they see `Closed`.
    fn mark_closed(&self) {
        self.closed.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    /// Pops the next frame with control priority: events and control
    /// messages overtake queued data; `Fin` keeps its place so the
    /// stream ends after its data.
    fn pop(&self, delivered: &SharedStats) -> Option<RecvOutcome> {
        let mut lanes = self.lanes.lock();
        if let Some(pos) = lanes.ctrl.iter().position(|f| !matches!(f, Frame::Fin)) {
            let frame = lanes.ctrl.remove(pos).expect("indexed frame");
            return Some(RecvOutcome::Frame(frame));
        }
        if let Some(bytes) = lanes.data.pop_front() {
            delivered.delivered.fetch_add(1, Ordering::Relaxed);
            return Some(RecvOutcome::Frame(Frame::Data(bytes)));
        }
        if matches!(lanes.ctrl.front(), Some(Frame::Fin)) {
            lanes.ctrl.pop_front();
            return Some(RecvOutcome::Fin);
        }
        if self.fin.load(Ordering::Acquire) {
            Some(RecvOutcome::Fin)
        } else if self.closed.load(Ordering::Acquire) {
            Some(RecvOutcome::Closed)
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------
// The link
// ---------------------------------------------------------------------

enum LinkSide {
    /// Client side: owns its socket; `recv` reads datagrams itself into
    /// a reusable buffer (allocated once per link, not per poll).
    Client {
        socket: UdpSocket,
        recv_buf: Mutex<Vec<u8>>,
    },
    /// Server side: datagrams arrive via the listener's reader thread.
    /// The strong ref keeps the shared socket and reader alive for as
    /// long as any accepted link exists, acceptor dropped or not.
    Server {
        server: Arc<ServerShared>,
        peer_addr: SocketAddr,
    },
}

struct UdpInner {
    peer: PeerIdentity,
    side: LinkSide,
    rx: Arc<RxQueue>,
    max_datagram: usize,
    stats: Arc<SharedStats>,
    fin_sent: AtomicBool,
    rx_bound: AtomicBool,
    /// Pool arriving data payloads are sealed into (shared with the
    /// listener's [`PeerEntry`] on the server side).
    rx_pool: BufferPool,
    /// Small-frame packing policy; `None` sends one datagram per frame.
    batch: Option<BatchPolicy>,
    tx_batch: Mutex<TxBatch>,
    /// The linger flusher thread exists (spawned on first packed frame).
    flusher_started: AtomicBool,
}

impl UdpInner {
    /// Sends one raw datagram toward the peer.
    fn raw_send(&self, dgram: &[u8]) -> std::io::Result<usize> {
        match &self.side {
            LinkSide::Client { socket, .. } => socket.send(dgram),
            LinkSide::Server { server, peer_addr } => server.socket.send_to(dgram, peer_addr),
        }
    }

    /// Sends the pending packed datagram, if any. A failed send sheds
    /// every frame in the packet — UDP loss is per-datagram.
    fn flush_batch(&self, batch: &mut TxBatch) {
        if batch.frames == 0 {
            return;
        }
        match self.raw_send(&batch.buf) {
            Ok(_) => {
                self.stats.wire_writes.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_sent
                    .fetch_add(batch.payload_bytes, Ordering::Relaxed);
            }
            Err(_) => {
                self.stats
                    .dropped
                    .fetch_add(batch.frames, Ordering::Relaxed);
            }
        }
        batch.buf.clear();
        batch.frames = 0;
        batch.payload_bytes = 0;
    }

    /// Flushes the pending packed datagram (linger expiry, `Fin`, drop).
    fn flush_pending(&self) {
        let mut batch = self.tx_batch.lock();
        self.flush_batch(&mut batch);
    }

    /// Sends a data frame singly: `[TAG_DATA][payload]`, one datagram.
    fn send_data_single(&self, bytes: &PayloadBytes) -> SendStatus {
        let mut dgram = Vec::with_capacity(bytes.len() + 1);
        dgram.push(TAG_DATA);
        dgram.extend_from_slice(bytes);
        match self.raw_send(&dgram) {
            Ok(_) => {
                self.stats.wire_writes.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_sent
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                SendStatus::Sent
            }
            Err(_) => {
                // A full socket buffer is genuine loss on UDP.
                self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                SendStatus::Dropped
            }
        }
    }
}

impl Drop for UdpInner {
    fn drop(&mut self) {
        self.flush_pending();
        if let LinkSide::Server { server, peer_addr } = &self.side {
            server.peers.lock().remove(peer_addr);
        }
    }
}

/// One end of a UDP "connection" (cheap to clone).
#[derive(Clone)]
pub struct UdpLink {
    inner: Arc<UdpInner>,
}

impl UdpLink {
    /// Statistics of the receive-side buffer pool: hit/miss counts and
    /// the number of payload buffers still checked out downstream.
    #[must_use]
    pub fn pool_stats(&self) -> infopipes::PoolStats {
        self.inner.rx_pool.stats()
    }

    /// Spawns the linger flusher on first use: a thread holding only a
    /// `Weak` ref that ticks at the linger interval and sends whatever
    /// packed datagram is pending, so an undersized batch is never held
    /// longer than one linger. Exits when the link is gone or finished.
    fn ensure_flusher(&self, linger: Duration) {
        if self.inner.flusher_started.swap(true, Ordering::AcqRel) {
            return;
        }
        let weak = Arc::downgrade(&self.inner);
        let linger = linger.max(Duration::from_micros(100));
        let _ = std::thread::Builder::new()
            .name("udp-netpipe-flusher".into())
            .spawn(move || loop {
                std::thread::sleep(linger);
                let Some(inner) = weak.upgrade() else { return };
                inner.flush_pending();
                if inner.fin_sent.load(Ordering::Acquire) {
                    return;
                }
            });
    }

    /// Drains every datagram currently readable on the client socket
    /// into the rx queue (so control frames can overtake queued data).
    /// A hard socket error — e.g. `ECONNREFUSED` from an ICMP
    /// port-unreachable after the server socket closed — marks the link
    /// closed.
    fn pump_client_socket(&self, wait: Duration) {
        let LinkSide::Client { socket, recv_buf } = &self.inner.side else {
            return;
        };
        let mut buf = recv_buf.lock();
        if buf.is_empty() {
            buf.resize(64 * 1024 + 1, 0);
        }
        // First read may block up to `wait`; subsequent reads only drain
        // what is already queued in the kernel.
        let mut timeout = wait;
        loop {
            let _ = socket.set_read_timeout(Some(timeout.max(Duration::from_millis(1))));
            match socket.recv(&mut buf) {
                Ok(n) if n > 0 => {
                    decode_into(buf[0], &buf[1..n], &self.inner.rx_pool, &mut |frame| {
                        self.inner.rx.push(frame, &self.inner.stats);
                    });
                    timeout = Duration::from_micros(100);
                }
                Ok(_) => return,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut
                        || e.kind() == std::io::ErrorKind::Interrupted =>
                {
                    // Benign: timeout expiry or a signal (EINTR) — the
                    // link itself is fine.
                    return;
                }
                Err(_) => {
                    self.inner.rx.mark_closed();
                    return;
                }
            }
        }
    }
}

impl Link for UdpLink {
    fn peer(&self) -> PeerIdentity {
        self.inner.peer.clone()
    }

    fn send(&self, frame: Frame) -> SendStatus {
        let inner = &self.inner;
        if inner.fin_sent.load(Ordering::Acquire) {
            return SendStatus::Closed;
        }
        match frame {
            Frame::Data(bytes) => {
                inner.stats.sent.fetch_add(1, Ordering::Relaxed);
                if bytes.len() > inner.max_datagram {
                    // An oversized frame cannot ride one datagram: shed
                    // it, like a router refusing a jumbo packet.
                    inner.stats.dropped.fetch_add(1, Ordering::Relaxed);
                    return SendStatus::Dropped;
                }
                let Some(policy) = inner.batch else {
                    return inner.send_data_single(&bytes);
                };
                // Pack small frames: `[len][payload]` entries appended to
                // the pending `TAG_BATCH` datagram, flushed when the next
                // frame would overflow it, when it reaches `max_frames`,
                // or when the linger flusher fires.
                let entry_len = 4 + bytes.len();
                let mut batch = inner.tx_batch.lock();
                if batch.frames > 0 && batch.buf.len() + entry_len > inner.max_datagram + 1 {
                    inner.flush_batch(&mut batch);
                }
                if 1 + entry_len > inner.max_datagram + 1 {
                    // Too big to pack even alone (entry framing would
                    // overflow the datagram): pending data already went
                    // out above, so ordering holds — send it singly.
                    drop(batch);
                    return inner.send_data_single(&bytes);
                }
                if batch.frames == 0 {
                    batch.buf.push(TAG_BATCH);
                }
                let len = u32::try_from(bytes.len()).expect("datagram-sized frame fits u32");
                batch.buf.extend_from_slice(&len.to_le_bytes());
                batch.buf.extend_from_slice(&bytes);
                batch.frames += 1;
                batch.payload_bytes += bytes.len() as u64;
                if batch.frames >= policy.max_frames.max(1) as u64 {
                    inner.flush_batch(&mut batch);
                } else {
                    drop(batch);
                    self.ensure_flusher(policy.linger.unwrap_or(DEFAULT_UDP_LINGER));
                }
                SendStatus::Sent
            }
            Frame::Fin => {
                // End of stream must not overtake its own data.
                inner.flush_pending();
                let _ = inner.raw_send(&[TAG_FIN]);
                inner.stats.wire_writes.fetch_add(1, Ordering::Relaxed);
                inner.fin_sent.store(true, Ordering::Release);
                SendStatus::Sent
            }
            ctrl_frame => {
                // Control-lane frames go out immediately, overtaking any
                // pending packed data — out-of-band priority.
                let Some((tag, payload)) = encode(&ctrl_frame) else {
                    return SendStatus::Sent;
                };
                let mut dgram = Vec::with_capacity(payload.len() + 1);
                dgram.push(tag);
                dgram.extend_from_slice(&payload);
                if inner.raw_send(&dgram).is_ok() {
                    inner.stats.wire_writes.fetch_add(1, Ordering::Relaxed);
                }
                SendStatus::Sent
            }
        }
    }

    fn recv(&self, timeout: Duration) -> RecvOutcome {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(out) = self.inner.rx.pop(&self.inner.stats) {
                return out;
            }
            let now = Instant::now();
            if now >= deadline {
                return RecvOutcome::TimedOut;
            }
            match &self.inner.side {
                LinkSide::Client { .. } => self.pump_client_socket(deadline - now),
                LinkSide::Server { .. } => {
                    // The listener's reader thread fills the queue; wait
                    // on its condvar.
                    let mut lanes = self.inner.rx.lanes.lock();
                    if lanes.ctrl.is_empty()
                        && lanes.data.is_empty()
                        && !self.inner.rx.fin.load(Ordering::Acquire)
                        && !self.inner.rx.closed.load(Ordering::Acquire)
                    {
                        self.inner.rx.cv.wait_for(&mut lanes, deadline - now);
                    }
                }
            }
        }
    }

    fn bind_receiver(
        &self,
        inbox: Option<infopipes::InboxSender>,
        on_event: impl Fn(infopipes::ControlEvent) + Send + 'static,
    ) -> Result<(), TransportError> {
        if self.inner.rx_bound.swap(true, Ordering::AcqRel) {
            return Err(TransportError::ReceiverTaken);
        }
        let rx_stats = Arc::clone(&self.inner.stats);
        super::drain_receiver(self.clone(), inbox, on_event, rx_stats, |link| {
            Arc::strong_count(&link.inner) == 1
        })
    }

    fn stats(&self) -> LinkStats {
        self.inner.stats.snapshot()
    }
}

impl std::fmt::Debug for UdpLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpLink")
            .field("peer", &self.inner.peer.to_string())
            .field("stats", &self.stats())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Listener: one socket, demultiplexed by source address
// ---------------------------------------------------------------------

struct PeerEntry {
    rx: Arc<RxQueue>,
    stats: Arc<SharedStats>,
    /// Per-peer receive pool: arriving payloads seal into recycled
    /// buffers, so a fan-in of N peers costs N warm pools, not N × frames
    /// allocations.
    pool: BufferPool,
}

struct ServerShared {
    socket: Arc<UdpSocket>,
    peers: Mutex<HashMap<SocketAddr, PeerEntry>>,
    /// Freshly announced peers awaiting `accept`.
    pending: Mutex<VecDeque<SocketAddr>>,
    pending_cv: Condvar,
    closed: AtomicBool,
}

/// Routes every arriving datagram: `HELLO` creates a peer entry and
/// wakes `accept`; anything else lands in its peer's queue. Holds only a
/// weak ref, so the thread reaps itself once the acceptor and every
/// accepted link are gone.
fn reader_loop(server: &Weak<ServerShared>) {
    let mut buf = vec![0u8; 64 * 1024 + 1];
    loop {
        let Some(srv) = server.upgrade() else { return };
        let _ = srv.socket.set_read_timeout(Some(Duration::from_millis(50)));
        match srv.socket.recv_from(&mut buf) {
            Ok((n, from)) if n > 0 => {
                if buf[0] == TAG_HELLO {
                    let mut peers = srv.peers.lock();
                    if let std::collections::hash_map::Entry::Vacant(slot) = peers.entry(from) {
                        slot.insert(PeerEntry {
                            rx: Arc::new(RxQueue::new()),
                            stats: Arc::new(SharedStats::default()),
                            pool: BufferPool::new(),
                        });
                        srv.pending.lock().push_back(from);
                        srv.pending_cv.notify_all();
                    }
                } else if let Some(entry) = srv.peers.lock().get(&from) {
                    decode_into(buf[0], &buf[1..n], &entry.pool, &mut |frame| {
                        entry.rx.push(frame, &entry.stats);
                    });
                }
            }
            _ => {}
        }
    }
}

/// A bound UDP listening endpoint. Dropping it unblocks pending
/// `accept` calls; the shared reader keeps serving already-accepted
/// links and exits once the last of them is gone.
pub struct UdpAcceptor {
    server: Arc<ServerShared>,
    max_datagram: usize,
    batch: Option<BatchPolicy>,
}

impl Drop for UdpAcceptor {
    fn drop(&mut self) {
        self.server.closed.store(true, Ordering::Release);
        self.server.pending_cv.notify_all();
    }
}

impl Acceptor for UdpAcceptor {
    type Link = UdpLink;

    fn local_addr(&self) -> String {
        self.server
            .socket
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_default()
    }

    fn accept(&self) -> Result<UdpLink, TransportError> {
        let peer_addr = {
            let mut pending = self.server.pending.lock();
            loop {
                if let Some(addr) = pending.pop_front() {
                    break addr;
                }
                if self.server.closed.load(Ordering::Acquire) {
                    return Err(TransportError::Closed);
                }
                self.server.pending_cv.wait(&mut pending);
            }
        };
        self.link_for(peer_addr)
    }

    fn accept_timeout(&self, timeout: Duration) -> Result<Option<UdpLink>, TransportError> {
        let deadline = Instant::now() + timeout;
        let peer_addr = {
            let mut pending = self.server.pending.lock();
            loop {
                if let Some(addr) = pending.pop_front() {
                    break addr;
                }
                if self.server.closed.load(Ordering::Acquire) {
                    return Err(TransportError::Closed);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Ok(None);
                }
                let _ = self
                    .server
                    .pending_cv
                    .wait_for(&mut pending, deadline - now);
            }
        };
        self.link_for(peer_addr).map(Some)
    }
}

impl UdpAcceptor {
    /// Builds the server-side link for a handshaken peer address.
    fn link_for(&self, peer_addr: std::net::SocketAddr) -> Result<UdpLink, TransportError> {
        let entry = {
            let peers = self.server.peers.lock();
            let entry = peers.get(&peer_addr).ok_or(TransportError::Closed)?;
            (
                Arc::clone(&entry.rx),
                Arc::clone(&entry.stats),
                entry.pool.clone(),
            )
        };
        Ok(UdpLink {
            inner: Arc::new(UdpInner {
                peer: PeerIdentity::new("udp", peer_addr.to_string()),
                side: LinkSide::Server {
                    server: Arc::clone(&self.server),
                    peer_addr,
                },
                rx: entry.0,
                max_datagram: self.max_datagram,
                stats: entry.1,
                fin_sent: AtomicBool::new(false),
                rx_bound: AtomicBool::new(false),
                rx_pool: entry.2,
                batch: self.batch,
                tx_batch: Mutex::new(TxBatch::new()),
                flusher_started: AtomicBool::new(false),
            }),
        })
    }
}

impl std::fmt::Debug for UdpAcceptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpAcceptor")
            .field("addr", &self.local_addr())
            .finish()
    }
}

// ---------------------------------------------------------------------
// The transport
// ---------------------------------------------------------------------

/// The UDP transport. Stateless apart from configuration; addresses are
/// standard socket addresses (`127.0.0.1:0` binds an ephemeral port).
#[derive(Clone, Debug)]
pub struct UdpTransport {
    max_datagram: usize,
    batch: Option<BatchPolicy>,
}

impl UdpTransport {
    /// A transport with the default datagram payload limit
    /// ([`DEFAULT_MAX_DATAGRAM`]) and small-frame packing on (default
    /// [`BatchPolicy`], ~1 ms linger).
    #[must_use]
    pub fn new() -> UdpTransport {
        UdpTransport {
            max_datagram: DEFAULT_MAX_DATAGRAM,
            batch: Some(BatchPolicy::default()),
        }
    }

    /// Overrides the per-datagram payload limit; larger data frames are
    /// dropped at the send end (and counted), as on a path with a hard
    /// MTU.
    #[must_use]
    pub fn with_max_datagram(max_datagram: usize) -> UdpTransport {
        UdpTransport {
            max_datagram: max_datagram.max(1),
            ..UdpTransport::new()
        }
    }

    /// Overrides how small data frames pack into shared datagrams. A
    /// `linger` of `None` falls back to the backend's ~1 ms default —
    /// UDP has no writer queue to drain, so a partial packed datagram is
    /// always closed by the linger flusher.
    #[must_use]
    pub fn with_batching(mut self, batch: BatchPolicy) -> UdpTransport {
        self.batch = Some(batch);
        self
    }

    /// Disables packing: every data frame rides its own datagram (the
    /// pre-batching behaviour).
    #[must_use]
    pub fn without_batching(mut self) -> UdpTransport {
        self.batch = None;
        self
    }
}

impl Default for UdpTransport {
    fn default() -> Self {
        UdpTransport::new()
    }
}

impl Transport for UdpTransport {
    type Link = UdpLink;
    type Acceptor = UdpAcceptor;

    fn scheme(&self) -> &'static str {
        "udp"
    }

    fn listen(&self, addr: &str) -> Result<UdpAcceptor, TransportError> {
        let socket = Arc::new(UdpSocket::bind(addr)?);
        let server = Arc::new(ServerShared {
            socket,
            peers: Mutex::new(HashMap::new()),
            pending: Mutex::new(VecDeque::new()),
            pending_cv: Condvar::new(),
            closed: AtomicBool::new(false),
        });
        let weak = Arc::downgrade(&server);
        std::thread::Builder::new()
            .name("udp-netpipe-reader".into())
            .spawn(move || reader_loop(&weak))
            .map_err(TransportError::Io)?;
        Ok(UdpAcceptor {
            server,
            max_datagram: self.max_datagram,
            batch: self.batch,
        })
    }

    fn connect(&self, addr: &str) -> Result<UdpLink, TransportError> {
        // Bind an ephemeral socket of the same address family as the
        // target, so IPv6 listeners work like they do over TCP.
        let target = std::net::ToSocketAddrs::to_socket_addrs(addr)?
            .next()
            .ok_or_else(|| TransportError::NotFound(addr.to_owned()))?;
        let socket = if target.is_ipv6() {
            UdpSocket::bind("[::]:0")?
        } else {
            UdpSocket::bind("0.0.0.0:0")?
        };
        socket.connect(target)?;
        // Announce ourselves; the acceptor materialises the peer from
        // this datagram. No reply is required before streaming: data
        // sent before `accept` queues in the listener socket. The HELLO
        // itself is unacknowledged, so follow it with best-effort
        // duplicates (the server dedups by source address) — losing all
        // of them would leave the connection streaming into a black
        // hole. Only the first send propagates errors, so a late ICMP
        // rejection cannot make `connect` nondeterministic.
        socket.send(&[TAG_HELLO])?;
        for _ in 0..2 {
            let _ = socket.send(&[TAG_HELLO]);
        }
        Ok(UdpLink {
            inner: Arc::new(UdpInner {
                peer: PeerIdentity::new("udp", addr.to_owned()),
                side: LinkSide::Client {
                    socket,
                    recv_buf: Mutex::new(Vec::new()),
                },
                rx: Arc::new(RxQueue::new()),
                max_datagram: self.max_datagram,
                stats: Arc::new(SharedStats::default()),
                fin_sent: AtomicBool::new(false),
                rx_bound: AtomicBool::new(false),
                rx_pool: BufferPool::new(),
                batch: self.batch,
                tx_batch: Mutex::new(TxBatch::new()),
                flusher_started: AtomicBool::new(false),
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_establishes_a_demultiplexed_peer() {
        let transport = UdpTransport::new();
        let acceptor = transport.listen("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let c1 = transport.connect(&addr).unwrap();
        let c2 = transport.connect(&addr).unwrap();
        let s1 = acceptor.accept().unwrap();
        let s2 = acceptor.accept().unwrap();
        assert_ne!(s1.peer().addr(), s2.peer().addr());
        // Each server link sees only its own client's traffic.
        assert!(c1
            .send(Frame::Data(PayloadBytes::from(vec![1u8])))
            .accepted());
        assert!(c2
            .send(Frame::Data(PayloadBytes::from(vec![2u8])))
            .accepted());
        let deadline = Instant::now() + Duration::from_secs(10);
        let recv_one = |link: &UdpLink| loop {
            match link.recv(Duration::from_millis(100)) {
                RecvOutcome::Frame(Frame::Data(b)) => return b[0],
                RecvOutcome::TimedOut if Instant::now() < deadline => {}
                other => panic!("unexpected {other:?}"),
            }
        };
        assert_eq!(recv_one(&s1), 1);
        assert_eq!(recv_one(&s2), 2);
    }

    #[test]
    fn receive_queue_is_bounded_and_sheds_with_counting() {
        let rx = RxQueue::new();
        let stats = SharedStats::default();
        for i in 0..(RX_QUEUE_FRAMES + 10) {
            rx.push(
                Frame::Data(PayloadBytes::from(vec![(i % 251) as u8])),
                &stats,
            );
        }
        // Control frames are never shed, and still overtake the backlog.
        rx.push(Frame::Event(WireEvent::SetDropLevel(1)), &stats);
        assert_eq!(stats.dropped.load(Ordering::Relaxed), 10);
        // Sheds are also split out as the memory-pressure signal.
        assert_eq!(stats.rx_shed.load(Ordering::Relaxed), 10);
        assert!(matches!(
            rx.pop(&stats),
            Some(RecvOutcome::Frame(Frame::Event(_)))
        ));
        let mut data = 0;
        while let Some(RecvOutcome::Frame(Frame::Data(_))) = rx.pop(&stats) {
            data += 1;
        }
        assert_eq!(data, RX_QUEUE_FRAMES, "backlog capped at the queue bound");
        assert_eq!(stats.delivered.load(Ordering::Relaxed), data as u64);
    }

    #[test]
    fn packed_datagrams_fan_out_in_order() {
        // Decode side: a TAG_BATCH datagram yields every packed frame.
        let pool = BufferPool::new();
        let mut dgram = vec![TAG_BATCH];
        for payload in [&b"aa"[..], &b"b"[..], &b""[..], &b"cccc"[..]] {
            dgram.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            dgram.extend_from_slice(payload);
        }
        let mut got = Vec::new();
        decode_into(dgram[0], &dgram[1..], &pool, &mut |f| got.push(f));
        let payloads: Vec<Vec<u8>> = got
            .iter()
            .map(|f| match f {
                Frame::Data(b) => b.as_slice().to_vec(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(
            payloads,
            vec![b"aa".to_vec(), b"b".to_vec(), vec![], b"cccc".to_vec()]
        );

        // End to end: several small sends arrive as distinct frames, in
        // order, with fewer datagrams than frames.
        let transport = UdpTransport::new();
        let acceptor = transport.listen("127.0.0.1:0").unwrap();
        let client = transport.connect(&acceptor.local_addr()).unwrap();
        let server = acceptor.accept().unwrap();
        for i in 0..16u8 {
            assert!(client
                .send(Frame::Data(PayloadBytes::from(vec![i])))
                .accepted());
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut seen = Vec::new();
        while seen.len() < 16 {
            match server.recv(Duration::from_millis(100)) {
                RecvOutcome::Frame(Frame::Data(b)) => seen.push(b[0]),
                RecvOutcome::TimedOut if Instant::now() < deadline => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(seen, (0..16).collect::<Vec<u8>>());
        assert!(
            client.stats().wire_writes < 16,
            "packing should cost fewer datagrams than frames: {:?}",
            client.stats()
        );
    }

    #[test]
    fn oversized_frames_are_shed_and_counted() {
        let transport = UdpTransport::with_max_datagram(64);
        let acceptor = transport.listen("127.0.0.1:0").unwrap();
        let client = transport.connect(&acceptor.local_addr()).unwrap();
        assert_eq!(
            client.send(Frame::Data(PayloadBytes::from(vec![0u8; 1024]))),
            SendStatus::Dropped
        );
        let stats = client.stats();
        assert_eq!(stats.sent, 1);
        assert_eq!(stats.dropped, 1);
    }
}
