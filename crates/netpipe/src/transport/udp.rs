//! The UDP transport: lossy, datagram-framed, over real sockets.
//!
//! Unlike TCP there is no stream to frame: **one frame is one
//! datagram**, encoded as `[kind: u8][payload]` (the datagram boundary
//! is the length). The backend is honest about UDP's nature:
//!
//! * **lossy** — a frame larger than the configured datagram limit is
//!   dropped at the send end (and counted), the network itself may shed
//!   datagrams under load, and a stalled receiver sheds arrivals once
//!   its bounded receive queue fills (also counted); nothing is
//!   retransmitted. This is the "arbitrary dropping in the network" of
//!   Fig. 1 on a real socket.
//! * **connectionless underneath** — the listener socket serves every
//!   client; a connect is announced with a `HELLO` datagram, and the
//!   acceptor-side link demultiplexes by source address. A dedicated
//!   reader thread on the server routes arriving datagrams to per-peer
//!   queues.
//! * **control priority at the receiver** — datagrams arrive in kernel
//!   order, so the receive side drains everything available before
//!   serving, and control-lane frames overtake queued data there (the
//!   same reordering point the in-process backend uses).
//!
//! `Fin` travels in-band as its own datagram; with no handshake there
//! is no delivery guarantee for it. A client whose socket reports a
//! hard error (e.g. `ECONNREFUSED` via ICMP after the server vanished)
//! surfaces `Closed`; a peer that vanishes *silently* is
//! indistinguishable from an idle link — inherent to UDP — and must be
//! handled by inactivity timeouts at higher layers.
//! Payload buffers are [`PayloadBytes`]; note that the `[kind]` tag
//! prefix forces one send-side copy per datagram (tag + payload must be
//! contiguous), and receives seal each datagram once — the unavoidable
//! I/O-boundary copies, with none elsewhere.

use super::{
    Acceptor, Frame, Link, LinkStats, PeerIdentity, RecvOutcome, SendStatus, SharedStats,
    Transport, TransportError,
};
use crate::proto::WireEvent;
use crate::wire;
use infopipes::PayloadBytes;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Datagram type bytes (first byte of every datagram).
const TAG_HELLO: u8 = 0xF0;
const TAG_DATA: u8 = 0;
const TAG_EVENT: u8 = 1;
const TAG_CONTROL: u8 = 2;
const TAG_FIN: u8 = 3;

/// The largest payload the backend will put in one datagram by default,
/// comfortably under the UDP maximum (65507) to leave header room.
pub const DEFAULT_MAX_DATAGRAM: usize = 60 * 1024;

fn encode(frame: &Frame) -> Option<(u8, Vec<u8>)> {
    match frame {
        Frame::Data(_) => None, // data frames are framed inline in send_frame
        Frame::Event(ev) => Some((TAG_EVENT, wire::to_bytes(ev).ok()?)),
        Frame::Control(bytes) => Some((TAG_CONTROL, bytes.clone())),
        Frame::Fin => Some((TAG_FIN, Vec::new())),
    }
}

fn decode(tag: u8, payload: &[u8]) -> Option<Frame> {
    match tag {
        TAG_DATA => Some(Frame::Data(PayloadBytes::copy_from_slice(payload))),
        TAG_EVENT => wire::from_bytes::<WireEvent>(payload)
            .ok()
            .map(Frame::Event),
        TAG_CONTROL => Some(Frame::Control(payload.to_vec())),
        TAG_FIN => Some(Frame::Fin),
        _ => None,
    }
}

/// Sends one frame as a datagram through `send`, charging `stats`.
fn send_frame(
    frame: Frame,
    max_datagram: usize,
    stats: &SharedStats,
    fin_sent: &AtomicBool,
    send: impl Fn(&[u8]) -> std::io::Result<usize>,
) -> SendStatus {
    if fin_sent.load(Ordering::Acquire) {
        return SendStatus::Closed;
    }
    match frame {
        Frame::Data(bytes) => {
            stats.sent.fetch_add(1, Ordering::Relaxed);
            if bytes.len() > max_datagram {
                // An oversized frame cannot ride one datagram: shed it,
                // like a router refusing a jumbo packet.
                stats.dropped.fetch_add(1, Ordering::Relaxed);
                return SendStatus::Dropped;
            }
            let mut dgram = Vec::with_capacity(bytes.len() + 1);
            dgram.push(TAG_DATA);
            dgram.extend_from_slice(&bytes);
            match send(&dgram) {
                Ok(_) => {
                    stats
                        .bytes_sent
                        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                    SendStatus::Sent
                }
                Err(_) => {
                    // A full socket buffer is genuine loss on UDP.
                    stats.dropped.fetch_add(1, Ordering::Relaxed);
                    SendStatus::Dropped
                }
            }
        }
        other => {
            let is_fin = matches!(other, Frame::Fin);
            let Some((tag, payload)) = encode(&other) else {
                return SendStatus::Sent;
            };
            let mut dgram = Vec::with_capacity(payload.len() + 1);
            dgram.push(tag);
            dgram.extend_from_slice(&payload);
            let _ = send(&dgram);
            if is_fin {
                fin_sent.store(true, Ordering::Release);
            }
            SendStatus::Sent
        }
    }
}

// ---------------------------------------------------------------------
// Receive-side queue shared by both link flavours
// ---------------------------------------------------------------------

/// Data frames the receive queue holds before shedding arrivals: like
/// the other lossy backends, a stalled consumer must produce bounded
/// memory use and counted drops, not an unbounded backlog.
const RX_QUEUE_FRAMES: usize = 1024;

/// The two receive lanes, under one lock. Control frames (events,
/// factory messages, `Fin`) live apart from data so priority pops are
/// O(1) on the data path and never scan a deep data backlog.
struct RxLanes {
    ctrl: VecDeque<Frame>,
    data: VecDeque<PayloadBytes>,
}

/// Frames awaiting a `recv` (or the bind_receiver drain thread).
struct RxQueue {
    lanes: Mutex<RxLanes>,
    cv: Condvar,
    fin: AtomicBool,
    closed: AtomicBool,
}

impl RxQueue {
    fn new() -> RxQueue {
        RxQueue {
            lanes: Mutex::new(RxLanes {
                ctrl: VecDeque::new(),
                data: VecDeque::new(),
            }),
            cv: Condvar::new(),
            fin: AtomicBool::new(false),
            closed: AtomicBool::new(false),
        }
    }

    /// Enqueues an arrived frame. The data lane is bounded
    /// ([`RX_QUEUE_FRAMES`]): overflow sheds the arrival and counts it
    /// into `stats.dropped`, keeping the backend lossy rather than
    /// unbounded when the consumer stalls. The control lane is small and
    /// never shed.
    fn push(&self, frame: Frame, stats: &SharedStats) {
        {
            let mut lanes = self.lanes.lock();
            match frame {
                Frame::Data(bytes) => {
                    if lanes.data.len() >= RX_QUEUE_FRAMES {
                        stats.dropped.fetch_add(1, Ordering::Relaxed);
                    } else {
                        lanes.data.push_back(bytes);
                    }
                }
                Frame::Fin => {
                    self.fin.store(true, Ordering::Release);
                    lanes.ctrl.push_back(Frame::Fin);
                }
                ctrl_frame => lanes.ctrl.push_back(ctrl_frame),
            }
        }
        self.cv.notify_all();
    }

    /// Marks the link dead (socket error observed); wakes waiters so
    /// they see `Closed`.
    fn mark_closed(&self) {
        self.closed.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    /// Pops the next frame with control priority: events and control
    /// messages overtake queued data; `Fin` keeps its place so the
    /// stream ends after its data.
    fn pop(&self, delivered: &SharedStats) -> Option<RecvOutcome> {
        let mut lanes = self.lanes.lock();
        if let Some(pos) = lanes.ctrl.iter().position(|f| !matches!(f, Frame::Fin)) {
            let frame = lanes.ctrl.remove(pos).expect("indexed frame");
            return Some(RecvOutcome::Frame(frame));
        }
        if let Some(bytes) = lanes.data.pop_front() {
            delivered.delivered.fetch_add(1, Ordering::Relaxed);
            return Some(RecvOutcome::Frame(Frame::Data(bytes)));
        }
        if matches!(lanes.ctrl.front(), Some(Frame::Fin)) {
            lanes.ctrl.pop_front();
            return Some(RecvOutcome::Fin);
        }
        if self.fin.load(Ordering::Acquire) {
            Some(RecvOutcome::Fin)
        } else if self.closed.load(Ordering::Acquire) {
            Some(RecvOutcome::Closed)
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------
// The link
// ---------------------------------------------------------------------

enum LinkSide {
    /// Client side: owns its socket; `recv` reads datagrams itself into
    /// a reusable buffer (allocated once per link, not per poll).
    Client {
        socket: UdpSocket,
        recv_buf: Mutex<Vec<u8>>,
    },
    /// Server side: datagrams arrive via the listener's reader thread.
    /// The strong ref keeps the shared socket and reader alive for as
    /// long as any accepted link exists, acceptor dropped or not.
    Server {
        server: Arc<ServerShared>,
        peer_addr: SocketAddr,
    },
}

struct UdpInner {
    peer: PeerIdentity,
    side: LinkSide,
    rx: Arc<RxQueue>,
    max_datagram: usize,
    stats: Arc<SharedStats>,
    fin_sent: AtomicBool,
    rx_bound: AtomicBool,
}

impl Drop for UdpInner {
    fn drop(&mut self) {
        if let LinkSide::Server { server, peer_addr } = &self.side {
            server.peers.lock().remove(peer_addr);
        }
    }
}

/// One end of a UDP "connection" (cheap to clone).
#[derive(Clone)]
pub struct UdpLink {
    inner: Arc<UdpInner>,
}

impl UdpLink {
    /// Drains every datagram currently readable on the client socket
    /// into the rx queue (so control frames can overtake queued data).
    /// A hard socket error — e.g. `ECONNREFUSED` from an ICMP
    /// port-unreachable after the server socket closed — marks the link
    /// closed.
    fn pump_client_socket(&self, wait: Duration) {
        let LinkSide::Client { socket, recv_buf } = &self.inner.side else {
            return;
        };
        let mut buf = recv_buf.lock();
        if buf.is_empty() {
            buf.resize(64 * 1024 + 1, 0);
        }
        // First read may block up to `wait`; subsequent reads only drain
        // what is already queued in the kernel.
        let mut timeout = wait;
        loop {
            let _ = socket.set_read_timeout(Some(timeout.max(Duration::from_millis(1))));
            match socket.recv(&mut buf) {
                Ok(n) if n > 0 => {
                    if let Some(frame) = decode(buf[0], &buf[1..n]) {
                        self.inner.rx.push(frame, &self.inner.stats);
                    }
                    timeout = Duration::from_micros(100);
                }
                Ok(_) => return,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut
                        || e.kind() == std::io::ErrorKind::Interrupted =>
                {
                    // Benign: timeout expiry or a signal (EINTR) — the
                    // link itself is fine.
                    return;
                }
                Err(_) => {
                    self.inner.rx.mark_closed();
                    return;
                }
            }
        }
    }
}

impl Link for UdpLink {
    fn peer(&self) -> PeerIdentity {
        self.inner.peer.clone()
    }

    fn send(&self, frame: Frame) -> SendStatus {
        match &self.inner.side {
            LinkSide::Client { socket, .. } => send_frame(
                frame,
                self.inner.max_datagram,
                &self.inner.stats,
                &self.inner.fin_sent,
                |d| socket.send(d),
            ),
            LinkSide::Server { server, peer_addr } => send_frame(
                frame,
                self.inner.max_datagram,
                &self.inner.stats,
                &self.inner.fin_sent,
                |d| server.socket.send_to(d, peer_addr),
            ),
        }
    }

    fn recv(&self, timeout: Duration) -> RecvOutcome {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(out) = self.inner.rx.pop(&self.inner.stats) {
                return out;
            }
            let now = Instant::now();
            if now >= deadline {
                return RecvOutcome::TimedOut;
            }
            match &self.inner.side {
                LinkSide::Client { .. } => self.pump_client_socket(deadline - now),
                LinkSide::Server { .. } => {
                    // The listener's reader thread fills the queue; wait
                    // on its condvar.
                    let mut lanes = self.inner.rx.lanes.lock();
                    if lanes.ctrl.is_empty()
                        && lanes.data.is_empty()
                        && !self.inner.rx.fin.load(Ordering::Acquire)
                        && !self.inner.rx.closed.load(Ordering::Acquire)
                    {
                        self.inner.rx.cv.wait_for(&mut lanes, deadline - now);
                    }
                }
            }
        }
    }

    fn bind_receiver(
        &self,
        inbox: Option<infopipes::InboxSender>,
        on_event: impl Fn(infopipes::ControlEvent) + Send + 'static,
    ) -> Result<(), TransportError> {
        if self.inner.rx_bound.swap(true, Ordering::AcqRel) {
            return Err(TransportError::ReceiverTaken);
        }
        let rx_stats = Arc::clone(&self.inner.stats);
        super::drain_receiver(self.clone(), inbox, on_event, rx_stats, |link| {
            Arc::strong_count(&link.inner) == 1
        })
    }

    fn stats(&self) -> LinkStats {
        self.inner.stats.snapshot()
    }
}

impl std::fmt::Debug for UdpLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpLink")
            .field("peer", &self.inner.peer.to_string())
            .field("stats", &self.stats())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Listener: one socket, demultiplexed by source address
// ---------------------------------------------------------------------

struct PeerEntry {
    rx: Arc<RxQueue>,
    stats: Arc<SharedStats>,
}

struct ServerShared {
    socket: Arc<UdpSocket>,
    peers: Mutex<HashMap<SocketAddr, PeerEntry>>,
    /// Freshly announced peers awaiting `accept`.
    pending: Mutex<VecDeque<SocketAddr>>,
    pending_cv: Condvar,
    closed: AtomicBool,
}

/// Routes every arriving datagram: `HELLO` creates a peer entry and
/// wakes `accept`; anything else lands in its peer's queue. Holds only a
/// weak ref, so the thread reaps itself once the acceptor and every
/// accepted link are gone.
fn reader_loop(server: &Weak<ServerShared>) {
    let mut buf = vec![0u8; 64 * 1024 + 1];
    loop {
        let Some(srv) = server.upgrade() else { return };
        let _ = srv.socket.set_read_timeout(Some(Duration::from_millis(50)));
        match srv.socket.recv_from(&mut buf) {
            Ok((n, from)) if n > 0 => {
                if buf[0] == TAG_HELLO {
                    let mut peers = srv.peers.lock();
                    if let std::collections::hash_map::Entry::Vacant(slot) = peers.entry(from) {
                        slot.insert(PeerEntry {
                            rx: Arc::new(RxQueue::new()),
                            stats: Arc::new(SharedStats::default()),
                        });
                        srv.pending.lock().push_back(from);
                        srv.pending_cv.notify_all();
                    }
                } else if let Some(frame) = decode(buf[0], &buf[1..n]) {
                    if let Some(entry) = srv.peers.lock().get(&from) {
                        entry.rx.push(frame, &entry.stats);
                    }
                }
            }
            _ => {}
        }
    }
}

/// A bound UDP listening endpoint. Dropping it unblocks pending
/// `accept` calls; the shared reader keeps serving already-accepted
/// links and exits once the last of them is gone.
pub struct UdpAcceptor {
    server: Arc<ServerShared>,
    max_datagram: usize,
}

impl Drop for UdpAcceptor {
    fn drop(&mut self) {
        self.server.closed.store(true, Ordering::Release);
        self.server.pending_cv.notify_all();
    }
}

impl Acceptor for UdpAcceptor {
    type Link = UdpLink;

    fn local_addr(&self) -> String {
        self.server
            .socket
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_default()
    }

    fn accept(&self) -> Result<UdpLink, TransportError> {
        let peer_addr = {
            let mut pending = self.server.pending.lock();
            loop {
                if let Some(addr) = pending.pop_front() {
                    break addr;
                }
                if self.server.closed.load(Ordering::Acquire) {
                    return Err(TransportError::Closed);
                }
                self.server.pending_cv.wait(&mut pending);
            }
        };
        let entry = {
            let peers = self.server.peers.lock();
            let entry = peers.get(&peer_addr).ok_or(TransportError::Closed)?;
            (Arc::clone(&entry.rx), Arc::clone(&entry.stats))
        };
        Ok(UdpLink {
            inner: Arc::new(UdpInner {
                peer: PeerIdentity::new("udp", peer_addr.to_string()),
                side: LinkSide::Server {
                    server: Arc::clone(&self.server),
                    peer_addr,
                },
                rx: entry.0,
                max_datagram: self.max_datagram,
                stats: entry.1,
                fin_sent: AtomicBool::new(false),
                rx_bound: AtomicBool::new(false),
            }),
        })
    }
}

impl std::fmt::Debug for UdpAcceptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpAcceptor")
            .field("addr", &self.local_addr())
            .finish()
    }
}

// ---------------------------------------------------------------------
// The transport
// ---------------------------------------------------------------------

/// The UDP transport. Stateless apart from configuration; addresses are
/// standard socket addresses (`127.0.0.1:0` binds an ephemeral port).
#[derive(Clone, Debug)]
pub struct UdpTransport {
    max_datagram: usize,
}

impl UdpTransport {
    /// A transport with the default datagram payload limit
    /// ([`DEFAULT_MAX_DATAGRAM`]).
    #[must_use]
    pub fn new() -> UdpTransport {
        UdpTransport {
            max_datagram: DEFAULT_MAX_DATAGRAM,
        }
    }

    /// Overrides the per-datagram payload limit; larger data frames are
    /// dropped at the send end (and counted), as on a path with a hard
    /// MTU.
    #[must_use]
    pub fn with_max_datagram(max_datagram: usize) -> UdpTransport {
        UdpTransport {
            max_datagram: max_datagram.max(1),
        }
    }
}

impl Default for UdpTransport {
    fn default() -> Self {
        UdpTransport::new()
    }
}

impl Transport for UdpTransport {
    type Link = UdpLink;
    type Acceptor = UdpAcceptor;

    fn scheme(&self) -> &'static str {
        "udp"
    }

    fn listen(&self, addr: &str) -> Result<UdpAcceptor, TransportError> {
        let socket = Arc::new(UdpSocket::bind(addr)?);
        let server = Arc::new(ServerShared {
            socket,
            peers: Mutex::new(HashMap::new()),
            pending: Mutex::new(VecDeque::new()),
            pending_cv: Condvar::new(),
            closed: AtomicBool::new(false),
        });
        let weak = Arc::downgrade(&server);
        std::thread::Builder::new()
            .name("udp-netpipe-reader".into())
            .spawn(move || reader_loop(&weak))
            .map_err(TransportError::Io)?;
        Ok(UdpAcceptor {
            server,
            max_datagram: self.max_datagram,
        })
    }

    fn connect(&self, addr: &str) -> Result<UdpLink, TransportError> {
        // Bind an ephemeral socket of the same address family as the
        // target, so IPv6 listeners work like they do over TCP.
        let target = std::net::ToSocketAddrs::to_socket_addrs(addr)?
            .next()
            .ok_or_else(|| TransportError::NotFound(addr.to_owned()))?;
        let socket = if target.is_ipv6() {
            UdpSocket::bind("[::]:0")?
        } else {
            UdpSocket::bind("0.0.0.0:0")?
        };
        socket.connect(target)?;
        // Announce ourselves; the acceptor materialises the peer from
        // this datagram. No reply is required before streaming: data
        // sent before `accept` queues in the listener socket. The HELLO
        // itself is unacknowledged, so follow it with best-effort
        // duplicates (the server dedups by source address) — losing all
        // of them would leave the connection streaming into a black
        // hole. Only the first send propagates errors, so a late ICMP
        // rejection cannot make `connect` nondeterministic.
        socket.send(&[TAG_HELLO])?;
        for _ in 0..2 {
            let _ = socket.send(&[TAG_HELLO]);
        }
        Ok(UdpLink {
            inner: Arc::new(UdpInner {
                peer: PeerIdentity::new("udp", addr.to_owned()),
                side: LinkSide::Client {
                    socket,
                    recv_buf: Mutex::new(Vec::new()),
                },
                rx: Arc::new(RxQueue::new()),
                max_datagram: self.max_datagram,
                stats: Arc::new(SharedStats::default()),
                fin_sent: AtomicBool::new(false),
                rx_bound: AtomicBool::new(false),
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_establishes_a_demultiplexed_peer() {
        let transport = UdpTransport::new();
        let acceptor = transport.listen("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let c1 = transport.connect(&addr).unwrap();
        let c2 = transport.connect(&addr).unwrap();
        let s1 = acceptor.accept().unwrap();
        let s2 = acceptor.accept().unwrap();
        assert_ne!(s1.peer().addr(), s2.peer().addr());
        // Each server link sees only its own client's traffic.
        assert!(c1
            .send(Frame::Data(PayloadBytes::from(vec![1u8])))
            .accepted());
        assert!(c2
            .send(Frame::Data(PayloadBytes::from(vec![2u8])))
            .accepted());
        let deadline = Instant::now() + Duration::from_secs(10);
        let recv_one = |link: &UdpLink| loop {
            match link.recv(Duration::from_millis(100)) {
                RecvOutcome::Frame(Frame::Data(b)) => return b[0],
                RecvOutcome::TimedOut if Instant::now() < deadline => {}
                other => panic!("unexpected {other:?}"),
            }
        };
        assert_eq!(recv_one(&s1), 1);
        assert_eq!(recv_one(&s2), 2);
    }

    #[test]
    fn receive_queue_is_bounded_and_sheds_with_counting() {
        let rx = RxQueue::new();
        let stats = SharedStats::default();
        for i in 0..(RX_QUEUE_FRAMES + 10) {
            rx.push(
                Frame::Data(PayloadBytes::from(vec![(i % 251) as u8])),
                &stats,
            );
        }
        // Control frames are never shed, and still overtake the backlog.
        rx.push(Frame::Event(WireEvent::SetDropLevel(1)), &stats);
        assert_eq!(stats.dropped.load(Ordering::Relaxed), 10);
        assert!(matches!(
            rx.pop(&stats),
            Some(RecvOutcome::Frame(Frame::Event(_)))
        ));
        let mut data = 0;
        while let Some(RecvOutcome::Frame(Frame::Data(_))) = rx.pop(&stats) {
            data += 1;
        }
        assert_eq!(data, RX_QUEUE_FRAMES, "backlog capped at the queue bound");
        assert_eq!(stats.delivered.load(Ordering::Relaxed), data as u64);
    }

    #[test]
    fn oversized_frames_are_shed_and_counted() {
        let transport = UdpTransport::with_max_datagram(64);
        let acceptor = transport.listen("127.0.0.1:0").unwrap();
        let client = transport.connect(&acceptor.local_addr()).unwrap();
        assert_eq!(
            client.send(Frame::Data(PayloadBytes::from(vec![0u8; 1024]))),
            SendStatus::Dropped
        );
        let stats = client.stats();
        assert_eq!(stats.sent, 1);
        assert_eq!(stats.dropped, 1);
    }
}
