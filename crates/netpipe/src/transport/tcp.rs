//! The TCP transport, over real sockets.
//!
//! The send side hands frames to a writer OS thread (so a uniprocessor
//! kernel never blocks on socket I/O); the receive side reads frames off
//! the stream — either polled through [`Link::recv`] or pumped into an
//! inbox by the default `bind_receiver` thread, "network packets …
//! mapped to messages by the platform" (§4).
//!
//! TCP is reliable: data frames are never dropped. Backpressure shows up
//! as [`SendStatus::Saturated`] once the bounded send queue fills (the
//! send then completes blockingly). Control-lane frames jump the local
//! send queue, which is how out-of-band priority manifests on a single
//! ordered byte stream.

use super::{
    Acceptor, Frame, Link, LinkStats, PeerIdentity, RecvOutcome, SendStatus, SharedStats,
    Transport, TransportError,
};
use crate::framing::{write_frame, FrameKind, MAX_FRAME};
use crate::marshal::WireBytes;
use crate::proto::WireEvent;
use crate::wire;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Send side: two-lane queue drained by a writer thread
// ---------------------------------------------------------------------

struct TxQueues {
    /// Control lane: events and protocol messages. Unbounded, never
    /// dropped, drained before data (priority).
    ctrl: VecDeque<Frame>,
    /// Data lane, bounded by `TcpTransport::send_queue`.
    data: VecDeque<WireBytes>,
    /// `Fin` requested: written once both lanes drain (end of stream
    /// must not overtake its own data), then no further sends.
    fin_queued: bool,
    /// The writer thread exited (socket error or `Fin` written).
    writer_gone: bool,
}

struct TxShared {
    queues: Mutex<TxQueues>,
    cv: Condvar,
    capacity: usize,
    stats: Arc<SharedStats>,
}

impl TxShared {
    fn send(&self, frame: Frame) -> SendStatus {
        let mut q = self.queues.lock();
        if q.fin_queued || q.writer_gone {
            return SendStatus::Closed;
        }
        let status = match frame {
            Frame::Data(bytes) => {
                // Accounting happens only once the frame is actually
                // queued: a frame abandoned because the writer died
                // mid-wait must not count as sent on a never-drops
                // transport.
                let len = bytes.len() as u64;
                let status = if q.data.len() >= self.capacity {
                    // Reliable transport: wait for space rather than drop,
                    // and report the congestion.
                    while q.data.len() >= self.capacity && !q.writer_gone {
                        self.cv.wait(&mut q);
                    }
                    if q.writer_gone {
                        return SendStatus::Closed;
                    }
                    q.data.push_back(bytes);
                    SendStatus::Saturated
                } else {
                    q.data.push_back(bytes);
                    if (q.data.len() + 1) * 2 > self.capacity {
                        SendStatus::Saturated
                    } else {
                        SendStatus::Sent
                    }
                };
                self.stats.sent.fetch_add(1, Ordering::Relaxed);
                self.stats.bytes_sent.fetch_add(len, Ordering::Relaxed);
                status
            }
            Frame::Fin => {
                q.fin_queued = true;
                SendStatus::Sent
            }
            ctrl_frame => {
                q.ctrl.push_back(ctrl_frame);
                SendStatus::Sent
            }
        };
        self.cv.notify_all();
        status
    }
}

fn writer_loop(tx: &TxShared, stream: &mut TcpStream) {
    loop {
        let frame = {
            let mut q = tx.queues.lock();
            loop {
                if let Some(f) = q.ctrl.pop_front() {
                    break f;
                }
                if let Some(bytes) = q.data.pop_front() {
                    tx.cv.notify_all(); // space freed
                    break Frame::Data(bytes);
                }
                if q.fin_queued {
                    break Frame::Fin; // both lanes drained: end the stream
                }
                tx.cv.wait(&mut q);
            }
        };
        let result = match &frame {
            Frame::Data(bytes) => write_frame(stream, FrameKind::Data, bytes),
            Frame::Event(ev) => match wire::to_bytes(ev) {
                Ok(bytes) => write_frame(stream, FrameKind::Event, &bytes),
                Err(_) => Ok(()),
            },
            Frame::Control(bytes) => write_frame(stream, FrameKind::Control, bytes),
            Frame::Fin => {
                let _ = write_frame(stream, FrameKind::Fin, &[]);
                let _ = stream.shutdown(std::net::Shutdown::Write);
                break;
            }
        };
        if result.is_err() {
            break;
        }
    }
    let mut q = tx.queues.lock();
    q.writer_gone = true;
    tx.cv.notify_all();
}

// ---------------------------------------------------------------------
// The link
// ---------------------------------------------------------------------

/// Incremental frame reader: partial frames survive timed-out polls, so
/// a slow-arriving large frame is never corrupted by polling `recv`.
struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

enum ReadStep {
    /// A data frame, sealed straight out of the stream buffer.
    Data(WireBytes),
    /// A control-lane frame (event/control/fin) with its raw payload —
    /// kept as a `Vec` so `Frame::Control` needs no second copy.
    Ctrl(FrameKind, Vec<u8>),
    Eof,
    TimedOut,
    Broken,
}

impl FrameReader {
    /// Tries to complete one frame before `deadline`.
    fn read_frame_by(&mut self, deadline: Instant) -> ReadStep {
        loop {
            // A complete `[kind][len: u32 LE][payload]` in the buffer?
            if self.buf.len() >= 5 {
                let Ok(kind) = FrameKind::from_byte(self.buf[0]) else {
                    return ReadStep::Broken;
                };
                let len = u32::from_le_bytes(self.buf[1..5].try_into().expect("4 bytes")) as usize;
                if len > MAX_FRAME {
                    return ReadStep::Broken;
                }
                if self.buf.len() >= 5 + len {
                    // One read-side copy out of the stream buffer, into
                    // whichever representation the frame kind needs.
                    let step = match kind {
                        FrameKind::Data => {
                            ReadStep::Data(WireBytes::copy_from_slice(&self.buf[5..5 + len]))
                        }
                        other => ReadStep::Ctrl(other, self.buf[5..5 + len].to_vec()),
                    };
                    self.buf.drain(..5 + len);
                    return step;
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return ReadStep::TimedOut;
            }
            let _ = self
                .stream
                .set_read_timeout(Some((deadline - now).max(Duration::from_millis(1))));
            let mut tmp = [0u8; 16 * 1024];
            match self.stream.read(&mut tmp) {
                Ok(0) => return ReadStep::Eof,
                Ok(n) => self.buf.extend_from_slice(&tmp[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => return ReadStep::Broken,
            }
        }
    }
}

struct TcpInner {
    peer: PeerIdentity,
    tx: Arc<TxShared>,
    /// The read half, shared by polling `recv` calls and the
    /// `bind_receiver` drain thread (one receiver at a time).
    reader: Mutex<Option<FrameReader>>,
    /// Peer sent `Fin` (orderly end observed by the reader).
    fin_seen: AtomicBool,
    stats: Arc<SharedStats>,
    writer: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// A handle on the socket for teardown: lets `drop` unblock a writer
    /// stuck in `write` against a peer that stopped reading.
    shutdown_stream: TcpStream,
    /// A receiver binding exists (at most one per link).
    rx_bound: AtomicBool,
}

impl Drop for TcpInner {
    fn drop(&mut self) {
        // Best-effort orderly close: ask for Fin, give the writer a
        // bounded window to flush, then cut the socket so the join below
        // cannot hang on a peer that stopped reading.
        self.tx.send(Frame::Fin);
        {
            let mut q = self.tx.queues.lock();
            let deadline = Instant::now() + Duration::from_secs(2);
            while !q.writer_gone {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                self.tx.cv.wait_for(&mut q, deadline - now);
            }
            if !q.writer_gone {
                let _ = self.shutdown_stream.shutdown(std::net::Shutdown::Both);
            }
        }
        if let Some(h) = self.writer.lock().take() {
            let _ = h.join();
        }
    }
}

/// One end of a TCP connection (cheap to clone).
#[derive(Clone)]
pub struct TcpLink {
    inner: Arc<TcpInner>,
}

impl TcpLink {
    fn from_stream(stream: TcpStream, send_queue: usize) -> Result<TcpLink, TransportError> {
        let peer_addr = stream.peer_addr()?;
        let stats = Arc::new(SharedStats::default());
        let tx = Arc::new(TxShared {
            queues: Mutex::new(TxQueues {
                ctrl: VecDeque::new(),
                data: VecDeque::new(),
                fin_queued: false,
                writer_gone: false,
            }),
            cv: Condvar::new(),
            capacity: send_queue.max(1),
            stats: Arc::clone(&stats),
        });
        let mut write_half = stream.try_clone()?;
        let shutdown_stream = stream.try_clone()?;
        let tx2 = Arc::clone(&tx);
        let writer = std::thread::Builder::new()
            .name("tcp-netpipe-writer".into())
            .spawn(move || writer_loop(&tx2, &mut write_half))
            .map_err(TransportError::Io)?;
        Ok(TcpLink {
            inner: Arc::new(TcpInner {
                peer: PeerIdentity::new("tcp", peer_addr.to_string()),
                tx,
                reader: Mutex::new(Some(FrameReader {
                    stream,
                    buf: Vec::new(),
                })),
                fin_seen: AtomicBool::new(false),
                stats,
                writer: Mutex::new(Some(writer)),
                shutdown_stream,
                rx_bound: AtomicBool::new(false),
            }),
        })
    }
}

impl Link for TcpLink {
    fn peer(&self) -> PeerIdentity {
        self.inner.peer.clone()
    }

    fn send(&self, frame: Frame) -> SendStatus {
        self.inner.tx.send(frame)
    }

    fn recv(&self, timeout: Duration) -> RecvOutcome {
        if self.inner.fin_seen.load(Ordering::Acquire) {
            return RecvOutcome::Fin;
        }
        let deadline = Instant::now() + timeout;
        let mut guard = self.inner.reader.lock();
        let Some(reader) = guard.as_mut() else {
            return RecvOutcome::Closed;
        };
        match reader.read_frame_by(deadline) {
            ReadStep::Data(payload) => {
                self.inner.stats.delivered.fetch_add(1, Ordering::Relaxed);
                RecvOutcome::Frame(Frame::Data(payload))
            }
            ReadStep::Ctrl(FrameKind::Event, payload) => {
                match wire::from_bytes::<WireEvent>(&payload) {
                    Ok(ev) => RecvOutcome::Frame(Frame::Event(ev)),
                    Err(_) => RecvOutcome::Closed,
                }
            }
            ReadStep::Ctrl(FrameKind::Control, payload) => {
                RecvOutcome::Frame(Frame::Control(payload))
            }
            ReadStep::Ctrl(FrameKind::Fin, _) => {
                self.inner.fin_seen.store(true, Ordering::Release);
                RecvOutcome::Fin
            }
            ReadStep::Ctrl(FrameKind::Data, _) => unreachable!("data frames use ReadStep::Data"),
            ReadStep::TimedOut => RecvOutcome::TimedOut,
            ReadStep::Eof | ReadStep::Broken => RecvOutcome::Closed,
        }
    }

    fn bind_receiver(
        &self,
        inbox: Option<infopipes::InboxSender>,
        on_event: impl Fn(infopipes::ControlEvent) + Send + 'static,
    ) -> Result<(), TransportError> {
        if self.inner.rx_bound.swap(true, Ordering::AcqRel) {
            return Err(TransportError::ReceiverTaken);
        }
        let rx_stats = Arc::clone(&self.inner.stats);
        super::drain_receiver(self.clone(), inbox, on_event, rx_stats, |link| {
            Arc::strong_count(&link.inner) == 1
        })
    }

    fn stats(&self) -> LinkStats {
        // TCP never drops; `delivered` counts what this end received.
        self.inner.stats.snapshot()
    }
}

impl std::fmt::Debug for TcpLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpLink")
            .field("peer", &self.inner.peer.to_string())
            .field("stats", &self.stats())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Transport and acceptor
// ---------------------------------------------------------------------

/// The TCP transport. Stateless apart from configuration; addresses are
/// standard socket addresses (`127.0.0.1:0` binds an ephemeral port).
#[derive(Clone, Debug)]
pub struct TcpTransport {
    send_queue: usize,
}

impl TcpTransport {
    /// A transport with the default send-queue depth (1024 data frames).
    #[must_use]
    pub fn new() -> TcpTransport {
        TcpTransport { send_queue: 1024 }
    }

    /// Overrides the bounded data-lane send queue depth; sends report
    /// `Saturated` (and block) when it fills.
    #[must_use]
    pub fn with_send_queue(send_queue: usize) -> TcpTransport {
        TcpTransport { send_queue }
    }
}

impl Default for TcpTransport {
    fn default() -> Self {
        TcpTransport::new()
    }
}

impl Transport for TcpTransport {
    type Link = TcpLink;
    type Acceptor = TcpAcceptor;

    fn scheme(&self) -> &'static str {
        "tcp"
    }

    fn listen(&self, addr: &str) -> Result<TcpAcceptor, TransportError> {
        let listener = TcpListener::bind(addr)?;
        Ok(TcpAcceptor {
            listener,
            send_queue: self.send_queue,
        })
    }

    fn connect(&self, addr: &str) -> Result<TcpLink, TransportError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        TcpLink::from_stream(stream, self.send_queue)
    }
}

/// A bound TCP listener.
pub struct TcpAcceptor {
    listener: TcpListener,
    send_queue: usize,
}

impl Acceptor for TcpAcceptor {
    type Link = TcpLink;

    fn local_addr(&self) -> String {
        self.listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_default()
    }

    fn accept(&self) -> Result<TcpLink, TransportError> {
        let (stream, _) = self.listener.accept()?;
        stream.set_nodelay(true).ok();
        TcpLink::from_stream(stream, self.send_queue)
    }
}

impl std::fmt::Debug for TcpAcceptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpAcceptor")
            .field("addr", &self.local_addr())
            .finish()
    }
}
