//! The TCP transport, over real sockets.
//!
//! The send side hands frames to a writer OS thread (so a uniprocessor
//! kernel never blocks on socket I/O); the receive side reads frames off
//! the stream — either polled through [`Link::recv`] or pumped into an
//! inbox by the default `bind_receiver` thread, "network packets …
//! mapped to messages by the platform" (§4).
//!
//! TCP is reliable: data frames are never dropped. Backpressure shows up
//! as [`SendStatus::Saturated`] once the bounded send queue fills (the
//! send then completes blockingly). Control-lane frames jump the local
//! send queue, which is how out-of-band priority manifests on a single
//! ordered byte stream.

use super::{
    Acceptor, BatchPolicy, Frame, Link, LinkStats, PeerIdentity, RecvOutcome, SendStatus,
    SharedStats, Transport, TransportError,
};
use crate::framing::{
    encode_header, write_all_vectored, write_frame, FrameKind, HEADER_LEN, MAX_FRAME,
};
use crate::marshal::WireBytes;
use crate::proto::WireEvent;
use crate::wire;
use infopipes::BufferPool;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::io::{IoSlice, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Send side: two-lane queue drained by a writer thread
// ---------------------------------------------------------------------

struct TxQueues {
    /// Control lane: events and protocol messages. Unbounded, never
    /// dropped, drained before data (priority).
    ctrl: VecDeque<Frame>,
    /// Data lane, bounded by `TcpTransport::send_queue`.
    data: VecDeque<WireBytes>,
    /// `Fin` requested: written once both lanes drain (end of stream
    /// must not overtake its own data), then no further sends.
    fin_queued: bool,
    /// The writer thread exited (socket error or `Fin` written).
    writer_gone: bool,
}

struct TxShared {
    queues: Mutex<TxQueues>,
    cv: Condvar,
    capacity: usize,
    batch: BatchPolicy,
    stats: Arc<SharedStats>,
}

impl TxShared {
    fn send(&self, frame: Frame) -> SendStatus {
        let mut q = self.queues.lock();
        if q.fin_queued || q.writer_gone {
            return SendStatus::Closed;
        }
        let status = match frame {
            Frame::Data(bytes) => {
                // Accounting happens only once the frame is actually
                // queued: a frame abandoned because the writer died
                // mid-wait must not count as sent on a never-drops
                // transport.
                let len = bytes.len() as u64;
                let status = if q.data.len() >= self.capacity {
                    // Reliable transport: wait for space rather than drop,
                    // and report the congestion.
                    while q.data.len() >= self.capacity && !q.writer_gone {
                        self.cv.wait(&mut q);
                    }
                    if q.writer_gone {
                        return SendStatus::Closed;
                    }
                    q.data.push_back(bytes);
                    SendStatus::Saturated
                } else {
                    q.data.push_back(bytes);
                    if (q.data.len() + 1) * 2 > self.capacity {
                        SendStatus::Saturated
                    } else {
                        SendStatus::Sent
                    }
                };
                self.stats.sent.fetch_add(1, Ordering::Relaxed);
                self.stats.bytes_sent.fetch_add(len, Ordering::Relaxed);
                status
            }
            Frame::Fin => {
                q.fin_queued = true;
                SendStatus::Sent
            }
            ctrl_frame => {
                q.ctrl.push_back(ctrl_frame);
                SendStatus::Sent
            }
        };
        self.cv.notify_all();
        status
    }
}

/// Drains ready frames under the lock: every pending control-lane frame
/// (priority: they always overtake data), then data frames up to the
/// batch policy. Returns `true` when `Fin` should be written — both
/// lanes fully drained with `fin_queued` set, so end of stream never
/// overtakes its own data.
fn drain_ready(
    q: &mut TxQueues,
    policy: BatchPolicy,
    ctrl: &mut Vec<Frame>,
    data: &mut Vec<WireBytes>,
    data_bytes: &mut usize,
) -> bool {
    while let Some(f) = q.ctrl.pop_front() {
        ctrl.push(f);
    }
    while data.len() < policy.max_frames.max(1) && *data_bytes < policy.max_bytes {
        let Some(bytes) = q.data.pop_front() else {
            break;
        };
        *data_bytes += bytes.len();
        data.push(bytes);
    }
    q.fin_queued && q.ctrl.is_empty() && q.data.is_empty()
}

/// The writer thread: coalesces queued frames into one vectored write —
/// control frames first (their priority is preserved inside the batch),
/// then data frames, each as a stack-assembled 5-byte header plus its
/// shared payload buffer, with no coalescing copy. N small frames cost
/// one `write_vectored` syscall instead of N (counted in `wire_writes`).
fn writer_loop(tx: &TxShared, stream: &mut TcpStream) {
    let policy = tx.batch;
    loop {
        let mut ctrl: Vec<Frame> = Vec::new();
        let mut data: Vec<WireBytes> = Vec::new();
        let mut data_bytes = 0usize;
        let mut fin;
        {
            let mut q = tx.queues.lock();
            loop {
                fin = drain_ready(&mut q, policy, &mut ctrl, &mut data, &mut data_bytes);
                if !ctrl.is_empty() || !data.is_empty() || fin {
                    break;
                }
                tx.cv.wait(&mut q);
            }
            // Hold an undersized all-data batch open for one linger
            // window: frames arriving meanwhile join the same write.
            if let Some(linger) = policy.linger {
                if ctrl.is_empty()
                    && !fin
                    && data.len() < policy.max_frames
                    && data_bytes < policy.max_bytes
                {
                    tx.cv.wait_for(&mut q, linger);
                    fin = drain_ready(&mut q, policy, &mut ctrl, &mut data, &mut data_bytes);
                }
            }
            if !data.is_empty() {
                tx.cv.notify_all(); // space freed
            }
        }

        // Encode control frames outside the lock (events marshal here).
        let mut ctrl_payloads: Vec<(FrameKind, Vec<u8>)> = Vec::with_capacity(ctrl.len());
        for f in ctrl {
            match f {
                Frame::Event(ev) => {
                    if let Ok(bytes) = wire::to_bytes(&ev) {
                        ctrl_payloads.push((FrameKind::Event, bytes));
                    }
                }
                Frame::Control(bytes) => ctrl_payloads.push((FrameKind::Control, bytes)),
                Frame::Data(_) | Frame::Fin => unreachable!("only ctrl-lane frames queued"),
            }
        }
        if ctrl_payloads.iter().any(|(_, b)| b.len() > MAX_FRAME)
            || data.iter().any(|b| b.len() > MAX_FRAME)
        {
            break; // oversized frame: fail the link, as write_frame would
        }

        let mut headers: Vec<[u8; HEADER_LEN]> =
            Vec::with_capacity(ctrl_payloads.len() + data.len());
        for (kind, bytes) in &ctrl_payloads {
            headers.push(encode_header(*kind, bytes.len()));
        }
        for bytes in &data {
            headers.push(encode_header(FrameKind::Data, bytes.len()));
        }
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(headers.len() * 2);
        let mut next_header = 0;
        for (_, bytes) in &ctrl_payloads {
            slices.push(IoSlice::new(&headers[next_header]));
            slices.push(IoSlice::new(bytes));
            next_header += 1;
        }
        for bytes in &data {
            slices.push(IoSlice::new(&headers[next_header]));
            slices.push(IoSlice::new(bytes));
            next_header += 1;
        }
        if !slices.is_empty() {
            match write_all_vectored(stream, &mut slices) {
                Ok(calls) => {
                    tx.stats
                        .wire_writes
                        .fetch_add(calls as u64, Ordering::Relaxed);
                }
                Err(_) => break,
            }
        }
        if fin {
            if write_frame(stream, FrameKind::Fin, &[]).is_ok() {
                tx.stats.wire_writes.fetch_add(1, Ordering::Relaxed);
            }
            let _ = stream.shutdown(std::net::Shutdown::Write);
            break;
        }
    }
    let mut q = tx.queues.lock();
    q.writer_gone = true;
    tx.cv.notify_all();
}

// ---------------------------------------------------------------------
// The link
// ---------------------------------------------------------------------

/// Incremental frame reader: partial frames survive timed-out polls, so
/// a slow-arriving large frame is never corrupted by polling `recv`.
struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Bytes before `pos` are consumed; frames parse from `buf[pos..]`.
    /// The buffer is compacted only before a refill, so a read that
    /// lands dozens of small frames costs one memmove total instead of
    /// one per frame.
    pos: usize,
    /// Receive-side buffer pool: data payloads are sealed into recycled
    /// buffers, so the steady-state read path allocates nothing.
    pool: BufferPool,
}

enum ReadStep {
    /// A data frame, sealed straight out of the stream buffer.
    Data(WireBytes),
    /// A control-lane frame (event/control/fin) with its raw payload —
    /// kept as a `Vec` so `Frame::Control` needs no second copy.
    Ctrl(FrameKind, Vec<u8>),
    Eof,
    TimedOut,
    Broken,
}

impl FrameReader {
    /// Tries to complete one frame before `deadline`.
    fn read_frame_by(&mut self, deadline: Instant) -> ReadStep {
        loop {
            // A complete `[kind][len: u32 LE][payload]` at the cursor?
            let pending = &self.buf[self.pos..];
            if pending.len() >= 5 {
                let Ok(kind) = FrameKind::from_byte(pending[0]) else {
                    return ReadStep::Broken;
                };
                let len = u32::from_le_bytes(pending[1..5].try_into().expect("4 bytes")) as usize;
                if len > MAX_FRAME {
                    return ReadStep::Broken;
                }
                if pending.len() >= 5 + len {
                    // One read-side copy out of the stream buffer, into
                    // whichever representation the frame kind needs.
                    let step = match kind {
                        FrameKind::Data => {
                            let mut b = self.pool.acquire(len);
                            b.buf_mut().extend_from_slice(&pending[5..5 + len]);
                            ReadStep::Data(b.seal())
                        }
                        other => ReadStep::Ctrl(other, pending[5..5 + len].to_vec()),
                    };
                    self.pos += 5 + len;
                    if self.pos == self.buf.len() {
                        self.buf.clear();
                        self.pos = 0;
                    }
                    return step;
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return ReadStep::TimedOut;
            }
            // About to refill: reclaim the consumed prefix so the buffer
            // stays bounded by one read plus one partial frame.
            if self.pos > 0 {
                self.buf.drain(..self.pos);
                self.pos = 0;
            }
            let _ = self
                .stream
                .set_read_timeout(Some((deadline - now).max(Duration::from_millis(1))));
            let mut tmp = [0u8; 16 * 1024];
            match self.stream.read(&mut tmp) {
                Ok(0) => return ReadStep::Eof,
                Ok(n) => self.buf.extend_from_slice(&tmp[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => return ReadStep::Broken,
            }
        }
    }
}

struct TcpInner {
    peer: PeerIdentity,
    tx: Arc<TxShared>,
    /// The read half, shared by polling `recv` calls and the
    /// `bind_receiver` drain thread (one receiver at a time).
    reader: Mutex<Option<FrameReader>>,
    /// Peer sent `Fin` (orderly end observed by the reader).
    fin_seen: AtomicBool,
    stats: Arc<SharedStats>,
    /// The receive-side pool (shared with the [`FrameReader`]) so callers
    /// can observe recycling pressure via [`TcpLink::pool_stats`].
    rx_pool: BufferPool,
    writer: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// A handle on the socket for teardown: lets `drop` unblock a writer
    /// stuck in `write` against a peer that stopped reading.
    shutdown_stream: TcpStream,
    /// A receiver binding exists (at most one per link).
    rx_bound: AtomicBool,
}

impl Drop for TcpInner {
    fn drop(&mut self) {
        // Best-effort orderly close: ask for Fin, give the writer a
        // bounded window to flush, then cut the socket so the join below
        // cannot hang on a peer that stopped reading.
        self.tx.send(Frame::Fin);
        {
            let mut q = self.tx.queues.lock();
            let deadline = Instant::now() + Duration::from_secs(2);
            while !q.writer_gone {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                self.tx.cv.wait_for(&mut q, deadline - now);
            }
            if !q.writer_gone {
                let _ = self.shutdown_stream.shutdown(std::net::Shutdown::Both);
            }
        }
        if let Some(h) = self.writer.lock().take() {
            let _ = h.join();
        }
    }
}

/// One end of a TCP connection (cheap to clone).
#[derive(Clone)]
pub struct TcpLink {
    inner: Arc<TcpInner>,
}

impl TcpLink {
    fn from_stream(
        stream: TcpStream,
        send_queue: usize,
        batch: BatchPolicy,
    ) -> Result<TcpLink, TransportError> {
        let peer_addr = stream.peer_addr()?;
        let stats = Arc::new(SharedStats::default());
        let rx_pool = BufferPool::new();
        let tx = Arc::new(TxShared {
            queues: Mutex::new(TxQueues {
                ctrl: VecDeque::new(),
                data: VecDeque::new(),
                fin_queued: false,
                writer_gone: false,
            }),
            cv: Condvar::new(),
            capacity: send_queue.max(1),
            batch,
            stats: Arc::clone(&stats),
        });
        let mut write_half = stream.try_clone()?;
        let shutdown_stream = stream.try_clone()?;
        let tx2 = Arc::clone(&tx);
        let writer = std::thread::Builder::new()
            .name("tcp-netpipe-writer".into())
            .spawn(move || writer_loop(&tx2, &mut write_half))
            .map_err(TransportError::Io)?;
        Ok(TcpLink {
            inner: Arc::new(TcpInner {
                peer: PeerIdentity::new("tcp", peer_addr.to_string()),
                tx,
                reader: Mutex::new(Some(FrameReader {
                    stream,
                    buf: Vec::new(),
                    pos: 0,
                    pool: rx_pool.clone(),
                })),
                fin_seen: AtomicBool::new(false),
                stats,
                rx_pool,
                writer: Mutex::new(Some(writer)),
                shutdown_stream,
                rx_bound: AtomicBool::new(false),
            }),
        })
    }

    /// Statistics of the receive-side buffer pool: hit/miss counts and
    /// the number of payload buffers still checked out downstream.
    #[must_use]
    pub fn pool_stats(&self) -> infopipes::PoolStats {
        self.inner.rx_pool.stats()
    }
}

impl Link for TcpLink {
    fn peer(&self) -> PeerIdentity {
        self.inner.peer.clone()
    }

    fn send(&self, frame: Frame) -> SendStatus {
        self.inner.tx.send(frame)
    }

    fn send_ready(&self) -> bool {
        let q = self.inner.tx.queues.lock();
        // A finished or dead writer makes `send` return Closed without
        // waiting, so only a full data lane means "would block".
        q.fin_queued || q.writer_gone || q.data.len() < self.inner.tx.capacity
    }

    fn recv(&self, timeout: Duration) -> RecvOutcome {
        if self.inner.fin_seen.load(Ordering::Acquire) {
            return RecvOutcome::Fin;
        }
        let deadline = Instant::now() + timeout;
        let mut guard = self.inner.reader.lock();
        let Some(reader) = guard.as_mut() else {
            return RecvOutcome::Closed;
        };
        match reader.read_frame_by(deadline) {
            ReadStep::Data(payload) => {
                self.inner.stats.delivered.fetch_add(1, Ordering::Relaxed);
                RecvOutcome::Frame(Frame::Data(payload))
            }
            ReadStep::Ctrl(FrameKind::Event, payload) => {
                match wire::from_bytes::<WireEvent>(&payload) {
                    Ok(ev) => RecvOutcome::Frame(Frame::Event(ev)),
                    Err(_) => RecvOutcome::Closed,
                }
            }
            ReadStep::Ctrl(FrameKind::Control, payload) => {
                RecvOutcome::Frame(Frame::Control(payload))
            }
            ReadStep::Ctrl(FrameKind::Fin, _) => {
                self.inner.fin_seen.store(true, Ordering::Release);
                RecvOutcome::Fin
            }
            ReadStep::Ctrl(FrameKind::Data, _) => unreachable!("data frames use ReadStep::Data"),
            ReadStep::TimedOut => RecvOutcome::TimedOut,
            ReadStep::Eof | ReadStep::Broken => RecvOutcome::Closed,
        }
    }

    fn bind_receiver(
        &self,
        inbox: Option<infopipes::InboxSender>,
        on_event: impl Fn(infopipes::ControlEvent) + Send + 'static,
    ) -> Result<(), TransportError> {
        if self.inner.rx_bound.swap(true, Ordering::AcqRel) {
            return Err(TransportError::ReceiverTaken);
        }
        let rx_stats = Arc::clone(&self.inner.stats);
        super::drain_receiver(self.clone(), inbox, on_event, rx_stats, |link| {
            Arc::strong_count(&link.inner) == 1
        })
    }

    fn stats(&self) -> LinkStats {
        // TCP never drops; `delivered` counts what this end received.
        self.inner.stats.snapshot()
    }
}

impl std::fmt::Debug for TcpLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpLink")
            .field("peer", &self.inner.peer.to_string())
            .field("stats", &self.stats())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Transport and acceptor
// ---------------------------------------------------------------------

/// The TCP transport. Stateless apart from configuration; addresses are
/// standard socket addresses (`127.0.0.1:0` binds an ephemeral port).
#[derive(Clone, Debug)]
pub struct TcpTransport {
    send_queue: usize,
    batch: BatchPolicy,
}

impl TcpTransport {
    /// A transport with the default send-queue depth (1024 data frames)
    /// and the default [`BatchPolicy`].
    #[must_use]
    pub fn new() -> TcpTransport {
        TcpTransport {
            send_queue: 1024,
            batch: BatchPolicy::default(),
        }
    }

    /// Overrides the bounded data-lane send queue depth; sends report
    /// `Saturated` (and block) when it fills.
    #[must_use]
    pub fn with_send_queue(send_queue: usize) -> TcpTransport {
        TcpTransport {
            send_queue,
            ..TcpTransport::new()
        }
    }

    /// Overrides how the writer thread coalesces small frames into one
    /// vectored write. Applies to every link this transport creates or
    /// accepts.
    #[must_use]
    pub fn with_batching(mut self, batch: BatchPolicy) -> TcpTransport {
        self.batch = batch;
        self
    }

    /// Disables frame coalescing: each frame gets its own write
    /// (the pre-batching behaviour; useful for latency-sensitive or
    /// comparison runs).
    #[must_use]
    pub fn without_batching(self) -> TcpTransport {
        self.with_batching(BatchPolicy::unbatched())
    }
}

impl Default for TcpTransport {
    fn default() -> Self {
        TcpTransport::new()
    }
}

impl Transport for TcpTransport {
    type Link = TcpLink;
    type Acceptor = TcpAcceptor;

    fn scheme(&self) -> &'static str {
        "tcp"
    }

    fn listen(&self, addr: &str) -> Result<TcpAcceptor, TransportError> {
        let listener = TcpListener::bind(addr)?;
        Ok(TcpAcceptor {
            listener,
            send_queue: self.send_queue,
            batch: self.batch,
        })
    }

    fn connect(&self, addr: &str) -> Result<TcpLink, TransportError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        TcpLink::from_stream(stream, self.send_queue, self.batch)
    }
}

/// A bound TCP listener.
pub struct TcpAcceptor {
    listener: TcpListener,
    send_queue: usize,
    batch: BatchPolicy,
}

impl Acceptor for TcpAcceptor {
    type Link = TcpLink;

    fn local_addr(&self) -> String {
        self.listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_default()
    }

    fn accept(&self) -> Result<TcpLink, TransportError> {
        let (stream, _) = self.listener.accept()?;
        stream.set_nodelay(true).ok();
        TcpLink::from_stream(stream, self.send_queue, self.batch)
    }

    fn accept_timeout(&self, timeout: Duration) -> Result<Option<TcpLink>, TransportError> {
        // `TcpListener` has no native accept timeout: poll a nonblocking
        // accept at a small granularity until the deadline.
        const POLL: Duration = Duration::from_millis(5);
        let deadline = Instant::now() + timeout;
        self.listener.set_nonblocking(true)?;
        let outcome = loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Accepted sockets do not inherit the listener's
                    // nonblocking mode on every platform; force it off.
                    stream.set_nonblocking(false).ok();
                    stream.set_nodelay(true).ok();
                    break TcpLink::from_stream(stream, self.send_queue, self.batch).map(Some);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    let now = Instant::now();
                    if now >= deadline {
                        break Ok(None);
                    }
                    std::thread::sleep(POLL.min(deadline - now));
                }
                Err(e) => break Err(TransportError::Io(e)),
            }
        };
        self.listener.set_nonblocking(false).ok();
        outcome
    }
}

impl std::fmt::Debug for TcpAcceptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpAcceptor")
            .field("addr", &self.local_addr())
            .finish()
    }
}
