//! The middleware protocol: control events and factory messages in
//! marshallable form.

use infopipes::ControlEvent;
use serde::{Deserialize, Serialize};

/// A control event in wire form ([`ControlEvent`] itself carries an `Arc`
/// and is not serializable directly).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WireEvent {
    /// See [`ControlEvent::Start`].
    Start,
    /// See [`ControlEvent::Stop`].
    Stop,
    /// See [`ControlEvent::Eos`].
    Eos,
    /// See [`ControlEvent::SetRate`].
    SetRate(f64),
    /// See [`ControlEvent::SetDropLevel`].
    SetDropLevel(u8),
    /// See [`ControlEvent::WindowResize`].
    WindowResize {
        /// Width in pixels.
        width: u32,
        /// Height in pixels.
        height: u32,
    },
    /// See [`ControlEvent::FrameRelease`].
    FrameRelease(u64),
    /// See [`ControlEvent::Custom`].
    Custom {
        /// Event name.
        name: String,
        /// Scalar payload.
        value: f64,
    },
}

impl From<&ControlEvent> for WireEvent {
    fn from(ev: &ControlEvent) -> WireEvent {
        match ev {
            ControlEvent::Start => WireEvent::Start,
            ControlEvent::Stop => WireEvent::Stop,
            ControlEvent::Eos => WireEvent::Eos,
            ControlEvent::SetRate(r) => WireEvent::SetRate(*r),
            ControlEvent::SetDropLevel(l) => WireEvent::SetDropLevel(*l),
            ControlEvent::WindowResize { width, height } => WireEvent::WindowResize {
                width: *width,
                height: *height,
            },
            ControlEvent::FrameRelease(seq) => WireEvent::FrameRelease(*seq),
            ControlEvent::Custom { name, value } => WireEvent::Custom {
                name: name.to_string(),
                value: *value,
            },
        }
    }
}

impl From<WireEvent> for ControlEvent {
    fn from(ev: WireEvent) -> ControlEvent {
        match ev {
            WireEvent::Start => ControlEvent::Start,
            WireEvent::Stop => ControlEvent::Stop,
            WireEvent::Eos => ControlEvent::Eos,
            WireEvent::SetRate(r) => ControlEvent::SetRate(r),
            WireEvent::SetDropLevel(l) => ControlEvent::SetDropLevel(l),
            WireEvent::WindowResize { width, height } => {
                ControlEvent::WindowResize { width, height }
            }
            WireEvent::FrameRelease(seq) => ControlEvent::FrameRelease(seq),
            WireEvent::Custom { name, value } => ControlEvent::custom(name, value),
        }
    }
}

/// Factory / query protocol messages (carried in `Control` frames).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub(crate) enum CtrlMsg {
    /// Client → host: instantiate the named components, in order, behind
    /// an inbox and a free-running pump.
    CreatePipeline {
        /// Registered component names, upstream to downstream.
        components: Vec<String>,
    },
    /// Host → client: creation result.
    Created {
        /// Empty on success, otherwise the failure description.
        error: Option<String>,
    },
    /// Client → host: ask for the Typespec at the end of the remote
    /// chain (§2.4's remote Typespec query).
    QuerySpec,
    /// Host → client: the spec summary.
    SpecReply {
        /// The item type's name.
        item: String,
        /// The remote location property.
        location: Option<String>,
        /// QoS entries: (dimension name, min, max).
        qos: Vec<(String, f64, f64)>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire;

    #[test]
    fn events_round_trip_through_wire_form() {
        let events = vec![
            ControlEvent::Start,
            ControlEvent::Stop,
            ControlEvent::Eos,
            ControlEvent::SetRate(29.97),
            ControlEvent::SetDropLevel(2),
            ControlEvent::WindowResize {
                width: 640,
                height: 480,
            },
            ControlEvent::FrameRelease(99),
            ControlEvent::custom(feedback::readings::FILL_LEVEL, 0.5),
        ];
        for ev in events {
            let wire_form = WireEvent::from(&ev);
            let bytes = wire::to_bytes(&wire_form).unwrap();
            let back: WireEvent = wire::from_bytes(&bytes).unwrap();
            let restored: ControlEvent = back.into();
            assert_eq!(restored, ev);
        }
    }

    #[test]
    fn ctrl_msgs_round_trip() {
        let msgs = vec![
            CtrlMsg::CreatePipeline {
                components: vec!["unmarshal".into(), "decoder".into()],
            },
            CtrlMsg::Created { error: None },
            CtrlMsg::Created {
                error: Some("no such component".into()),
            },
            CtrlMsg::QuerySpec,
            CtrlMsg::SpecReply {
                item: "RawFrame".into(),
                location: Some("consumer".into()),
                qos: vec![("frame-rate-hz".into(), 30.0, 30.0)],
            },
        ];
        for m in msgs {
            let bytes = wire::to_bytes(&m).unwrap();
            let back: CtrlMsg = wire::from_bytes(&bytes).unwrap();
            assert_eq!(back, m);
        }
    }
}
