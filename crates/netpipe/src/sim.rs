//! A simulated network link, running entirely inside a kernel.
//!
//! The link is itself a message-based thread: the producer pipeline's
//! send end posts packets to it; the link models serialization delay
//! (bandwidth), propagation latency, jitter, and a bounded queue that
//! drops on overflow — the "arbitrary dropping in the network" of Fig. 1
//! — and delivers arrivals into the consumer pipeline's inbox via kernel
//! timers. Under a virtual-time kernel the whole network is
//! deterministic.

use crate::marshal::WireBytes;
use infopipes::{ControlEvent, EventCtx, InboxSender, Item, ItemType, Stage, StageCtx};
use mbthread::{Ctx, Envelope, Flow, Kernel, KernelError, Message, Tag, ThreadId};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;
use typespec::Typespec;

/// Send-end → link: a packet to transmit (payload `WireBytes`).
const NET_DATA: Tag = Tag(0x4E50_0001);
/// Send-end → link: the flow ended; finish the inbox once drained.
const NET_FIN: Tag = Tag(0x4E50_0002);
/// Link → itself (timer): a packet arrives now.
const NET_DELIVER: Tag = Tag(0x4E50_0003);

/// Link parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Propagation latency.
    pub latency: Duration,
    /// Uniform random extra delay in `[0, jitter]` per packet.
    pub jitter: Duration,
    /// Link bandwidth in bytes/second (`None` = infinite).
    pub bandwidth_bps: Option<f64>,
    /// Bytes the link will queue before dropping (congestion).
    pub queue_bytes: usize,
    /// Seed for the jitter source.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency: Duration::from_millis(5),
            jitter: Duration::ZERO,
            bandwidth_bps: None,
            queue_bytes: 1 << 20,
            seed: 0,
        }
    }
}

/// Counters kept by a [`SimLink`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets handed to the link.
    pub sent: u64,
    /// Packets delivered into the consumer inbox.
    pub delivered: u64,
    /// Packets dropped by queue overflow (network congestion).
    pub dropped: u64,
    /// Packets refused by a full consumer inbox.
    pub refused: u64,
    /// Payload bytes accepted.
    pub bytes_sent: u64,
}

impl LinkStats {
    /// The delivered fraction of sent packets.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }
}

struct LinkFn {
    cfg: SimConfig,
    inbox: InboxSender,
    stats: Arc<Mutex<LinkStats>>,
    busy_until_ns: u64,
    in_flight_bytes: usize,
    in_flight_packets: u64,
    eos_pending: bool,
    rng: StdRng,
}

impl mbthread::CodeFn for LinkFn {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, mut env: Envelope) -> Flow {
        match env.tag() {
            t if t == NET_DATA => {
                let Some(bytes) = env.message_mut().take_body::<WireBytes>() else {
                    return Flow::Continue;
                };
                let size = bytes.len();
                {
                    let mut stats = self.stats.lock();
                    stats.sent += 1;
                    if self.in_flight_bytes + size > self.cfg.queue_bytes {
                        stats.dropped += 1;
                        return Flow::Continue;
                    }
                    stats.bytes_sent += size as u64;
                }
                // Serialization delay: the link transmits one packet at a
                // time at its bandwidth.
                let now_ns = ctx.now().as_nanos();
                let tx_ns = match self.cfg.bandwidth_bps {
                    Some(bw) if bw > 0.0 => (size as f64 / bw * 1e9) as u64,
                    _ => 0,
                };
                let done_ns = self.busy_until_ns.max(now_ns) + tx_ns;
                self.busy_until_ns = done_ns;
                let jitter_ns = if self.cfg.jitter.is_zero() {
                    0
                } else {
                    self.rng
                        .random_range(0..=u64::try_from(self.cfg.jitter.as_nanos()).unwrap_or(u64::MAX))
                };
                let arrival = mbthread::Time::from_nanos(
                    done_ns
                        + u64::try_from(self.cfg.latency.as_nanos()).unwrap_or(u64::MAX)
                        + jitter_ns,
                );
                self.in_flight_bytes += size;
                self.in_flight_packets += 1;
                let _ = ctx.set_timer(arrival, Message::new(NET_DELIVER, bytes), None);
            }
            t if t == NET_DELIVER => {
                let Some(bytes) = env.message_mut().take_body::<WireBytes>() else {
                    return Flow::Continue;
                };
                let size = bytes.len();
                self.in_flight_bytes = self.in_flight_bytes.saturating_sub(size);
                self.in_flight_packets = self.in_flight_packets.saturating_sub(1);
                let accepted = self.inbox.put_via(ctx, Item::cloneable(bytes));
                {
                    let mut stats = self.stats.lock();
                    if accepted {
                        stats.delivered += 1;
                    } else {
                        stats.refused += 1;
                    }
                }
                if self.eos_pending && self.in_flight_packets == 0 {
                    self.inbox.finish_via(ctx);
                }
            }
            t if t == NET_FIN => {
                self.eos_pending = true;
                if self.in_flight_packets == 0 {
                    self.inbox.finish_via(ctx);
                }
            }
            _ => {}
        }
        Flow::Continue
    }
}

/// One direction of a simulated network connection.
///
/// Create the consumer pipeline's inbox first
/// ([`Pipeline::add_inbox`](infopipes::Pipeline::add_inbox)), then the
/// link, then add the link's [`SimSendEnd`] as the producer pipeline's
/// sink.
pub struct SimLink {
    thread: ThreadId,
    stats: Arc<Mutex<LinkStats>>,
}

impl SimLink {
    /// Spawns the link thread on the kernel, delivering into `inbox`.
    ///
    /// # Errors
    ///
    /// [`KernelError::Shutdown`] if the kernel is shutting down.
    pub fn new(kernel: &Kernel, cfg: SimConfig, inbox: InboxSender) -> Result<SimLink, KernelError> {
        let stats = Arc::new(Mutex::new(LinkStats::default()));
        let seed = cfg.seed;
        let link = LinkFn {
            cfg,
            inbox,
            stats: Arc::clone(&stats),
            busy_until_ns: 0,
            in_flight_bytes: 0,
            in_flight_packets: 0,
            eos_pending: false,
            rng: StdRng::seed_from_u64(seed),
        };
        let thread = kernel.spawn("sim-link", link)?;
        Ok(SimLink { thread, stats })
    }

    /// The producer-side send end: a passive sink accepting `WireBytes`.
    #[must_use]
    pub fn send_end(&self, name: impl Into<String>) -> SimSendEnd {
        SimSendEnd {
            name: name.into(),
            link: self.thread,
        }
    }

    /// Current link statistics.
    #[must_use]
    pub fn stats(&self) -> LinkStats {
        *self.stats.lock()
    }
}

impl std::fmt::Debug for SimLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimLink")
            .field("stats", &self.stats())
            .finish()
    }
}

/// The producer pipeline's view of a [`SimLink`]: a passive consumer that
/// transmits every pushed `WireBytes` and forwards the end of stream.
pub struct SimSendEnd {
    name: String,
    link: ThreadId,
}

impl Stage for SimSendEnd {
    fn name(&self) -> &str {
        &self.name
    }

    fn accepts(&self) -> Typespec {
        Typespec::with_item_type(ItemType::of::<WireBytes>())
    }

    fn on_event(&mut self, ctx: &mut EventCtx<'_, '_>, event: &ControlEvent) {
        if matches!(event, ControlEvent::Eos) {
            let _ = ctx.post(self.link, Message::signal(NET_FIN));
        }
    }
}

impl infopipes::Consumer for SimSendEnd {
    fn push(&mut self, ctx: &mut StageCtx<'_, '_>, item: Item) {
        if let Ok((bytes, _)) = item.into_payload::<WireBytes>() {
            let _ = ctx.post(self.link, Message::new(NET_DATA, bytes));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infopipes::helpers::{CollectSink, IterSource};
    use infopipes::{BufferSpec, FreePump, Pipeline};
    use mbthread::KernelConfig;

    /// Builds producer >> marshal >> link >> inbox >> unmarshal >> sink
    /// over one virtual-time kernel and runs it to completion.
    fn run_link(cfg: SimConfig, n: u32) -> (Vec<u32>, LinkStats, u64) {
        let kernel = Kernel::new(KernelConfig::virtual_time());
        let result = {
            // Consumer side first (the link needs its inbox).
            let consumer = Pipeline::new(&kernel, "consumer");
            let (inbox, inbox_sender) = consumer.add_inbox("net-in", BufferSpec::bounded(1024));
            let pump_in = consumer.add_pump("pump-in", FreePump::new());
            let un = consumer.add_function("unmarshal", crate::Unmarshal::<u32>::new("unmarshal"));
            let (sink, out) = CollectSink::<u32>::new("sink");
            let sink = consumer.add_consumer("sink", sink);
            let _ = inbox >> pump_in >> un >> sink;
            let running_consumer = consumer.start().unwrap();
            running_consumer.start_flow().unwrap();

            let link = SimLink::new(&kernel, cfg, inbox_sender).unwrap();

            // Producer side.
            let producer = Pipeline::new(&kernel, "producer");
            let src = producer.add_producer("src", IterSource::new("src", 0..n));
            let pump_out = producer.add_pump("pump-out", FreePump::new());
            let m = producer.add_function("marshal", crate::Marshal::<u32>::new("marshal"));
            let send = producer.add_consumer("send", link.send_end("send"));
            let _ = src >> pump_out >> m >> send;
            let running_producer = producer.start().unwrap();
            running_producer.start_flow().unwrap();

            kernel.wait_quiescent();
            let end_time = kernel.now().as_micros();
            let got = out.lock().clone();
            (got, link.stats(), end_time)
        };
        kernel.shutdown();
        result
    }

    #[test]
    fn lossless_link_delivers_everything_in_order() {
        let (got, stats, _) = run_link(SimConfig::default(), 20);
        assert_eq!(got, (0..20).collect::<Vec<u32>>());
        assert_eq!(stats.sent, 20);
        assert_eq!(stats.delivered, 20);
        assert_eq!(stats.dropped, 0);
        assert!((stats.delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn latency_delays_completion_in_virtual_time() {
        let fast = run_link(
            SimConfig {
                latency: Duration::from_millis(1),
                ..SimConfig::default()
            },
            5,
        )
        .2;
        let slow = run_link(
            SimConfig {
                latency: Duration::from_millis(500),
                ..SimConfig::default()
            },
            5,
        )
        .2;
        assert!(
            slow >= fast + 400_000,
            "500 ms latency must show up in virtual time: fast={fast} slow={slow}"
        );
    }

    #[test]
    fn tiny_queue_drops_under_burst() {
        // The producer bursts all packets at t=0 (free pump), each 8 bytes
        // marshalled; a 16-byte queue holds only 2 in flight.
        let (got, stats, _) = run_link(
            SimConfig {
                latency: Duration::from_millis(50),
                queue_bytes: 8,
                bandwidth_bps: None,
                ..SimConfig::default()
            },
            20,
        );
        assert!(stats.dropped > 0, "{stats:?}");
        assert_eq!(stats.delivered as usize, got.len());
        assert!(got.len() < 20);
        // Survivors stay in order.
        assert!(got.windows(2).all(|w| w[0] < w[1]), "{got:?}");
    }

    #[test]
    fn bandwidth_paces_the_flow() {
        // 5 packets of 4-byte payload → 4 bytes wire each (u32); at 4
        // bytes/sec each takes 1 s of serialization.
        let (_, stats, end_us) = run_link(
            SimConfig {
                latency: Duration::ZERO,
                bandwidth_bps: Some(4.0),
                queue_bytes: 1 << 20,
                ..SimConfig::default()
            },
            5,
        );
        assert_eq!(stats.delivered, 5);
        assert!(
            end_us >= 5_000_000,
            "5 packets at 1 s each need 5 virtual seconds, got {end_us} us"
        );
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let cfg = |seed| SimConfig {
            latency: Duration::from_millis(10),
            jitter: Duration::from_millis(20),
            seed,
            ..SimConfig::default()
        };
        let a = run_link(cfg(7), 10);
        let b = run_link(cfg(7), 10);
        let c = run_link(cfg(8), 10);
        assert_eq!(a.0, b.0);
        assert_eq!(a.2, b.2, "same seed, same virtual completion time");
        // A different seed almost surely lands on a different schedule.
        assert_ne!(a.2, c.2);
    }
}
