//! A TCP netpipe over real sockets.
//!
//! The send end hands frames to a writer OS thread (so the uniprocessor
//! kernel never blocks on socket I/O); the receive side is a reader OS
//! thread that maps incoming frames to kernel messages through an
//! [`InboxSender`] — "network packets and signals from the operating
//! system are mapped to messages by the platform" (§4).

use crate::framing::{read_frame, write_frame, FrameKind};
use crate::marshal::WireBytes;
use crate::proto::WireEvent;
use crate::wire;
use infopipes::{ControlEvent, EventCtx, InboxSender, Item, ItemType, Stage, StageCtx};
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::mpsc;
use typespec::Typespec;

enum WriterMsg {
    Data(Vec<u8>),
    Event(Vec<u8>),
    Fin,
}

/// The producer-side end of a TCP netpipe: a passive consumer accepting
/// `WireBytes` and transmitting them as framed messages. Control events
/// broadcast in the local pipeline are forwarded as event frames; the end
/// of stream becomes a FIN frame.
pub struct TcpSendEnd {
    name: String,
    tx: mpsc::Sender<WriterMsg>,
    writer: Option<std::thread::JoinHandle<()>>,
}

impl TcpSendEnd {
    /// Wraps a connected stream; spawns the writer thread.
    #[must_use]
    pub fn new(name: impl Into<String>, stream: TcpStream) -> TcpSendEnd {
        let (tx, rx) = mpsc::channel::<WriterMsg>();
        let mut stream = stream;
        let writer = std::thread::Builder::new()
            .name("tcp-netpipe-writer".into())
            .spawn(move || {
                while let Ok(msg) = rx.recv() {
                    let result = match msg {
                        WriterMsg::Data(bytes) => write_frame(&mut stream, FrameKind::Data, &bytes),
                        WriterMsg::Event(bytes) => {
                            write_frame(&mut stream, FrameKind::Event, &bytes)
                        }
                        WriterMsg::Fin => {
                            let _ = write_frame(&mut stream, FrameKind::Fin, &[]);
                            break;
                        }
                    };
                    if result.is_err() {
                        break;
                    }
                }
                let _ = stream.shutdown(std::net::Shutdown::Write);
            })
            .expect("spawn tcp writer");
        TcpSendEnd {
            name: name.into(),
            tx,
            writer: Some(writer),
        }
    }
}

impl Drop for TcpSendEnd {
    fn drop(&mut self) {
        let _ = self.tx.send(WriterMsg::Fin);
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
    }
}

impl Stage for TcpSendEnd {
    fn name(&self) -> &str {
        &self.name
    }

    fn accepts(&self) -> Typespec {
        Typespec::with_item_type(ItemType::of::<WireBytes>())
    }

    fn on_event(&mut self, _ctx: &mut EventCtx<'_, '_>, event: &ControlEvent) {
        match event {
            ControlEvent::Eos => {
                let _ = self.tx.send(WriterMsg::Fin);
            }
            // Start/Stop are pipeline-local; everything else is forwarded
            // to the remote side (feedback commands, resizes, ...).
            ControlEvent::Start | ControlEvent::Stop => {}
            other => {
                if let Ok(bytes) = wire::to_bytes(&WireEvent::from(other)) {
                    let _ = self.tx.send(WriterMsg::Event(bytes));
                }
            }
        }
    }
}

impl infopipes::Consumer for TcpSendEnd {
    fn push(&mut self, _ctx: &mut StageCtx<'_, '_>, item: Item) {
        if let Ok((bytes, _)) = item.into_payload::<WireBytes>() {
            let _ = self.tx.send(WriterMsg::Data(bytes.0));
        }
    }
}

/// Spawns the receive side of a TCP netpipe: a reader thread that feeds
/// data frames into `inbox`, invokes `on_event` for event frames, and
/// finishes the inbox on FIN or connection close. Returns the reader's
/// join handle.
pub fn spawn_tcp_receiver(
    stream: TcpStream,
    inbox: InboxSender,
    on_event: impl Fn(ControlEvent) + Send + 'static,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("tcp-netpipe-reader".into())
        .spawn(move || {
            let mut reader = BufReader::new(stream);
            loop {
                match read_frame(&mut reader) {
                    Ok(Some((FrameKind::Data, payload))) => {
                        let _ = inbox.put(Item::cloneable(WireBytes(payload)));
                    }
                    Ok(Some((FrameKind::Event, payload))) => {
                        if let Ok(ev) = wire::from_bytes::<WireEvent>(&payload) {
                            on_event(ev.into());
                        }
                    }
                    Ok(Some((FrameKind::Fin, _))) | Ok(None) => {
                        inbox.finish();
                        return;
                    }
                    Ok(Some((FrameKind::Control, _))) => {
                        // Factory protocol frames are handled by the
                        // remote module's host loop, not raw receivers.
                    }
                    Err(_) => {
                        inbox.finish();
                        return;
                    }
                }
            }
        })
        .expect("spawn tcp reader")
}

#[cfg(test)]
mod tests {
    use super::*;
    use infopipes::helpers::{CollectSink, IterSource};
    use infopipes::{BufferSpec, FreePump, Pipeline};
    use mbthread::{Kernel, KernelConfig};
    use std::net::TcpListener;
    use std::time::Duration;

    #[test]
    fn video_frames_cross_a_real_socket() {
        // Real clocks on both kernels: TCP I/O is wall-clock.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        // Consumer side.
        let consumer_kernel = Kernel::new(KernelConfig::default());
        let consumer = Pipeline::new(&consumer_kernel, "consumer");
        let (inbox, inbox_sender) = consumer.add_inbox("net-in", BufferSpec::bounded(256));
        let pump = consumer.add_pump("pump", FreePump::new());
        let un = consumer.add_function("unmarshal", crate::Unmarshal::<u64>::new("unmarshal"));
        let (sink, out) = CollectSink::<u64>::new("sink");
        let sink = consumer.add_consumer("sink", sink);
        let _ = inbox >> pump >> un >> sink;
        let running = consumer.start().unwrap();
        running.start_flow().unwrap();

        let accept_thread = std::thread::spawn(move || listener.accept().unwrap().0);

        // Producer side.
        let producer_kernel = Kernel::new(KernelConfig::default());
        let stream = TcpStream::connect(addr).unwrap();
        let server_stream = accept_thread.join().unwrap();
        let _reader = spawn_tcp_receiver(server_stream, inbox_sender, |_| {});

        let producer = Pipeline::new(&producer_kernel, "producer");
        let src = producer.add_producer("src", IterSource::new("src", 0u64..50));
        let pump_out = producer.add_pump("pump-out", FreePump::new());
        let m = producer.add_function("marshal", crate::Marshal::<u64>::new("marshal"));
        let send = producer.add_consumer("send", TcpSendEnd::new("send", stream));
        let _ = src >> pump_out >> m >> send;
        let running_producer = producer.start().unwrap();
        running_producer.start_flow().unwrap();

        // Wait for everything to land (real time).
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while out.lock().len() < 50 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(*out.lock(), (0..50).collect::<Vec<u64>>());

        producer_kernel.shutdown();
        consumer_kernel.shutdown();
    }

    #[test]
    fn events_are_forwarded_over_the_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accept_thread = std::thread::spawn(move || listener.accept().unwrap().0);
        let stream = TcpStream::connect(addr).unwrap();
        let server_stream = accept_thread.join().unwrap();

        // Feed an inbox nobody reads; we only care about events here.
        let kernel = Kernel::new(KernelConfig::default());
        let scratch = Pipeline::new(&kernel, "scratch");
        let (_inbox, inbox_sender) = scratch.add_inbox("in", BufferSpec::bounded(4));
        let (ev_tx, ev_rx) = mpsc::channel();
        let _reader = spawn_tcp_receiver(server_stream, inbox_sender, move |ev| {
            let _ = ev_tx.send(ev);
        });

        // Drive the send end directly (no pipeline needed for this test).
        let send = TcpSendEnd::new("send", stream);
        // Emulate an event dispatch: call the writer through the channel
        // path used by on_event.
        if let Ok(bytes) = wire::to_bytes(&WireEvent::SetDropLevel(2)) {
            send.tx.send(WriterMsg::Event(bytes)).unwrap();
        }
        let got = ev_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got, ControlEvent::SetDropLevel(2));
        drop(send);
        kernel.shutdown();
    }
}
