//! Netpipes: remote transmission for Infopipes (§2.4 of the paper).
//!
//! "Different transport protocols can be easily integrated into the
//! Infopipe framework as netpipes. These netpipes support plain data flows
//! and may manage low-level properties such as bandwidth and latency.
//! Marshalling filters on either side translate the raw data flow to a
//! higher-level information flow and vice-versa."
//!
//! This crate provides:
//!
//! * a from-scratch binary **wire codec** ([`wire`]) implementing serde's
//!   `Serializer`/`Deserializer`,
//! * **marshalling filters** ([`Marshal`], [`Unmarshal`]) between typed
//!   items and [`WireBytes`], which also rewrite the Typespec *location*
//!   property — the only components allowed to (§2.4),
//! * a **simulated network** ([`SimLink`]) with configurable latency,
//!   jitter, bandwidth, and a bounded queue whose overflow produces the
//!   "arbitrary dropping in the network" the Fig. 1 experiments need —
//!   deterministic under virtual-time kernels,
//! * a **TCP netpipe** ([`TcpSendEnd`], [`spawn_tcp_receiver`]) over real
//!   sockets, where network packets are mapped to kernel messages by
//!   reader threads,
//! * **remote component factories** and a remote Typespec query
//!   ([`remote`]): a `RemoteHost` builds a consumer-side pipeline from a
//!   client's component list and forwards control events in both
//!   directions.

#![warn(missing_docs)]

mod framing;
mod marshal;
mod proto;
pub mod remote;
mod sim;
mod tcp;
pub mod wire;

pub use framing::{read_frame, write_frame, FrameKind};
pub use marshal::{Marshal, Unmarshal, UnmarshalStats, WireBytes};
pub use proto::WireEvent;
pub use remote::{ComponentRegistry, RemoteClient, RemoteError, RemoteHost, SpecSummary};
pub use sim::{LinkStats, SimConfig, SimLink, SimSendEnd};
pub use tcp::{spawn_tcp_receiver, TcpSendEnd};
