//! Netpipes: remote transmission for Infopipes (§2.4 of the paper).
//!
//! "Different transport protocols can be easily integrated into the
//! Infopipe framework as netpipes. These netpipes support plain data flows
//! and may manage low-level properties such as bandwidth and latency.
//! Marshalling filters on either side translate the raw data flow to a
//! higher-level information flow and vice-versa."
//!
//! This crate provides, layer by layer:
//!
//! * a from-scratch binary **wire codec** ([`wire`]) implementing serde's
//!   `Serializer`/`Deserializer`; [`wire::to_payload`] seals a message
//!   into one shared [`PayloadBytes`] buffer — the start of the
//!   **zero-copy payload path**: every later crossing (tees, transports,
//!   framing) shares that allocation by refcount instead of copying it,
//! * **marshalling filters** ([`Marshal`], [`Unmarshal`]) between typed
//!   items and [`WireBytes`], which also rewrite the Typespec *location*
//!   property — the only components allowed to (§2.4). The rewrite is
//!   driven by the transport's [`PeerIdentity`]
//!   ([`Unmarshal::at_peer`]), so a flow's location names where it
//!   really came from,
//! * a **pluggable transport layer** ([`transport`]): one [`Transport`]
//!   trait — connect/listen, frame-level sends with a backpressure
//!   signal, a prioritized control-event lane, link statistics — with
//!   four interchangeable backends:
//!   [`InProcTransport`] (lock-free in-process channel, allocation-free
//!   per send), [`SimTransport`] (simulated
//!   latency/bandwidth/jitter/loss, deterministic under virtual time —
//!   the Fig. 1 congested network), [`TcpTransport`] (real sockets),
//!   and [`UdpTransport`] (real sockets, lossy datagrams). All four
//!   carry [`PayloadBytes`] frames end-to-end. [`NetSendEnd`] is the one
//!   generic producer-side pipeline stage serving every backend — it
//!   also broadcasts send-side congestion readings
//!   ([`SEND_SATURATION_READING`]) so feedback loops can react to
//!   transport backpressure — and
//!   [`PipelineTransportExt::add_net_sink`] records the transport at the
//!   planned section boundary,
//! * **remote component factories** and a remote Typespec query
//!   ([`remote`]), generic over the transport: a [`RemoteHost`] builds a
//!   consumer-side pipeline from a client's component list and forwards
//!   control events in both directions — the same [`RemoteClient`] code
//!   runs over TCP, the simulator, or an in-process link,
//! * **record & replay** ([`record`]): a chunked, CRC-guarded trace
//!   container capturing frames (with virtual timestamps, channel
//!   typespecs, and the sim scenario) zero-copy off any link or
//!   pipeline edge ([`RecordingLink`], [`Recorder`]), crash-safe
//!   recovery on open ([`TraceReader`]), and a [`Replayer`] that
//!   re-runs a trace bit-identically under virtual time,
//! * a **live inspector** ([`inspect`]): every subsystem's stats —
//!   sessions, links, pools, kernel, marshalling, feedback loops —
//!   registered in one process-wide
//!   [`StatsRegistry`](infopipes::StatsRegistry) and exported over a
//!   versioned control-channel protocol on any transport
//!   ([`InspectServer`] / [`InspectClient`]).

#![warn(missing_docs)]

pub mod framing;
pub mod inspect;
mod marshal;
mod proto;
pub mod record;
pub mod remote;
pub mod serve;
pub mod transport;
pub mod wire;

pub use framing::{read_frame, read_frame_in, write_frame, FrameKind};
pub use infopipes::{BufferPool, PayloadBytes, PoolStats};
pub use inspect::{InspectClient, InspectError, InspectServer, WireSnapshot};
pub use marshal::{Marshal, Unmarshal, UnmarshalCounters, UnmarshalStats, WireBytes};
pub use proto::WireEvent;
pub use record::{
    ChannelDecl, DigestProbe, DigestSink, Recorder, RecordingLink, ReplayHandle, ReplayMode,
    Replayer, TraceReader, TraceWriter, TRACE_SCHEMA_VERSION,
};
pub use remote::{ComponentRegistry, RemoteClient, RemoteError, RemoteHost, SpecSummary};
pub use serve::{
    AcceptLoop, BroadcastSendEnd, Housekeeper, RegistryStats, ServeConfig, SessionId,
    SessionRegistry, SessionSnapshot, SessionState,
};
pub use transport::{
    Acceptor, BatchPolicy, Frame, InProcAcceptor, InProcLink, InProcTransport, Link, LinkStats,
    NetSendEnd, PeerIdentity, PipelineTransportExt, RecvOutcome, SaturationProbe, SendStatus,
    SimAcceptor, SimConfig, SimLink, SimTransport, TcpAcceptor, TcpLink, TcpTransport, Transport,
    TransportError, UdpAcceptor, UdpLink, UdpTransport, POOL_MISS_READING, SEND_SATURATION_READING,
    UDP_RX_SHED_READING,
};
