//! Length-prefixed framing for *any* stream-oriented transport backend.
//!
//! Each frame is `[kind: u8][len: u32 LE][payload: len bytes]`. The
//! codec is written against `io::Read`/`io::Write`, so every transport
//! that runs over an ordered byte stream (TCP today; QUIC streams or
//! Unix sockets tomorrow) reuses it unchanged — backends with message
//! boundaries of their own (the simulator, in-process rings) skip it
//! entirely and carry [`Frame`](crate::Frame) values directly.

use infopipes::{BufferPool, PayloadBytes};
use std::io::{self, IoSlice, Read, Write};

/// What a frame carries.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// A marshalled data item.
    Data,
    /// A marshalled control event.
    Event,
    /// A protocol message (factory requests, spec queries).
    Control,
    /// End of stream; no payload.
    Fin,
}

impl FrameKind {
    pub(crate) fn to_byte(self) -> u8 {
        match self {
            FrameKind::Data => 0,
            FrameKind::Event => 1,
            FrameKind::Control => 2,
            FrameKind::Fin => 3,
        }
    }

    pub(crate) fn from_byte(b: u8) -> io::Result<FrameKind> {
        Ok(match b {
            0 => FrameKind::Data,
            1 => FrameKind::Event,
            2 => FrameKind::Control,
            3 => FrameKind::Fin,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown frame kind {other}"),
                ))
            }
        })
    }
}

/// Maximum accepted frame payload (64 MiB): a corrupted length prefix must
/// not allocate unbounded memory.
pub const MAX_FRAME: usize = 64 << 20;

/// Length of the `[kind: u8][len: u32 LE]` frame header.
pub const HEADER_LEN: usize = 5;

/// Assembles the 5-byte frame header on the stack.
pub(crate) fn encode_header(kind: FrameKind, payload_len: usize) -> [u8; HEADER_LEN] {
    let len = u32::try_from(payload_len).expect("MAX_FRAME fits in u32");
    let mut header = [0u8; HEADER_LEN];
    header[0] = kind.to_byte();
    header[1..].copy_from_slice(&len.to_le_bytes());
    header
}

/// Writes every byte of `bufs` with vectored writes, returning the number
/// of `write_vectored` calls made (the syscall count on a raw socket).
///
/// Tracks the remaining *byte* count rather than slice count, so empty
/// slices (zero-length payloads) never trigger a spurious `WriteZero`.
///
/// # Errors
///
/// Propagates I/O errors; reports `WriteZero` if the writer makes no
/// progress while bytes remain.
pub(crate) fn write_all_vectored(
    w: &mut impl Write,
    bufs: &mut [IoSlice<'_>],
) -> io::Result<usize> {
    let mut remaining: usize = bufs.iter().map(|b| b.len()).sum();
    let mut bufs = bufs;
    let mut calls = 0usize;
    while remaining > 0 {
        match w.write_vectored(bufs) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write whole frame batch",
                ));
            }
            Ok(n) => {
                calls += 1;
                remaining -= n;
                IoSlice::advance_slices(&mut bufs, n);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(calls)
}

/// Writes one frame: a stack-assembled 5-byte header plus the payload in
/// a single vectored write (one syscall on sockets whose `write_vectored`
/// is genuine scatter/gather; at most two on plain writers).
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    let header = encode_header(kind, payload.len());
    let mut bufs = [IoSlice::new(&header), IoSlice::new(payload)];
    write_all_vectored(w, &mut bufs)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean end of stream.
///
/// The payload is read into one buffer and sealed as [`PayloadBytes`]
/// directly: the receive side performs a single read-time copy off the
/// stream (unavoidable with real I/O) and none after it.
///
/// # Errors
///
/// Propagates I/O errors; rejects malformed kinds and oversized lengths.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(FrameKind, PayloadBytes)>> {
    let mut kind_byte = [0u8; 1];
    match r.read_exact(&mut kind_byte) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let kind = FrameKind::from_byte(kind_byte[0])?;
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some((kind, PayloadBytes::from_vec(payload))))
}

/// Reads one frame into a buffer drawn from `pool`; `Ok(None)` on a clean
/// end of stream.
///
/// The allocation-free variant of [`read_frame`]: in steady state the
/// payload lands in a recycled pool buffer and is sealed without any heap
/// allocation.
///
/// # Errors
///
/// Propagates I/O errors; rejects malformed kinds and oversized lengths.
pub fn read_frame_in(
    r: &mut impl Read,
    pool: &BufferPool,
) -> io::Result<Option<(FrameKind, PayloadBytes)>> {
    let mut kind_byte = [0u8; 1];
    match r.read_exact(&mut kind_byte) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let kind = FrameKind::from_byte(kind_byte[0])?;
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME",
        ));
    }
    let mut buf = pool.acquire(len);
    buf.buf_mut().resize(len, 0);
    r.read_exact(buf.buf_mut())?;
    Ok(Some((kind, buf.seal())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Data, b"hello").unwrap();
        write_frame(&mut buf, FrameKind::Event, b"").unwrap();
        write_frame(&mut buf, FrameKind::Fin, b"").unwrap();

        let mut cur = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cur).unwrap(),
            Some((FrameKind::Data, PayloadBytes::from(&b"hello"[..])))
        );
        assert_eq!(
            read_frame(&mut cur).unwrap(),
            Some((FrameKind::Event, PayloadBytes::new()))
        );
        assert_eq!(
            read_frame(&mut cur).unwrap(),
            Some((FrameKind::Fin, PayloadBytes::new()))
        );
        assert_eq!(read_frame(&mut cur).unwrap(), None);
    }

    #[test]
    fn pooled_reads_round_trip_and_recycle() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Data, b"hello").unwrap();
        write_frame(&mut buf, FrameKind::Fin, b"").unwrap();

        let pool = BufferPool::new();
        let mut cur = Cursor::new(buf.clone());
        let (kind, payload) = read_frame_in(&mut cur, &pool).unwrap().unwrap();
        assert_eq!(kind, FrameKind::Data);
        assert_eq!(payload.as_slice(), b"hello");
        assert!(payload.is_pooled());
        drop(payload);

        // The recycled buffer serves the second pass without a miss.
        let mut cur = Cursor::new(buf);
        let (_, payload) = read_frame_in(&mut cur, &pool).unwrap().unwrap();
        assert_eq!(payload.as_slice(), b"hello");
        assert!(pool.stats().hits >= 1);
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut cur = Cursor::new(vec![9u8, 0, 0, 0, 0]);
        assert!(read_frame(&mut cur).is_err());
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut buf = vec![0u8];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cur = Cursor::new(buf);
        assert!(read_frame(&mut cur).is_err());
    }

    #[test]
    fn truncated_payload_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Data, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut cur = Cursor::new(buf);
        assert!(read_frame(&mut cur).is_err());
    }
}
