//! The inspector's control-channel server and client.
//!
//! An [`InspectServer`] parks an accept loop on any
//! [`Acceptor`] and answers [`InspectRequest`]s on each
//! accepted link with a freshly sampled [`WireSnapshot`]. The exchange
//! uses only [`Frame::Control`] frames, so it runs unchanged over
//! inproc, sim, TCP, and UDP — exactly the property the remote factory
//! protocol ([`crate::remote`]) established for data pipelines, applied
//! to the observability plane.
//!
//! The client side, [`InspectClient`], is symmetric: connect over any
//! [`Transport`], call [`fetch`](InspectClient::fetch), get one
//! coherent [`WireSnapshot`].

use super::schema::{InspectReply, InspectRequest, WireSnapshot, SCHEMA_VERSION};
use crate::transport::{Acceptor, Frame, Link, RecvOutcome, Transport};
use crate::wire;
use infopipes::StatsRegistry;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the client waits for a snapshot reply before giving up.
const CTRL_TIMEOUT: Duration = Duration::from_secs(20);
/// Poll granularity for accept and receive loops.
const POLL: Duration = Duration::from_millis(50);

/// Errors of the inspector protocol.
#[derive(Debug)]
pub enum InspectError {
    /// A transport error.
    Transport(crate::TransportError),
    /// A malformed protocol message.
    Wire(String),
    /// The peer violated the protocol (wrong frame, timeout, closed).
    Protocol(String),
    /// The server speaks a different schema version.
    Version {
        /// The version the server announced.
        got: u32,
    },
}

impl fmt::Display for InspectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InspectError::Transport(e) => write!(f, "transport error: {e}"),
            InspectError::Wire(s) => write!(f, "malformed message: {s}"),
            InspectError::Protocol(s) => write!(f, "protocol violation: {s}"),
            InspectError::Version { got } => write!(
                f,
                "schema version mismatch: server speaks v{got}, client speaks v{SCHEMA_VERSION}"
            ),
        }
    }
}

impl std::error::Error for InspectError {}

impl From<crate::TransportError> for InspectError {
    fn from(e: crate::TransportError) -> Self {
        InspectError::Transport(e)
    }
}

/// A running inspector endpoint: an accept loop plus one handler thread
/// per connected client, each answering snapshot requests from a shared
/// [`StatsRegistry`].
///
/// Shut down explicitly with [`shutdown`](InspectServer::shutdown) or
/// implicitly on drop.
pub struct InspectServer {
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl InspectServer {
    /// Spawns the accept loop on an already-bound acceptor.
    ///
    /// Each accepted link gets its own handler thread; handlers exit on
    /// Fin/Closed, on shutdown, or when a reply is not accepted by the
    /// link.
    #[must_use]
    pub fn spawn<A>(acceptor: A, registry: StatsRegistry) -> InspectServer
    where
        A: Acceptor + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let accept_stop = Arc::clone(&stop);
        let accept_served = Arc::clone(&served);
        let accept_thread = std::thread::Builder::new()
            .name("inspect-accept".into())
            .spawn(move || {
                let mut handlers: Vec<JoinHandle<()>> = Vec::new();
                while !accept_stop.load(Ordering::Acquire) {
                    match acceptor.accept_timeout(POLL) {
                        Ok(Some(link)) => {
                            let stop = Arc::clone(&accept_stop);
                            let served = Arc::clone(&accept_served);
                            let registry = registry.clone();
                            if let Ok(h) = std::thread::Builder::new()
                                .name("inspect-handler".into())
                                .spawn(move || handle_link(&link, &registry, &stop, &served))
                            {
                                handlers.push(h);
                            }
                        }
                        Ok(None) => {}
                        Err(_) => break,
                    }
                }
                for h in handlers {
                    let _ = h.join();
                }
            })
            .expect("spawn inspect accept thread");
        InspectServer {
            stop,
            served,
            accept_thread: Some(accept_thread),
        }
    }

    /// How many snapshots this server has answered so far.
    #[must_use]
    pub fn snapshots_served(&self) -> u64 {
        self.served.load(Ordering::Acquire)
    }

    /// Stops the accept loop and all handler threads, and waits for
    /// them to exit.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for InspectServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_link<L: Link>(link: &L, registry: &StatsRegistry, stop: &AtomicBool, served: &AtomicU64) {
    while !stop.load(Ordering::Acquire) {
        match link.recv(POLL) {
            RecvOutcome::Frame(Frame::Control(payload)) => {
                let Ok(req) = wire::from_bytes::<InspectRequest>(&payload) else {
                    return; // malformed request: drop the client
                };
                let InspectRequest::Snapshot(_client_version) = req;
                // v1 serves every client; the reply carries the server
                // version so the client decides compatibility.
                let snap = WireSnapshot::from(&registry.snapshot());
                let reply = InspectReply::Snapshot(snap);
                let Ok(bytes) = wire::to_bytes(&reply) else {
                    return;
                };
                // Counted before the send: a client that has decoded the
                // reply must already observe the bump.
                served.fetch_add(1, Ordering::AcqRel);
                if !link.send(Frame::Control(bytes)).accepted() {
                    return;
                }
            }
            // Events and data on an inspector link are not ours; skip.
            RecvOutcome::Frame(_) | RecvOutcome::TimedOut => {}
            RecvOutcome::Fin | RecvOutcome::Closed => return,
        }
    }
}

/// A connected inspector client over any [`Link`].
pub struct InspectClient<L: Link> {
    link: L,
}

impl<L: Link> InspectClient<L> {
    /// Connects to an inspector endpoint over a transport.
    ///
    /// # Errors
    ///
    /// [`InspectError::Transport`] when the connect fails.
    pub fn connect<T: Transport<Link = L>>(
        transport: &T,
        addr: &str,
    ) -> Result<InspectClient<L>, InspectError> {
        Ok(InspectClient {
            link: transport.connect(addr)?,
        })
    }

    /// Wraps an already-established link.
    #[must_use]
    pub fn over(link: L) -> InspectClient<L> {
        InspectClient { link }
    }

    /// Requests and decodes one snapshot.
    ///
    /// # Errors
    ///
    /// [`InspectError::Transport`] if the request is not accepted,
    /// [`InspectError::Wire`] on a malformed reply,
    /// [`InspectError::Protocol`] on timeout or an unexpected frame,
    /// [`InspectError::Version`] if the server speaks a different
    /// schema version.
    pub fn fetch(&self) -> Result<WireSnapshot, InspectError> {
        let req = wire::to_bytes(&InspectRequest::Snapshot(SCHEMA_VERSION))
            .map_err(|e| InspectError::Wire(e.to_string()))?;
        if !self.link.send(Frame::Control(req)).accepted() {
            return Err(InspectError::Transport(crate::TransportError::Closed));
        }
        let deadline = std::time::Instant::now() + CTRL_TIMEOUT;
        loop {
            match self.link.recv(POLL) {
                RecvOutcome::Frame(Frame::Control(payload)) => {
                    let InspectReply::Snapshot(snap) = wire::from_bytes(&payload)
                        .map_err(|e| InspectError::Wire(e.to_string()))?;
                    if snap.version != SCHEMA_VERSION {
                        return Err(InspectError::Version { got: snap.version });
                    }
                    return Ok(snap);
                }
                // Inspector links may coexist with event chatter; skip.
                RecvOutcome::Frame(Frame::Event(_)) | RecvOutcome::TimedOut => {}
                RecvOutcome::Frame(_) => {
                    return Err(InspectError::Protocol(
                        "expected a snapshot reply, got a data frame".into(),
                    ));
                }
                RecvOutcome::Fin | RecvOutcome::Closed => {
                    return Err(InspectError::Protocol("connection closed".into()));
                }
            }
            if std::time::Instant::now() >= deadline {
                return Err(InspectError::Protocol(
                    "timed out waiting for a snapshot".into(),
                ));
            }
        }
    }
}
