//! The inspector's versioned wire schema.
//!
//! A [`WireSnapshot`] is the serde-framed form of a
//! [`StatsSnapshot`]: the same
//! sources/metrics/entities tree, with every type a plain owned value so
//! it round-trips through the [`crate::wire`] codec. The codec is
//! schema-driven and not self-describing, so the snapshot leads with an
//! explicit [`SCHEMA_VERSION`]; a client talking to a newer server fails
//! loudly ([`InspectError::Version`](super::InspectError)) instead of
//! misdecoding.

use infopipes::{MetricValue, StatsSnapshot};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The wire schema version. Bump on any change to the framed types
/// below; the request/reply enums carry it so both directions are
/// guarded.
pub const SCHEMA_VERSION: u32 = 1;

/// Client → server requests on the inspector channel.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum InspectRequest {
    /// Ask for one full snapshot; `0` carries the client's schema
    /// version.
    Snapshot(u32),
}

/// Server → client replies.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum InspectReply {
    /// One full snapshot.
    Snapshot(WireSnapshot),
}

/// A metric value in wire form (mirrors
/// [`MetricValue`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WireValue {
    /// A monotone count.
    Counter(u64),
    /// An instantaneous level.
    Gauge(f64),
    /// A non-numeric annotation.
    Text(String),
}

impl WireValue {
    /// The numeric value, if this metric has one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            WireValue::Counter(v) => Some(*v as f64),
            WireValue::Gauge(v) => Some(*v),
            WireValue::Text(_) => None,
        }
    }
}

/// One metric in wire form.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WireMetric {
    /// Metric name, unique within its source.
    pub name: String,
    /// Unit label.
    pub unit: String,
    /// The sampled value.
    pub value: WireValue,
}

/// One roster entity in wire form.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WireEntity {
    /// Entity id, unique within the source.
    pub id: String,
    /// The entity's metrics.
    pub metrics: Vec<WireMetric>,
}

/// One source in wire form.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WireSource {
    /// The registered source name.
    pub name: String,
    /// The producing subsystem.
    pub subsystem: String,
    /// Aggregate metrics.
    pub metrics: Vec<WireMetric>,
    /// Per-entity detail.
    pub entities: Vec<WireEntity>,
}

impl WireSource {
    /// Looks up an aggregate metric by name.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<&WireMetric> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

/// One full inspector snapshot in wire form.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WireSnapshot {
    /// The producing server's [`SCHEMA_VERSION`].
    pub version: u32,
    /// The producing registry's snapshot sequence number.
    pub seq: u64,
    /// All sources, sorted by `(subsystem, name)`.
    pub sources: Vec<WireSource>,
}

fn to_wire_metrics(metrics: &[infopipes::Metric]) -> Vec<WireMetric> {
    metrics
        .iter()
        .map(|m| WireMetric {
            name: m.name.clone(),
            unit: m.unit.to_owned(),
            value: match &m.value {
                MetricValue::Counter(v) => WireValue::Counter(*v),
                MetricValue::Gauge(v) => WireValue::Gauge(*v),
                MetricValue::Text(s) => WireValue::Text(s.clone()),
            },
        })
        .collect()
}

impl From<&StatsSnapshot> for WireSnapshot {
    fn from(snap: &StatsSnapshot) -> WireSnapshot {
        WireSnapshot {
            version: SCHEMA_VERSION,
            seq: snap.seq,
            sources: snap
                .sources
                .iter()
                .map(|s| WireSource {
                    name: s.source.clone(),
                    subsystem: s.subsystem.clone(),
                    metrics: to_wire_metrics(&s.metrics),
                    entities: s
                        .entities
                        .iter()
                        .map(|e| WireEntity {
                            id: e.id.clone(),
                            metrics: to_wire_metrics(&e.metrics),
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_value(value: &WireValue) -> String {
    match value {
        WireValue::Counter(v) => format!("{v}"),
        // JSON has no NaN/inf; a non-finite gauge renders as null.
        WireValue::Gauge(v) if v.is_finite() => format!("{v}"),
        WireValue::Gauge(_) => "null".to_owned(),
        WireValue::Text(s) => format!("\"{}\"", json_escape(s)),
    }
}

fn json_metrics(out: &mut String, metrics: &[WireMetric]) {
    out.push('{');
    for (i, m) in metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let kind = match m.value {
            WireValue::Counter(_) => "counter",
            WireValue::Gauge(_) => "gauge",
            WireValue::Text(_) => "text",
        };
        let _ = write!(
            out,
            "\"{}\":{{\"kind\":\"{kind}\",\"unit\":\"{}\",\"value\":{}}}",
            json_escape(&m.name),
            json_escape(&m.unit),
            json_value(&m.value)
        );
    }
    out.push('}');
}

impl WireSnapshot {
    /// Renders the snapshot as one JSON document (hand-built: metric
    /// names become object keys, metric values become
    /// `{kind, unit, value}` objects).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"schema_version\":{},\"seq\":{},\"sources\":[",
            self.version, self.seq
        );
        for (i, src) in self.sources.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"source\":\"{}\",\"subsystem\":\"{}\",\"metrics\":",
                json_escape(&src.name),
                json_escape(&src.subsystem)
            );
            json_metrics(&mut out, &src.metrics);
            out.push_str(",\"entities\":[");
            for (j, e) in src.entities.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"id\":\"{}\",\"metrics\":", json_escape(&e.id));
                json_metrics(&mut out, &e.metrics);
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Renders the snapshot as a plain-text table, one row per metric,
    /// grouped by source (the `--watch` view).
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "snapshot #{} (schema v{})", self.seq, self.version);
        for src in &self.sources {
            let _ = writeln!(out, "\n[{}] {}", src.subsystem, src.name);
            for m in &src.metrics {
                let _ = writeln!(
                    out,
                    "  {:<24} {:>16} {}",
                    m.name,
                    render_value(&m.value),
                    m.unit
                );
            }
            for e in &src.entities {
                let _ = writeln!(out, "  · {}", e.id);
                for m in &e.metrics {
                    let _ = writeln!(
                        out,
                        "    {:<22} {:>16} {}",
                        m.name,
                        render_value(&m.value),
                        m.unit
                    );
                }
            }
        }
        out
    }

    /// Looks up a source by name.
    #[must_use]
    pub fn source(&self, name: &str) -> Option<&WireSource> {
        self.sources.iter().find(|s| s.name == name)
    }

    /// The numeric value of `metric` in `source`, if both exist.
    #[must_use]
    pub fn value(&self, source: &str, metric: &str) -> Option<f64> {
        self.source(source)?.metric(metric)?.value.as_f64()
    }

    /// The subsystems present in this snapshot, deduplicated, in
    /// snapshot order.
    #[must_use]
    pub fn subsystems(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for s in &self.sources {
            if !out.contains(&s.subsystem.as_str()) {
                out.push(&s.subsystem);
            }
        }
        out
    }
}

fn render_value(value: &WireValue) -> String {
    match value {
        WireValue::Counter(v) => format!("{v}"),
        WireValue::Gauge(v) => format!("{v:.4}"),
        WireValue::Text(s) => s.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire;
    use infopipes::{EntitySample, Metric, SourceSample};

    fn sample_snapshot() -> WireSnapshot {
        WireSnapshot::from(&StatsSnapshot {
            seq: 7,
            sources: vec![SourceSample {
                source: "uplink".into(),
                subsystem: "transport".into(),
                metrics: vec![
                    Metric::counter("sent", "frames", 12),
                    Metric::gauge("saturation", "fraction", 0.5),
                    Metric::text("peer", "sim://a\"b"),
                ],
                entities: vec![EntitySample {
                    id: "1".into(),
                    metrics: vec![Metric::counter("queued", "frames", 3)],
                }],
            }],
        })
    }

    #[test]
    fn snapshots_round_trip_through_the_wire_codec() {
        let snap = sample_snapshot();
        let reply = InspectReply::Snapshot(snap.clone());
        let bytes = wire::to_bytes(&reply).unwrap();
        let back: InspectReply = wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, InspectReply::Snapshot(snap));

        let req = InspectRequest::Snapshot(SCHEMA_VERSION);
        let bytes = wire::to_bytes(&req).unwrap();
        let back: InspectRequest = wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let json = sample_snapshot().to_json();
        assert!(json.starts_with("{\"schema_version\":1,\"seq\":7,"));
        assert!(json.contains("\"sent\":{\"kind\":\"counter\",\"unit\":\"frames\",\"value\":12}"));
        assert!(json
            .contains("\"saturation\":{\"kind\":\"gauge\",\"unit\":\"fraction\",\"value\":0.5}"));
        // The quote inside the peer address is escaped.
        assert!(json.contains("sim://a\\\"b"));
        assert!(json.contains("\"entities\":[{\"id\":\"1\","));
    }

    #[test]
    fn non_finite_gauges_render_as_null() {
        let mut snap = sample_snapshot();
        snap.sources[0].metrics[1].value = WireValue::Gauge(f64::NAN);
        assert!(snap.to_json().contains("\"value\":null"));
    }

    #[test]
    fn lookup_and_table_rendering() {
        let snap = sample_snapshot();
        assert_eq!(snap.value("uplink", "sent"), Some(12.0));
        assert_eq!(snap.value("uplink", "peer"), None);
        assert_eq!(snap.value("ghost", "sent"), None);
        assert_eq!(snap.subsystems(), vec!["transport"]);
        let table = snap.render_table();
        assert!(table.contains("[transport] uplink"));
        assert!(table.contains("sent"));
        assert!(table.contains("· 1"));
    }
}
