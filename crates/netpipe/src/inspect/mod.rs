//! Live inspector: the unified observability plane.
//!
//! Every stats producer in the stack — the serving tier's
//! [`SessionRegistry`], per-link
//! [`LinkStats`](crate::transport::LinkStats), buffer pools, the
//! mbthread kernel, unmarshal counters, feedback loops, and the
//! process-wide payload-copy counter — registers a named, typed source
//! in one [`StatsRegistry`]. A single
//! [`StatsRegistry::snapshot`](infopipes::StatsRegistry::snapshot) then
//! yields one coherent, deterministic-order view of the whole manifold.
//!
//! This module provides the three pieces that turn the registry into a
//! *live* inspector:
//!
//! 1. **Registration helpers** ([`register_registry_stats`],
//!    [`register_link`], [`register_pool`], [`register_kernel`],
//!    [`register_unmarshal`], [`register_loop_stats`],
//!    [`register_saturation`], [`register_process_globals`]) that adapt
//!    each subsystem's native stats type to the registry's
//!    metric/entity model under a stable subsystem label.
//! 2. A **versioned wire schema** ([`schema`]) framing snapshots as
//!    [`Frame::Control`](crate::transport::Frame) payloads via the
//!    [`crate::wire`] codec, plus hand-built JSON and table renderings.
//! 3. A **control-channel server and client** ([`server`]) running the
//!    request/reply exchange over *any* [`Transport`]
//!    (inproc, sim, TCP, UDP) — the same transport-agnosticism the
//!    remote factory protocol established for data, applied to
//!    observability.
//!
//! Sampling is pull-based and cheap: nothing is recorded until a
//! snapshot is requested, and every sampler reads atomics or takes a
//! short-lived snapshot lock, so an idle inspector costs nothing on the
//! data path.
//!
//! [`Transport`]: crate::transport::Transport

pub mod schema;
pub mod server;

pub use schema::{
    InspectReply, InspectRequest, WireEntity, WireMetric, WireSnapshot, WireSource, WireValue,
    SCHEMA_VERSION,
};
pub use server::{InspectClient, InspectError, InspectServer};

use crate::marshal::UnmarshalCounters;
use crate::record::{RecorderCounters, ReplayCounters};
use crate::serve::SessionRegistry;
use crate::transport::{Link, SaturationProbe};
use feedback::LoopStats;
use infopipes::{BufferPool, EntitySample, Metric, SourceBody, SourceId, StatsRegistry};
use mbthread::Kernel;
use parking_lot::Mutex;
use std::sync::Arc;

/// Subsystem label for serving-tier sources.
pub const SUBSYSTEM_SERVE: &str = "serve";
/// Subsystem label for transport sources (links, saturation probes).
pub const SUBSYSTEM_TRANSPORT: &str = "transport";
/// Subsystem label for buffer pools.
pub const SUBSYSTEM_POOL: &str = "pool";
/// Subsystem label for the mbthread kernel.
pub const SUBSYSTEM_KERNEL: &str = "kernel";
/// Subsystem label for the marshalling layer.
pub const SUBSYSTEM_MARSHAL: &str = "marshal";
/// Subsystem label for feedback loops.
pub const SUBSYSTEM_FEEDBACK: &str = "feedback";
/// Subsystem label for process-wide core counters.
pub const SUBSYSTEM_CORE: &str = "core";
/// Subsystem label for the record & replay subsystem.
pub const SUBSYSTEM_RECORD: &str = "record";

/// Registers a serving-tier [`SessionRegistry`] under `name`.
///
/// Aggregate metrics mirror
/// [`RegistryStats`](crate::serve::RegistryStats); each resident
/// session appears as an entity (id = session id) with its
/// [`SessionSnapshot`](crate::serve::SessionSnapshot) detail, so
/// evicted-and-reaped sessions drop out of the roster while the
/// `*_total` counters keep counting them.
pub fn register_registry_stats<L: Link>(
    stats: &StatsRegistry,
    name: impl Into<String>,
    sessions: &SessionRegistry<L>,
) -> SourceId {
    let sessions = sessions.clone();
    stats.register(name, SUBSYSTEM_SERVE, move || {
        let s = sessions.stats();
        let metrics = vec![
            Metric::counter("accepted_total", "sessions", s.accepted_total),
            Metric::counter("evicted_total", "sessions", s.evicted_total),
            Metric::gauge("connecting", "sessions", s.connecting as f64),
            Metric::gauge("active", "sessions", s.active as f64),
            Metric::gauge("draining", "sessions", s.draining as f64),
            Metric::gauge("evicted_resident", "sessions", s.evicted_resident as f64),
            Metric::gauge("queued_frames", "frames", s.queued_frames as f64),
            Metric::counter("enqueued_total", "frames", s.enqueued_total),
            Metric::counter("sent_total", "frames", s.sent_total),
            Metric::counter("shed_total", "frames", s.shed_total),
            Metric::counter("thinned_total", "frames", s.thinned_total),
        ];
        let entities = sessions
            .sessions()
            .into_iter()
            .map(|snap| EntitySample {
                id: snap.id.to_string(),
                metrics: vec![
                    Metric::text("peer", snap.peer),
                    Metric::text("state", snap.state.to_string()),
                    Metric::gauge("queued", "frames", snap.queued as f64),
                    Metric::gauge("drop_level", "level", f64::from(snap.drop_level)),
                    Metric::counter("enqueued", "frames", snap.enqueued),
                    Metric::counter("sent", "frames", snap.sent),
                    Metric::counter("shed", "frames", snap.shed),
                    Metric::counter("thinned", "frames", snap.thinned),
                ],
            })
            .collect();
        SourceBody { metrics, entities }
    })
}

/// Registers one transport link's [`LinkStats`](crate::transport::LinkStats)
/// under `name`.
pub fn register_link<L: Link>(
    stats: &StatsRegistry,
    name: impl Into<String>,
    link: &L,
) -> SourceId {
    let link = link.clone();
    stats.register(name, SUBSYSTEM_TRANSPORT, move || {
        let s = link.stats();
        let peer = link.peer();
        SourceBody::metrics(vec![
            Metric::text("peer", format!("{}://{}", peer.scheme(), peer.addr())),
            Metric::counter("sent", "frames", s.sent),
            Metric::counter("delivered", "frames", s.delivered),
            Metric::counter("dropped", "frames", s.dropped),
            Metric::counter("refused", "frames", s.refused),
            Metric::counter("bytes_sent", "bytes", s.bytes_sent),
            Metric::counter("wire_writes", "syscalls", s.wire_writes),
            Metric::counter("rx_shed", "frames", s.rx_shed),
        ])
    })
}

/// Registers a [`BufferPool`]'s counters under `name`, including the
/// derived `miss_rate` gauge congestion controllers consume (reading
/// [`feedback::readings::POOL_MISS`]).
pub fn register_pool(
    stats: &StatsRegistry,
    name: impl Into<String>,
    pool: &BufferPool,
) -> SourceId {
    let pool = pool.clone();
    stats.register(name, SUBSYSTEM_POOL, move || {
        let s = pool.stats();
        SourceBody::metrics(vec![
            Metric::counter("hits", "acquires", s.hits),
            Metric::counter("misses", "acquires", s.misses),
            Metric::counter("oversize", "acquires", s.oversize),
            Metric::gauge("outstanding", "buffers", s.outstanding as f64),
            Metric::gauge("pooled", "buffers", s.pooled as f64),
            Metric::gauge("miss_rate", "fraction", s.miss_rate()),
        ])
    })
}

/// Registers an mbthread [`Kernel`]'s
/// [`KernelStats`](mbthread::KernelStats) counters under `name`.
pub fn register_kernel(
    stats: &StatsRegistry,
    name: impl Into<String>,
    kernel: &Kernel,
) -> SourceId {
    let kernel = kernel.clone();
    stats.register(name, SUBSYSTEM_KERNEL, move || {
        SourceBody::metrics(
            kernel
                .stats()
                .counters()
                .iter()
                .map(|(n, v)| Metric::counter(*n, "events", *v))
                .collect(),
        )
    })
}

/// Registers an [`Unmarshal`](crate::Unmarshal) stage's counters under
/// `name` (take the handle with
/// [`Unmarshal::stats_handle`](crate::Unmarshal::stats_handle)).
pub fn register_unmarshal(
    stats: &StatsRegistry,
    name: impl Into<String>,
    counters: &Arc<UnmarshalCounters>,
) -> SourceId {
    let counters = Arc::clone(counters);
    stats.register(name, SUBSYSTEM_MARSHAL, move || {
        let mut metrics = vec![
            Metric::counter("decoded", "items", counters.decoded()),
            Metric::counter("errors", "items", counters.errors()),
        ];
        if let Some(loc) = counters.location() {
            metrics.push(Metric::text("location", loc));
        }
        SourceBody::metrics(metrics)
    })
}

/// Registers a [`FeedbackLoop`](feedback::FeedbackLoop)'s
/// [`LoopStats`] under `name` (the shared handle the loop constructor
/// returns).
pub fn register_loop_stats(
    stats: &StatsRegistry,
    name: impl Into<String>,
    loop_stats: &Arc<Mutex<LoopStats>>,
) -> SourceId {
    let loop_stats = Arc::clone(loop_stats);
    stats.register(name, SUBSYSTEM_FEEDBACK, move || {
        let s = *loop_stats.lock();
        SourceBody::metrics(vec![
            Metric::counter("readings", "events", s.readings),
            Metric::counter("commands", "events", s.commands),
        ])
    })
}

/// Registers a [`SaturationProbe`]'s last completed send-saturation
/// window under `name` as a `saturation` gauge — the registry-side
/// twin of the [`feedback::readings::SEND_SATURATION`] reading a
/// [`NetSendEnd`](crate::NetSendEnd) reports in-band.
pub fn register_saturation(
    stats: &StatsRegistry,
    name: impl Into<String>,
    probe: &SaturationProbe,
) -> SourceId {
    let probe = probe.clone();
    stats.register(name, SUBSYSTEM_TRANSPORT, move || {
        SourceBody::metrics(vec![Metric::gauge("saturation", "fraction", probe.get())])
    })
}

/// Registers a [`TraceWriter`](crate::TraceWriter)'s
/// [`RecorderCounters`] under `name` (take the handle with
/// [`TraceWriter::counters`](crate::TraceWriter::counters)): records
/// and payload bytes accepted, file bytes written, and chunk flushes.
pub fn register_recorder(
    stats: &StatsRegistry,
    name: impl Into<String>,
    counters: &Arc<RecorderCounters>,
) -> SourceId {
    let counters = Arc::clone(counters);
    stats.register(name, SUBSYSTEM_RECORD, move || {
        SourceBody::metrics(vec![
            Metric::counter("records", "records", counters.records()),
            Metric::counter("payload_bytes", "bytes", counters.payload_bytes()),
            Metric::counter("file_bytes", "bytes", counters.file_bytes()),
            Metric::counter("chunk_flushes", "chunks", counters.chunk_flushes()),
        ])
    })
}

/// Registers a running replay's [`ReplayCounters`] under `name` (take
/// the handle with
/// [`ReplayHandle::counters`](crate::ReplayHandle::counters)).
/// `recovered_bytes` is the torn-tail byte count the
/// [`TraceReader`](crate::TraceReader) reported for the trace being
/// replayed (0 for a clean file). The `lag_behind` gauge is the
/// registry-side twin of the [`feedback::readings::REPLAY_LAG`]
/// reading: seconds the most recent frame went out past its recorded
/// timestamp.
pub fn register_replayer(
    stats: &StatsRegistry,
    name: impl Into<String>,
    counters: &Arc<ReplayCounters>,
    recovered_bytes: u64,
) -> SourceId {
    let counters = Arc::clone(counters);
    stats.register(name, SUBSYSTEM_RECORD, move || {
        SourceBody::metrics(vec![
            Metric::counter("frames", "frames", counters.frames()),
            Metric::counter("bytes", "bytes", counters.bytes()),
            Metric::counter("unroutable", "records", counters.unroutable()),
            Metric::counter("send_failures", "frames", counters.send_failures()),
            Metric::counter("torn_recovered_bytes", "bytes", recovered_bytes),
            Metric::gauge("lag_behind", "seconds", counters.lag_last_ns() as f64 / 1e9),
            Metric::gauge("lag_max", "seconds", counters.lag_max_ns() as f64 / 1e9),
            Metric::text("done", if counters.is_done() { "true" } else { "false" }),
        ])
    })
}

/// Registers the process-wide core counters (today:
/// [`payload_copy_count`](infopipes::payload_copy_count), the zero-copy
/// regression tripwire) under the source name `process`.
pub fn register_process_globals(stats: &StatsRegistry) -> SourceId {
    stats.register("process", SUBSYSTEM_CORE, move || {
        SourceBody::metrics(vec![Metric::counter(
            "payload_copies",
            "copies",
            infopipes::payload_copy_count(),
        )])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use infopipes::StatsRegistry;

    #[test]
    fn pool_and_globals_register_and_sample() {
        let stats = StatsRegistry::new();
        let pool = BufferPool::with_classes(&[64], 4);
        register_pool(&stats, "rx-pool", &pool);
        register_process_globals(&stats);

        let _buf = pool.acquire(32);
        let snap = stats.snapshot();
        assert_eq!(snap.value("rx-pool", "misses"), Some(1.0));
        assert!(snap.value("process", "payload_copies").is_some());
        let pool_src = snap.source("rx-pool").unwrap();
        assert_eq!(pool_src.subsystem, SUBSYSTEM_POOL);
    }

    #[test]
    fn kernel_counters_appear_under_kernel_subsystem() {
        let stats = StatsRegistry::new();
        let kernel = Kernel::new(mbthread::KernelConfig::default());
        register_kernel(&stats, "kern", &kernel);
        let snap = stats.snapshot();
        let src = snap.source("kern").unwrap();
        assert_eq!(src.subsystem, SUBSYSTEM_KERNEL);
        assert!(src.metric("context_switches").is_some());
        assert!(src.metric("threads_spawned").is_some());
    }
}
