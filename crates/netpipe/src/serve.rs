//! The serving tier: many clients per producer (§2.4 scaled out).
//!
//! The paper's remote pipelines are point-to-point: one producer, one
//! link, one consumer. A streaming service is one producer and *many*
//! consumers, arriving and leaving while the flow runs. This module adds
//! that tier on top of the [`Transport`](crate::Transport) family without
//! touching how a pipeline is composed:
//!
//! * an [`AcceptLoop`] per transport turns incoming links into
//!   registered **sessions** — it polls
//!   [`Acceptor::accept_timeout`] so shutdown never needs a poison
//!   connection,
//! * a [`SessionRegistry`] owns the roster: each session walks the
//!   lifecycle [`Connecting` → `Active` → `Draining` →
//!   `Evicted`](SessionState), observable through
//!   [`SessionSnapshot`]s and aggregate [`RegistryStats`],
//! * [`SessionRegistry::broadcast`] tees one sealed
//!   [`PayloadBytes`] frame into every active session's bounded send
//!   queue **by refcount** — N sessions cost N queue slots, zero payload
//!   copies (the capacity bench gates on
//!   [`infopipes::payload_copy_count`] staying flat), and
//! * each session keeps its own saturation window, surfacing per-session
//!   `net-send-saturation` readings ([`SessionRegistry::take_readings`])
//!   that a per-session controller bank (e.g.
//!   `feedback::SessionControllerBank`) maps to per-session drop levels
//!   ([`SessionRegistry::set_drop_level`]) — one slow client is thinned
//!   or evicted while the rest stream on.
//!
//! # Isolation of slow clients
//!
//! The broadcast sweep never blocks on a session: a link whose send
//! path would wait is skipped outright ([`Link::send_ready`]), flushing
//! stops at the first [`SendStatus::Saturated`], the bounded per-session
//! queue sheds its oldest frame on overflow, and a session whose link
//! reports [`SendStatus::Closed`] is evicted on the spot. The worst a
//! dead-slow client can do is lose its own frames.
//!
//! # Typical assembly
//!
//! ```no_run
//! use netpipe::serve::{AcceptLoop, ServeConfig, SessionRegistry};
//! use netpipe::{InProcTransport, Transport};
//!
//! let transport = InProcTransport::new();
//! let acceptor = transport.listen("studio").unwrap();
//! let registry = SessionRegistry::new(ServeConfig::default());
//! let accept = AcceptLoop::spawn(acceptor, registry.clone());
//! // ... producer pipeline ends in a BroadcastSendEnd over `registry` ...
//! accept.shutdown();
//! ```

use crate::marshal::WireBytes;
use crate::proto::WireEvent;
use crate::transport::{
    Acceptor, Frame, Link, PeerIdentity, SendStatus, TransportError, SEND_SATURATION_READING,
};
use infopipes::{Consumer, ControlEvent, EventCtx, Item, ItemType, PayloadBytes, Stage, StageCtx};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use typespec::Typespec;

/// Identifies one session within a [`SessionRegistry`] (unique for the
/// registry's lifetime; never reused).
pub type SessionId = u64;

/// Where a session is in its lifecycle.
///
/// ```text
/// Connecting ──activate──▶ Active ──drain──▶ Draining ──flushed/deadline──▶ Evicted
///      │                     │                                                 ▲
///      └──── link closed ────┴────────────────── evict ───────────────────────┘
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SessionState {
    /// Registered but not yet receiving broadcasts (handshake pending).
    Connecting,
    /// Receiving broadcast frames.
    Active,
    /// No new frames; queued frames are flushed until empty or the drain
    /// deadline passes, then the session is evicted with a `Fin`.
    Draining,
    /// Done: queue released, `Fin` sent (best effort), awaiting
    /// [`SessionRegistry::reap`].
    Evicted,
}

impl fmt::Display for SessionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SessionState::Connecting => "connecting",
            SessionState::Active => "active",
            SessionState::Draining => "draining",
            SessionState::Evicted => "evicted",
        };
        f.write_str(s)
    }
}

/// Tuning knobs for a [`SessionRegistry`].
#[derive(Copy, Clone, Debug)]
pub struct ServeConfig {
    /// Bounded frames per session queue; on overflow the *oldest* queued
    /// frame is shed (streaming favours fresh data) and the window is
    /// marked pressured.
    pub queue_capacity: usize,
    /// Send attempts per session between saturation readings (mirrors
    /// [`NetSendEnd`](crate::NetSendEnd)'s window).
    pub saturation_window: u64,
    /// How long a [`Draining`](SessionState::Draining) session may keep
    /// flushing before it is force-evicted with its queue unsent.
    pub drain_deadline: Duration,
    /// Bounded backlog of per-session readings awaiting
    /// [`SessionRegistry::take_readings`]; on overflow the oldest reading
    /// is discarded (a stale congestion sample is worthless anyway).
    pub max_pending_readings: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 256,
            saturation_window: 32,
            drain_deadline: Duration::from_secs(2),
            max_pending_readings: 4096,
        }
    }
}

/// Per-level keep-every strides, matching the drop-level fractions
/// `[1.0, 0.34, 0.12]` used by the media filters: level 1 keeps every
/// 3rd broadcast frame for that session, level 2 every 8th.
const KEEP_EVERY: [u64; 3] = [1, 3, 8];

/// One session's bounded outbound queue plus its saturation window.
struct SendQueue {
    frames: VecDeque<PayloadBytes>,
    window_attempts: u64,
    window_pressured: u64,
    /// Broadcast tick for drop-level thinning (counts offered frames).
    tick: u64,
}

/// Lifecycle cell, guarded separately from the queue so state checks
/// never contend with a flush in progress.
struct StateCell {
    state: SessionState,
    drain_deadline: Option<Instant>,
}

struct SessionShared<L> {
    id: SessionId,
    peer: PeerIdentity,
    link: L,
    state: Mutex<StateCell>,
    q: Mutex<SendQueue>,
    drop_level: AtomicU8,
    enqueued: AtomicU64,
    sent: AtomicU64,
    shed: AtomicU64,
    thinned: AtomicU64,
    fin_sent: AtomicBool,
}

impl<L: Link> SessionShared<L> {
    fn state(&self) -> SessionState {
        self.state.lock().state
    }

    fn send_fin_once(&self) {
        if !self.fin_sent.swap(true, Ordering::AcqRel) {
            let _ = self.link.send(Frame::Fin);
        }
    }
}

/// A point-in-time view of one session (see
/// [`SessionRegistry::sessions`]).
#[derive(Clone, Debug)]
pub struct SessionSnapshot {
    /// The session's registry-unique id.
    pub id: SessionId,
    /// The remote end, e.g. `tcp://127.0.0.1:41234`.
    pub peer: String,
    /// Lifecycle state at snapshot time.
    pub state: SessionState,
    /// Frames waiting in the session's send queue.
    pub queued: usize,
    /// Current drop level (0 = no thinning).
    pub drop_level: u8,
    /// Frames accepted into the queue since registration.
    pub enqueued: u64,
    /// Frames handed to the link.
    pub sent: u64,
    /// Frames lost to this session: queue overflow, link drops, and
    /// frames discarded at eviction.
    pub shed: u64,
    /// Frames withheld by drop-level thinning (not counted as loss —
    /// thinning is the feedback loop working as designed).
    pub thinned: u64,
}

/// Aggregate registry counters (see [`SessionRegistry::stats`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Sessions ever registered.
    pub accepted_total: u64,
    /// Sessions that reached [`SessionState::Evicted`].
    pub evicted_total: u64,
    /// Resident sessions currently [`SessionState::Connecting`].
    pub connecting: usize,
    /// Resident sessions currently [`SessionState::Active`].
    pub active: usize,
    /// Resident sessions currently [`SessionState::Draining`].
    pub draining: usize,
    /// Evicted sessions not yet reaped.
    pub evicted_resident: usize,
    /// Frames queued across all resident sessions right now.
    pub queued_frames: usize,
    /// Total frames accepted into session queues.
    pub enqueued_total: u64,
    /// Total frames handed to links.
    pub sent_total: u64,
    /// Total frames lost (overflow + link drops + eviction discards).
    pub shed_total: u64,
    /// Total frames withheld by drop-level thinning.
    pub thinned_total: u64,
}

struct RegistryInner<L> {
    cfg: ServeConfig,
    next_id: AtomicU64,
    roster: Mutex<Vec<Arc<SessionShared<L>>>>,
    /// Per-session saturation readings awaiting collection, oldest first.
    readings: Mutex<VecDeque<(SessionId, f64)>>,
    accepted_total: AtomicU64,
    evicted_total: AtomicU64,
}

/// The session roster of a serving tier: registration, lifecycle,
/// refcounted broadcast fan-out, per-session congestion readings.
///
/// Cheaply cloneable; clones share the roster (the [`AcceptLoop`] holds
/// one clone, the producer-side [`BroadcastSendEnd`] another, the
/// feedback loop a third).
pub struct SessionRegistry<L: Link> {
    inner: Arc<RegistryInner<L>>,
}

impl<L: Link> Clone for SessionRegistry<L> {
    fn clone(&self) -> Self {
        SessionRegistry {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<L: Link> SessionRegistry<L> {
    /// Creates an empty registry.
    #[must_use]
    pub fn new(cfg: ServeConfig) -> SessionRegistry<L> {
        SessionRegistry {
            inner: Arc::new(RegistryInner {
                cfg,
                next_id: AtomicU64::new(1),
                roster: Mutex::new(Vec::new()),
                readings: Mutex::new(VecDeque::new()),
                accepted_total: AtomicU64::new(0),
                evicted_total: AtomicU64::new(0),
            }),
        }
    }

    /// The registry's configuration.
    #[must_use]
    pub fn config(&self) -> ServeConfig {
        self.inner.cfg
    }

    /// Registers a link as a [`Connecting`](SessionState::Connecting)
    /// session; it receives no broadcasts until
    /// [`activate`](SessionRegistry::activate)d.
    pub fn register(&self, link: L) -> SessionId {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(SessionShared {
            id,
            peer: link.peer(),
            link,
            state: Mutex::new(StateCell {
                state: SessionState::Connecting,
                drain_deadline: None,
            }),
            q: Mutex::new(SendQueue {
                // Preallocated once: steady-state broadcasts push into
                // existing capacity, keeping the fan-out allocation-free.
                frames: VecDeque::with_capacity(self.inner.cfg.queue_capacity),
                window_attempts: 0,
                window_pressured: 0,
                tick: 0,
            }),
            drop_level: AtomicU8::new(0),
            enqueued: AtomicU64::new(0),
            sent: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            thinned: AtomicU64::new(0),
            fin_sent: AtomicBool::new(false),
        });
        self.inner.roster.lock().push(session);
        self.inner.accepted_total.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Moves a [`Connecting`](SessionState::Connecting) session into
    /// [`Active`](SessionState::Active); no-op in any other state.
    pub fn activate(&self, id: SessionId) {
        if let Some(s) = self.find(id) {
            let mut cell = s.state.lock();
            if cell.state == SessionState::Connecting {
                cell.state = SessionState::Active;
            }
        }
    }

    /// Registers and immediately activates (the accept loop's path).
    pub fn admit(&self, link: L) -> SessionId {
        let id = self.register(link);
        self.activate(id);
        id
    }

    fn find(&self, id: SessionId) -> Option<Arc<SessionShared<L>>> {
        self.inner
            .roster
            .lock()
            .iter()
            .find(|s| s.id == id)
            .cloned()
    }

    /// Tees one sealed payload into every active session's queue by
    /// refcount — no copy, N sessions share one allocation — then flushes
    /// each queue without ever blocking on a slow client. Returns the
    /// number of sessions the frame was enqueued to.
    pub fn broadcast(&self, payload: &PayloadBytes) -> usize {
        let roster = self.snapshot_roster();
        let mut reached = 0;
        for s in &roster {
            if s.state() != SessionState::Active {
                continue;
            }
            if self.enqueue(s, payload) {
                reached += 1;
            }
            self.flush_session(s);
        }
        reached
    }

    /// Queues `payload` on one session, applying drop-level thinning and
    /// drop-oldest overflow. Returns whether the frame was accepted.
    fn enqueue(&self, s: &Arc<SessionShared<L>>, payload: &PayloadBytes) -> bool {
        let level = usize::from(s.drop_level.load(Ordering::Relaxed)).min(KEEP_EVERY.len() - 1);
        let mut overflowed = false;
        let reading = {
            let mut q = s.q.lock();
            let tick = q.tick;
            q.tick += 1;
            if !tick.is_multiple_of(KEEP_EVERY[level]) {
                drop(q);
                s.thinned.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            let mut reading = None;
            if q.frames.len() >= self.inner.cfg.queue_capacity {
                // Shed the *oldest* frame: a streaming client wants fresh
                // data, and an overflowing queue is a pressured link.
                q.frames.pop_front();
                overflowed = true;
                q.window_attempts += 1;
                q.window_pressured += 1;
                reading = self.complete_window(&mut q);
            }
            q.frames.push_back(payload.clone());
            reading
        };
        if overflowed {
            s.shed.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(fraction) = reading {
            self.push_reading(s.id, fraction);
        }
        s.enqueued.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Completes the saturation window if due; returns the fraction to
    /// report. Caller must hold the queue lock.
    fn complete_window(&self, q: &mut SendQueue) -> Option<f64> {
        if q.window_attempts < self.inner.cfg.saturation_window {
            return None;
        }
        let fraction = q.window_pressured as f64 / q.window_attempts as f64;
        q.window_attempts = 0;
        q.window_pressured = 0;
        Some(fraction)
    }

    fn push_reading(&self, id: SessionId, fraction: f64) {
        let mut readings = self.inner.readings.lock();
        if readings.len() >= self.inner.cfg.max_pending_readings {
            readings.pop_front();
        }
        readings.push_back((id, fraction));
    }

    /// Flushes one session's queue: sends until the queue is empty or the
    /// link pushes back. Never blocks on a slow client — a link whose
    /// send path would wait ([`Link::send_ready`] false) keeps its frames
    /// queued and is merely marked pressured.
    fn flush_session(&self, s: &Arc<SessionShared<L>>) {
        loop {
            if s.q.lock().frames.is_empty() {
                return;
            }
            if !s.link.send_ready() {
                let mut q = s.q.lock();
                q.window_attempts += 1;
                q.window_pressured += 1;
                let reading = self.complete_window(&mut q);
                drop(q);
                if let Some(fraction) = reading {
                    self.push_reading(s.id, fraction);
                }
                return;
            }
            let Some(frame) = s.q.lock().frames.pop_front() else {
                return;
            };
            let status = s.link.send(Frame::Data(frame));
            let mut q = s.q.lock();
            q.window_attempts += 1;
            match status {
                SendStatus::Sent => {
                    s.sent.fetch_add(1, Ordering::Relaxed);
                }
                SendStatus::Saturated => {
                    // Accepted, but stop here: one more send could block
                    // behind this client's congestion.
                    q.window_pressured += 1;
                    s.sent.fetch_add(1, Ordering::Relaxed);
                    let reading = self.complete_window(&mut q);
                    drop(q);
                    if let Some(fraction) = reading {
                        self.push_reading(s.id, fraction);
                    }
                    return;
                }
                SendStatus::Dropped => {
                    q.window_pressured += 1;
                    s.shed.fetch_add(1, Ordering::Relaxed);
                    let reading = self.complete_window(&mut q);
                    drop(q);
                    if let Some(fraction) = reading {
                        self.push_reading(s.id, fraction);
                    }
                    return;
                }
                SendStatus::Closed => {
                    drop(q);
                    s.shed.fetch_add(1, Ordering::Relaxed);
                    self.evict(s.id);
                    return;
                }
            }
            let reading = self.complete_window(&mut q);
            drop(q);
            if let Some(fraction) = reading {
                self.push_reading(s.id, fraction);
            }
        }
    }

    /// Sends a control event to every connecting, active, or draining
    /// session (control lane — overtakes queued data on every backend).
    pub fn broadcast_event(&self, event: &ControlEvent) {
        for s in &self.snapshot_roster() {
            if s.state() == SessionState::Evicted {
                continue;
            }
            let _ = s.link.send(Frame::Event(WireEvent::from(event)));
        }
    }

    /// Starts draining one session: no new broadcast frames; queued
    /// frames keep flushing (via [`sweep`](SessionRegistry::sweep)) until
    /// empty or the drain deadline, then the session is evicted.
    pub fn drain(&self, id: SessionId) {
        if let Some(s) = self.find(id) {
            let mut cell = s.state.lock();
            if matches!(cell.state, SessionState::Connecting | SessionState::Active) {
                cell.state = SessionState::Draining;
                cell.drain_deadline = Some(Instant::now() + self.inner.cfg.drain_deadline);
            }
        }
    }

    /// Starts draining every connecting or active session (the serving
    /// tier's response to end of stream).
    pub fn drain_all(&self) {
        for s in self.snapshot_roster() {
            self.drain(s.id);
        }
    }

    /// One housekeeping pass: flushes active and draining queues,
    /// completes drains (empty queue → `Fin` → evicted), and force-evicts
    /// draining sessions past their deadline. Call this from a
    /// housekeeper thread ([`SessionRegistry::spawn_housekeeper`]) or
    /// between broadcasts.
    pub fn sweep(&self) {
        for s in &self.snapshot_roster() {
            match s.state() {
                SessionState::Active => self.flush_session(s),
                SessionState::Draining => {
                    self.flush_session(s);
                    // flush_session may have evicted a closed link.
                    let (state, deadline) = {
                        let cell = s.state.lock();
                        (cell.state, cell.drain_deadline)
                    };
                    if state != SessionState::Draining {
                        continue;
                    }
                    let empty = s.q.lock().frames.is_empty();
                    let expired = deadline.is_some_and(|d| Instant::now() >= d);
                    if empty || expired {
                        self.evict(s.id);
                    }
                }
                SessionState::Connecting | SessionState::Evicted => {}
            }
        }
    }

    /// Evicts a session immediately: its queue is released (every queued
    /// frame's refcount drops), a `Fin` is sent best-effort, and the
    /// session becomes [`Evicted`](SessionState::Evicted) (resident until
    /// [`reap`](SessionRegistry::reap)).
    pub fn evict(&self, id: SessionId) {
        let Some(s) = self.find(id) else { return };
        {
            let mut cell = s.state.lock();
            if cell.state == SessionState::Evicted {
                return;
            }
            cell.state = SessionState::Evicted;
            cell.drain_deadline = None;
        }
        let discarded = {
            let mut q = s.q.lock();
            let n = q.frames.len();
            q.frames.clear();
            n
        };
        s.shed.fetch_add(discarded as u64, Ordering::Relaxed);
        s.send_fin_once();
        self.inner.evicted_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Removes evicted sessions from the roster, returning how many were
    /// released (their links drop here).
    pub fn reap(&self) -> usize {
        let mut roster = self.inner.roster.lock();
        let before = roster.len();
        roster.retain(|s| s.state() != SessionState::Evicted);
        before - roster.len()
    }

    /// Sets one session's drop level (0–2): the thinning stride the
    /// broadcast applies to that session only. This is the actuator a
    /// per-session congestion controller drives.
    pub fn set_drop_level(&self, id: SessionId, level: u8) {
        if let Some(s) = self.find(id) {
            s.drop_level.store(level, Ordering::Relaxed);
        }
    }

    /// Drains the pending per-session saturation readings (the same
    /// 0..=1 pressured-fraction a [`NetSendEnd`](crate::NetSendEnd)
    /// broadcasts under [`SEND_SATURATION_READING`], but one stream per
    /// session). Feed these to a per-session controller bank.
    pub fn take_readings(&self) -> Vec<(SessionId, f64)> {
        self.inner.readings.lock().drain(..).collect()
    }

    /// The reading name under which per-session saturation fractions are
    /// reported (shared with the point-to-point send end).
    #[must_use]
    pub fn reading_name(&self) -> &'static str {
        SEND_SATURATION_READING
    }

    /// Point-in-time snapshots of every resident session.
    #[must_use]
    pub fn sessions(&self) -> Vec<SessionSnapshot> {
        self.snapshot_roster()
            .iter()
            .map(|s| SessionSnapshot {
                id: s.id,
                peer: s.peer.to_string(),
                state: s.state(),
                queued: s.q.lock().frames.len(),
                drop_level: s.drop_level.load(Ordering::Relaxed),
                enqueued: s.enqueued.load(Ordering::Relaxed),
                sent: s.sent.load(Ordering::Relaxed),
                shed: s.shed.load(Ordering::Relaxed),
                thinned: s.thinned.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Aggregate counters across the registry's lifetime and the current
    /// roster.
    #[must_use]
    pub fn stats(&self) -> RegistryStats {
        let mut stats = RegistryStats {
            accepted_total: self.inner.accepted_total.load(Ordering::Relaxed),
            evicted_total: self.inner.evicted_total.load(Ordering::Relaxed),
            ..RegistryStats::default()
        };
        for s in &self.snapshot_roster() {
            match s.state() {
                SessionState::Connecting => stats.connecting += 1,
                SessionState::Active => stats.active += 1,
                SessionState::Draining => stats.draining += 1,
                SessionState::Evicted => stats.evicted_resident += 1,
            }
            stats.queued_frames += s.q.lock().frames.len();
            stats.enqueued_total += s.enqueued.load(Ordering::Relaxed);
            stats.sent_total += s.sent.load(Ordering::Relaxed);
            stats.shed_total += s.shed.load(Ordering::Relaxed);
            stats.thinned_total += s.thinned.load(Ordering::Relaxed);
        }
        stats
    }

    /// Resident session count (all states).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.roster.lock().len()
    }

    /// Whether no sessions are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.roster.lock().is_empty()
    }

    fn snapshot_roster(&self) -> Vec<Arc<SessionShared<L>>> {
        self.inner.roster.lock().clone()
    }

    /// Spawns a thread that calls [`sweep`](SessionRegistry::sweep) and
    /// [`reap`](SessionRegistry::reap) every `period` until the returned
    /// handle is shut down or dropped.
    #[must_use]
    pub fn spawn_housekeeper(&self, period: Duration) -> Housekeeper {
        let registry = self.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("serve-housekeeper".into())
            .spawn(move || {
                while !flag.load(Ordering::Acquire) {
                    registry.sweep();
                    registry.reap();
                    std::thread::sleep(period);
                }
            })
            .expect("spawn housekeeper");
        Housekeeper {
            stop,
            handle: Some(handle),
        }
    }
}

impl<L: Link> fmt::Debug for SessionRegistry<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("SessionRegistry")
            .field("active", &stats.active)
            .field("draining", &stats.draining)
            .field("evicted_total", &stats.evicted_total)
            .finish()
    }
}

/// Handle to a registry housekeeper thread
/// ([`SessionRegistry::spawn_housekeeper`]); stops and joins it on
/// [`shutdown`](Housekeeper::shutdown) or drop.
pub struct Housekeeper {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Housekeeper {
    /// Stops the housekeeper and waits for its thread to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Housekeeper {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// How often the accept loop checks its shutdown flag between bounded
/// [`Acceptor::accept_timeout`] waits.
const ACCEPT_POLL: Duration = Duration::from_millis(50);

/// A serving thread turning incoming links into registered sessions:
/// polls [`Acceptor::accept_timeout`] so [`shutdown`](AcceptLoop::shutdown)
/// completes promptly without a poison connection, and
/// [`admit`](SessionRegistry::admit)s each accepted link.
pub struct AcceptLoop {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<u64>>,
}

impl AcceptLoop {
    /// Spawns the loop for one bound acceptor, admitting every connection
    /// into `registry`.
    #[must_use]
    pub fn spawn<A>(acceptor: A, registry: SessionRegistry<A::Link>) -> AcceptLoop
    where
        A: Acceptor + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || {
                let mut admitted = 0u64;
                while !flag.load(Ordering::Acquire) {
                    match acceptor.accept_timeout(ACCEPT_POLL) {
                        Ok(Some(link)) => {
                            registry.admit(link);
                            admitted += 1;
                        }
                        Ok(None) => {}
                        Err(TransportError::Closed) => break,
                        // Transient socket errors (e.g. a connection reset
                        // between accept and handshake) should not kill
                        // the serving tier.
                        Err(_) => {}
                    }
                }
                admitted
            })
            .expect("spawn accept loop");
        AcceptLoop {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the loop and joins its thread, returning how many sessions
    /// it admitted. The acceptor is dropped (unbinding the address).
    pub fn shutdown(mut self) -> u64 {
        self.stop.store(true, Ordering::Release);
        self.handle
            .take()
            .and_then(|h| h.join().ok())
            .unwrap_or_default()
    }
}

impl Drop for AcceptLoop {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for AcceptLoop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AcceptLoop")
            .field("stopped", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

/// The producer-side pipeline stage of the serving tier: a passive sink
/// accepting [`WireBytes`] and teeing each sealed payload into every
/// registered session via [`SessionRegistry::broadcast`] — the fan-out
/// counterpart of the point-to-point [`NetSendEnd`](crate::NetSendEnd).
///
/// Broadcast control events go to every session's control lane; end of
/// stream starts a registry-wide drain (sessions flush their queues, get
/// a `Fin`, and are evicted).
pub struct BroadcastSendEnd<L: Link> {
    name: String,
    registry: SessionRegistry<L>,
}

impl<L: Link> BroadcastSendEnd<L> {
    /// Wraps a registry as a pipeline sink.
    #[must_use]
    pub fn new(name: impl Into<String>, registry: SessionRegistry<L>) -> BroadcastSendEnd<L> {
        BroadcastSendEnd {
            name: name.into(),
            registry,
        }
    }

    /// The registry this stage broadcasts into.
    #[must_use]
    pub fn registry(&self) -> &SessionRegistry<L> {
        &self.registry
    }
}

impl<L: Link> Stage for BroadcastSendEnd<L> {
    fn name(&self) -> &str {
        &self.name
    }

    fn accepts(&self) -> Typespec {
        Typespec::with_item_type(ItemType::of::<WireBytes>())
    }

    fn on_event(&mut self, _ctx: &mut EventCtx<'_, '_>, event: &ControlEvent) {
        match event {
            ControlEvent::Eos => {
                self.registry.drain_all();
                self.registry.sweep();
            }
            // Start/Stop are pipeline-local; per-session saturation
            // readings come out of the registry, not the event bus.
            ControlEvent::Start | ControlEvent::Stop => {}
            other => self.registry.broadcast_event(other),
        }
    }
}

impl<L: Link> Consumer for BroadcastSendEnd<L> {
    fn push(&mut self, _ctx: &mut StageCtx<'_, '_>, item: Item) {
        if let Ok((bytes, _)) = item.into_payload::<WireBytes>() {
            self.registry.broadcast(&bytes);
        }
    }
}

impl<L: Link> fmt::Debug for BroadcastSendEnd<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BroadcastSendEnd")
            .field("name", &self.name)
            .field("registry", &self.registry)
            .finish()
    }
}
