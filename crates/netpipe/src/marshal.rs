//! Marshalling filters: typed items ↔ raw wire bytes.
//!
//! These are the components on either side of a netpipe that "translate
//! the raw data flow to and from a higher-level information flow" and
//! "encapsulate the QoS mapping of netpipe properties and information flow
//! properties" (§2.4). They are also where the Typespec *location*
//! property changes: a [`Marshal`] stamps the producer node, an
//! [`Unmarshal`] stamps the consumer node. The stamp is ideally the
//! transport's own [`PeerIdentity`](crate::PeerIdentity)
//! ([`Marshal::at_peer`], [`Unmarshal::at_peer`]) rather than a
//! hand-written string, so the location property tracks where the flow
//! actually crossed the network.

use crate::transport::PeerIdentity;
use crate::wire;
use infopipes::{BufferPool, Function, Item, ItemType, PayloadBytes, Stage};
use parking_lot::Mutex;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use typespec::{TypeError, Typespec};

/// The raw item type flowing through a netpipe: one marshalled message.
///
/// Since the zero-copy refactor this is [`PayloadBytes`] itself — a
/// shared `Arc`-backed buffer — so the name is kept as an alias for the
/// marshalling vocabulary of §2.4. A [`Marshal`] seals each message into
/// one such buffer; every crossing after that (tees, transports,
/// framing) shares it by refcount.
pub type WireBytes = PayloadBytes;

/// Serializes typed items to [`WireBytes`] (function style).
pub struct Marshal<T> {
    name: String,
    /// The node name stamped into the outgoing location property.
    from_node: Option<String>,
    /// Pool the sealed buffers are drawn from; `None` allocates fresh.
    pool: Option<BufferPool>,
    /// Size hint for the next acquisition: the previous message's
    /// serialized length (streams of similar messages stay in one class).
    last_len: usize,
    _marker: PhantomData<fn(T)>,
}

impl<T: Serialize + Send + 'static> Marshal<T> {
    /// Creates a marshaller.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Marshal<T> {
        Marshal {
            name: name.into(),
            from_node: None,
            pool: None,
            last_len: 0,
            _marker: PhantomData,
        }
    }

    /// Seal outgoing messages into buffers drawn from `pool` instead of
    /// fresh allocations — in steady state the marshal step is then
    /// allocation-free (the pool recycles each buffer when the last
    /// downstream reference drops).
    #[must_use]
    pub fn with_pool(mut self, pool: &BufferPool) -> Marshal<T> {
        self.pool = Some(pool.clone());
        self
    }

    /// Also record the producer-side node name in the flow's location
    /// property.
    #[must_use]
    pub fn at_node(mut self, node: impl Into<String>) -> Marshal<T> {
        self.from_node = Some(node.into());
        self
    }

    /// Records a transport peer identity as the producer-side location
    /// (`scheme://addr`), tying the location property to the link the
    /// flow leaves through.
    #[must_use]
    pub fn at_peer(self, peer: &PeerIdentity) -> Marshal<T> {
        self.at_node(peer.to_string())
    }
}

impl<T: Serialize + Send + 'static> Stage for Marshal<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn accepts(&self) -> Typespec {
        Typespec::with_item_type(ItemType::of::<T>())
    }

    fn transform_spec(&self, input: &Typespec) -> Result<Typespec, TypeError> {
        let mut out = input.clone().map_item(ItemType::of::<WireBytes>());
        if let Some(node) = &self.from_node {
            out = out.at_location(node.clone());
        }
        Ok(out)
    }
}

impl<T: Serialize + Send + 'static> Function for Marshal<T> {
    fn convert(&mut self, item: Item) -> Option<Item> {
        let meta = item.meta;
        let (value, _) = item.into_payload::<T>().ok()?;
        // Marshal into a single owned buffer and seal it; downstream
        // crossings (tees, transports) share it without copying.
        let bytes = match &self.pool {
            Some(pool) => {
                let hint = self.last_len.max(64);
                let sealed = wire::to_payload_in(pool, hint, &value).ok()?;
                self.last_len = sealed.len();
                sealed
            }
            None => wire::to_payload(&value).ok()?,
        };
        let mut out = Item::bytes(bytes);
        out.meta = meta;
        Some(out)
    }
}

/// A point-in-time snapshot of an [`Unmarshal`] filter's counters (see
/// [`UnmarshalCounters::snapshot`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UnmarshalStats {
    /// Messages decoded.
    pub decoded: u64,
    /// Messages dropped because decoding failed (corruption).
    pub errors: u64,
    /// The location stamped into the flow's Typespec as it leaves this
    /// filter — the transport peer identity when configured with
    /// [`Unmarshal::at_peer`], a hand-written node name with
    /// [`Unmarshal::at_node`], `None` when the rewrite is disabled.
    pub location: Option<String>,
}

/// The live counters behind an [`Unmarshal`] filter, shared with
/// observers through [`Unmarshal::stats_handle`].
///
/// The counts are plain atomics so the decode hot loop bumps them
/// lock-free and an inspector sampling mid-stream never contends it
/// (the location label, written once at configuration time, keeps a
/// mutex nobody touches per message).
#[derive(Debug, Default)]
pub struct UnmarshalCounters {
    decoded: AtomicU64,
    errors: AtomicU64,
    location: Mutex<Option<String>>,
}

impl UnmarshalCounters {
    /// Messages decoded so far.
    #[must_use]
    pub fn decoded(&self) -> u64 {
        self.decoded.load(Ordering::Relaxed)
    }

    /// Messages dropped because decoding failed.
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// The configured location stamp, if any.
    #[must_use]
    pub fn location(&self) -> Option<String> {
        self.location.lock().clone()
    }

    /// A consistent snapshot of all counters.
    #[must_use]
    pub fn snapshot(&self) -> UnmarshalStats {
        UnmarshalStats {
            decoded: self.decoded(),
            errors: self.errors(),
            location: self.location(),
        }
    }
}

/// Deserializes [`WireBytes`] back to typed items (function style).
/// Undecodable messages are dropped and counted, never propagated.
pub struct Unmarshal<T> {
    name: String,
    to_node: Option<String>,
    stats: Arc<UnmarshalCounters>,
    _marker: PhantomData<fn() -> T>,
}

impl<T: DeserializeOwned + Clone + Send + 'static> Unmarshal<T> {
    /// Creates an unmarshaller.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Unmarshal<T> {
        Unmarshal {
            name: name.into(),
            to_node: None,
            stats: Arc::new(UnmarshalCounters::default()),
            _marker: PhantomData,
        }
    }

    /// Also record the consumer-side node name in the flow's location
    /// property.
    #[must_use]
    pub fn at_node(mut self, node: impl Into<String>) -> Unmarshal<T> {
        self.to_node = Some(node.into());
        *self.stats.location.lock() = self.to_node.clone();
        self
    }

    /// Records a transport peer identity as the consumer-side location
    /// (`scheme://addr`): the flow is stamped with the link it actually
    /// arrived over, instead of a hard-coded string.
    #[must_use]
    pub fn at_peer(self, peer: &PeerIdentity) -> Unmarshal<T> {
        self.at_node(peer.to_string())
    }

    /// A handle on the decode counters, sampled lock-free (see
    /// [`UnmarshalCounters::snapshot`]).
    #[must_use]
    pub fn stats_handle(&self) -> Arc<UnmarshalCounters> {
        Arc::clone(&self.stats)
    }
}

impl<T: DeserializeOwned + Clone + Send + 'static> Stage for Unmarshal<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn accepts(&self) -> Typespec {
        Typespec::with_item_type(ItemType::of::<WireBytes>())
    }

    fn transform_spec(&self, input: &Typespec) -> Result<Typespec, TypeError> {
        // Crossing the netpipe: the location changes, so start from a
        // location-free copy and stamp the consumer node.
        let mut out = Typespec::with_item_type(ItemType::of::<T>());
        for (k, r) in input.qos_map().iter() {
            out.qos_map_mut().set(k.clone(), *r);
        }
        if let Some(node) = &self.to_node {
            out = out.at_location(node.clone());
        }
        Ok(out)
    }
}

impl<T: DeserializeOwned + Clone + Send + 'static> Function for Unmarshal<T> {
    fn convert(&mut self, item: Item) -> Option<Item> {
        let meta = item.meta;
        let (bytes, _) = item.into_payload::<WireBytes>().ok()?;
        // Decode by borrowing the shared frame buffer: no copy of the
        // payload is made on the receive path.
        match wire::from_bytes::<T>(&bytes) {
            Ok(value) => {
                self.stats.decoded.fetch_add(1, Ordering::Relaxed);
                let mut out = Item::cloneable(value);
                out.meta = meta;
                Some(out)
            }
            Err(_) => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marshal_unmarshal_round_trips_items() {
        let mut m = Marshal::<media::MidiEvent>::new("m");
        let mut u = Unmarshal::<media::MidiEvent>::new("u");
        let ev = media::MidiEvent {
            channel: 3,
            note: 64,
            velocity: 100,
            at_us: 42,
        };
        let wire_item = m.convert(Item::cloneable(ev).with_seq(9)).unwrap();
        assert!(wire_item.is::<WireBytes>());
        assert_eq!(wire_item.meta.seq, 9);
        let back = u.convert(wire_item).unwrap();
        assert_eq!(back.meta.seq, 9);
        assert_eq!(back.expect::<media::MidiEvent>(), ev);
    }

    #[test]
    fn unmarshal_counts_corrupt_messages() {
        let u = Unmarshal::<media::MidiEvent>::new("u");
        let stats = u.stats_handle();
        let mut u = u;
        let garbage = Item::bytes(WireBytes::from(vec![1, 2, 3]));
        assert!(u.convert(garbage).is_none());
        assert_eq!(stats.errors(), 1);
        assert_eq!(stats.decoded(), 0);
        assert_eq!(
            stats.snapshot(),
            UnmarshalStats {
                decoded: 0,
                errors: 1,
                location: None
            }
        );
    }

    #[test]
    fn specs_cross_the_location_boundary() {
        use typespec::{QosKey, QosRange};
        let m = Marshal::<media::MidiEvent>::new("m").at_node("producer");
        let u = Unmarshal::<media::MidiEvent>::new("u").at_node("consumer");

        let flow = Typespec::of::<media::MidiEvent>()
            .with_qos(QosKey::FrameRateHz, QosRange::exactly(30.0));
        let on_wire = m.transform_spec(&flow).unwrap();
        assert_eq!(on_wire.location(), Some("producer"));
        assert!(on_wire.item().compatible_with(&ItemType::of::<WireBytes>()));

        let delivered = u.transform_spec(&on_wire).unwrap();
        assert_eq!(delivered.location(), Some("consumer"));
        assert!(delivered
            .item()
            .compatible_with(&ItemType::of::<media::MidiEvent>()));
        // QoS hints survive the crossing.
        assert_eq!(
            delivered.qos(&QosKey::FrameRateHz),
            Some(QosRange::exactly(30.0))
        );
    }

    #[test]
    fn peer_identity_drives_the_location_rewrite() {
        use crate::transport::PeerIdentity;
        let peer = PeerIdentity::new("tcp", "10.1.2.3:9000");
        let m = Marshal::<u32>::new("m").at_peer(&peer);
        let u = Unmarshal::<u32>::new("u").at_peer(&peer);

        let on_wire = m.transform_spec(&Typespec::of::<u32>()).unwrap();
        assert_eq!(on_wire.location(), Some("tcp://10.1.2.3:9000"));
        let delivered = u.transform_spec(&on_wire).unwrap();
        assert_eq!(delivered.location(), Some("tcp://10.1.2.3:9000"));

        // The stamped location is surfaced in the stats probe.
        assert_eq!(
            u.stats_handle().location().as_deref(),
            Some("tcp://10.1.2.3:9000")
        );
        assert_eq!(
            Unmarshal::<u32>::new("plain").stats_handle().location(),
            None
        );
    }

    #[test]
    fn wire_bytes_basics() {
        let w = WireBytes::from(vec![1, 2]);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        assert!(WireBytes::new().is_empty());
    }

    #[test]
    fn pooled_marshal_recycles_buffers() {
        let pool = BufferPool::new();
        let mut m = Marshal::<u32>::new("m").with_pool(&pool);

        let first = m.convert(Item::cloneable(7u32)).unwrap();
        let bytes = first.as_payload_bytes().unwrap().clone();
        assert!(bytes.is_pooled());
        drop(first);
        drop(bytes);

        // The second marshal reuses the recycled buffer: a pool hit.
        let second = m.convert(Item::cloneable(9u32)).unwrap();
        assert!(second.as_payload_bytes().unwrap().is_pooled());
        assert!(pool.stats().hits >= 1, "expected a recycled-buffer hit");
    }

    #[test]
    fn marshalled_items_ride_the_bytes_fast_path() {
        let mut m = Marshal::<u32>::new("m");
        let wire_item = m.convert(Item::cloneable(7u32).with_seq(1)).unwrap();
        let sent = wire_item.as_payload_bytes().unwrap().clone();
        // A tee-style duplication of the marshalled item shares the
        // sealed buffer instead of copying it.
        let dup = wire_item.try_clone().unwrap();
        assert_eq!(
            dup.as_payload_bytes().unwrap().as_ptr(),
            sent.as_ptr(),
            "duplicating a marshalled item must not copy the payload"
        );
    }
}
