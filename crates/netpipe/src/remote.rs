//! Remote component factories and Typespec queries (§2.4),
//! transport-agnostic.
//!
//! "In addition to netpipes, the Infopipe platform provides protocols and
//! factories for the creation of remote Infopipe components. Remote
//! Typespec queries also require a middleware protocol as well as a
//! mechanism for property marshalling."
//!
//! A [`RemoteHost`] owns a [`ComponentRegistry`] of named component
//! factories. A [`RemoteClient`] connects over **any**
//! [`Transport`] — TCP, the network simulator, or an
//! in-process link — names the chain of components it wants instantiated
//! behind the netpipe (`CreatePipeline`), may query the resulting flow's
//! Typespec (`QuerySpec`), and then streams data frames; control events
//! are forwarded in both directions on the transport's control lane.
//!
//! The protocol sees only [`Frame`]s, so a `RemoteClient<TcpLink>` and a
//! `RemoteClient<SimLink>` run exactly the same code — swapping the
//! transport swaps the wire, nothing else.

use crate::proto::{CtrlMsg, WireEvent};
use crate::transport::{Frame, Link, PeerIdentity, RecvOutcome, Transport};
use crate::wire;
use infopipes::{
    BufferSpec, ControlEvent, FreePump, InboxSender, Item, Pipeline, RunningPipeline, Style,
};
use mbthread::Kernel;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// How long protocol peers wait for a control reply before giving up.
const CTRL_TIMEOUT: Duration = Duration::from_secs(20);
/// The host's per-iteration poll granularity while streaming.
const POLL: Duration = Duration::from_millis(50);

/// Errors of the remote factory protocol.
#[derive(Debug)]
pub enum RemoteError {
    /// A transport error.
    Transport(crate::TransportError),
    /// A malformed protocol message.
    Wire(String),
    /// The peer violated the protocol (wrong message at the wrong time).
    Protocol(String),
    /// The host refused the request (unknown component, bad composition).
    Refused(String),
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::Transport(e) => write!(f, "transport error: {e}"),
            RemoteError::Wire(s) => write!(f, "malformed message: {s}"),
            RemoteError::Protocol(s) => write!(f, "protocol violation: {s}"),
            RemoteError::Refused(s) => write!(f, "host refused: {s}"),
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<crate::TransportError> for RemoteError {
    fn from(e: crate::TransportError) -> Self {
        RemoteError::Transport(e)
    }
}

/// Named factories for components a host can instantiate on behalf of
/// remote clients. Factories receive the requesting client's
/// [`PeerIdentity`], so location-stamping components
/// ([`Unmarshal::at_peer`](crate::Unmarshal::at_peer)) can record the
/// link the flow really arrives over.
#[derive(Default)]
pub struct ComponentRegistry {
    #[allow(clippy::type_complexity)]
    factories: HashMap<String, Box<dyn Fn(&PeerIdentity) -> Style + Send + Sync>>,
}

impl ComponentRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> ComponentRegistry {
        ComponentRegistry::default()
    }

    /// Registers a peer-independent factory under a name (replacing any
    /// previous one).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Style + Send + Sync + 'static,
    ) {
        self.factories
            .insert(name.into(), Box::new(move |_| factory()));
    }

    /// Registers a factory that receives the requesting client's peer
    /// identity.
    pub fn register_with_peer(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(&PeerIdentity) -> Style + Send + Sync + 'static,
    ) {
        self.factories.insert(name.into(), Box::new(factory));
    }

    /// Instantiates a registered component for the given client.
    #[must_use]
    pub fn make(&self, name: &str, peer: &PeerIdentity) -> Option<Style> {
        self.factories.get(name).map(|f| f(peer))
    }

    /// The registered names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.factories.keys().cloned().collect();
        names.sort();
        names
    }
}

impl fmt::Debug for ComponentRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ComponentRegistry")
            .field("names", &self.names())
            .finish()
    }
}

/// A marshalled Typespec summary, as returned by remote spec queries.
#[derive(Clone, Debug, PartialEq)]
pub struct SpecSummary {
    /// The item type's name.
    pub item: String,
    /// The location property at the end of the remote chain.
    pub location: Option<String>,
    /// QoS entries: (dimension, min, max).
    pub qos: Vec<(String, f64, f64)>,
}

fn send_ctrl<L: Link>(link: &L, msg: &CtrlMsg) -> Result<(), RemoteError> {
    let bytes = wire::to_bytes(msg).map_err(|e| RemoteError::Wire(e.to_string()))?;
    if link.send(Frame::Control(bytes)).accepted() {
        Ok(())
    } else {
        Err(RemoteError::Transport(crate::TransportError::Closed))
    }
}

/// Waits for the next control frame; events arriving during setup are
/// skipped (they are not ours to handle yet), data frames are a protocol
/// violation.
fn recv_ctrl<L: Link>(link: &L, what: &str) -> Result<CtrlMsg, RemoteError> {
    let deadline = std::time::Instant::now() + CTRL_TIMEOUT;
    loop {
        match link.recv(POLL) {
            RecvOutcome::Frame(Frame::Control(payload)) => {
                return wire::from_bytes(&payload).map_err(|e| RemoteError::Wire(e.to_string()));
            }
            RecvOutcome::Frame(Frame::Event(_)) | RecvOutcome::TimedOut => {}
            RecvOutcome::Frame(other) => {
                return Err(RemoteError::Protocol(format!(
                    "expected {what}, got a {} frame",
                    frame_name(&other)
                )));
            }
            RecvOutcome::Fin | RecvOutcome::Closed => {
                return Err(RemoteError::Protocol("connection closed".into()));
            }
        }
        // Checked on every iteration: a peer streaming events faster than
        // the poll period must not be able to starve the deadline.
        if std::time::Instant::now() >= deadline {
            return Err(RemoteError::Protocol(format!(
                "timed out waiting for {what}"
            )));
        }
    }
}

fn frame_name(frame: &Frame) -> &'static str {
    match frame {
        Frame::Data(_) => "data",
        Frame::Event(_) => "event",
        Frame::Control(_) => "control",
        Frame::Fin => "fin",
    }
}

// ---------------------------------------------------------------------
// Host
// ---------------------------------------------------------------------

/// Serves remote-creation requests on accepted links.
pub struct RemoteHost {
    registry: ComponentRegistry,
    node_name: String,
}

impl RemoteHost {
    /// Creates a host publishing the given registry, reporting
    /// `node_name` as its fallback location.
    #[must_use]
    pub fn new(node_name: impl Into<String>, registry: ComponentRegistry) -> RemoteHost {
        RemoteHost {
            registry,
            node_name: node_name.into(),
        }
    }

    /// Serves one accepted link to completion (blocking): builds the
    /// requested pipeline on `kernel`, streams data into it, forwards
    /// events both ways, and returns when the client finishes.
    ///
    /// # Errors
    ///
    /// Any [`RemoteError`] from the transport or protocol.
    pub fn serve_link<L: Link>(&self, link: &L, kernel: &Kernel) -> Result<(), RemoteError> {
        let peer = link.peer();

        // 1. Expect CreatePipeline.
        let components = match recv_ctrl(link, "CreatePipeline")? {
            CtrlMsg::CreatePipeline { components } => components,
            other => {
                return Err(RemoteError::Protocol(format!(
                    "expected CreatePipeline, got {other:?}"
                )))
            }
        };

        // 2. Build: inbox >> pump >> components...
        let pipeline = Pipeline::new(kernel, "remote");
        let (inbox, inbox_sender) = pipeline.add_inbox("net-in", BufferSpec::bounded(256));
        pipeline.set_transport(inbox, peer.to_string());
        let pump = pipeline.add_pump("net-pump", FreePump::new());
        if let Err(e) = pipeline.connect(inbox, pump) {
            return refuse(link, &e.to_string());
        }
        let mut prev = pump;
        for name in &components {
            let Some(style) = self.registry.make(name, &peer) else {
                return refuse(link, &format!("unknown component '{name}'"));
            };
            let node = pipeline.add_style(name, style);
            if let Err(e) = pipeline.connect(prev, node) {
                return refuse(link, &e.to_string());
            }
            prev = node;
        }

        // Capture the end-of-chain spec for queries before starting.
        let spec = pipeline
            .query_spec(prev)
            .map(|s| CtrlMsg::SpecReply {
                item: s.item().name().to_owned(),
                location: Some(
                    s.location()
                        .map_or_else(|| self.node_name.clone(), ToOwned::to_owned),
                ),
                qos: s
                    .qos_map()
                    .iter()
                    .map(|(k, r)| (k.to_string(), r.min(), r.max()))
                    .collect(),
            })
            .map_err(|e| e.to_string());

        let running = match pipeline.start() {
            Ok(r) => r,
            Err(e) => return refuse(link, &e.to_string()),
        };
        // The pipeline carries this peer's identity (the typespec
        // location rewrite in its Unmarshal stages); it must not outlive
        // the link. `RunningPipeline` keeps running when dropped, so stop
        // it on every exit path — early protocol errors and abrupt link
        // closures included.
        struct StopOnExit<'a>(&'a RunningPipeline);
        impl Drop for StopOnExit<'_> {
            fn drop(&mut self) {
                let _ = self.0.stop();
            }
        }
        let _stop_guard = StopOnExit(&running);
        running
            .start_flow()
            .map_err(|e| RemoteError::Protocol(e.to_string()))?;
        send_ctrl(link, &CtrlMsg::Created { error: None })?;

        // 3. Forward outbound events (host pipeline → client) from a
        // side thread; the main loop keeps the link's receive side.
        let stop_flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let forwarder = spawn_event_forwarder(link.clone(), &running, Arc::clone(&stop_flag));
        // Our own subscription, opened before streaming so the pipeline's
        // EOS broadcast cannot slip past between loop exit and teardown.
        let eos_probe = running.subscribe();

        // 4. Main frame loop.
        let result = stream_frames(link, &inbox_sender, &running, &spec);
        if result.is_ok() {
            // The stream ended in order: wait (bounded) for the end of
            // stream to drain through the pipeline and surface as the EOS
            // broadcast, then one forwarder poll cycle so it reaches the
            // client before the forwarder stops.
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while std::time::Instant::now() < deadline {
                if let Some(ControlEvent::Eos) = eos_probe.recv_timeout(Duration::from_millis(50)) {
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        stop_flag.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = forwarder.join();
        result
    }
}

/// The host's streaming loop: data into the inbox, events into the
/// running pipeline, spec queries answered from the build-time capture
/// (the chain is immutable once created).
fn stream_frames<L: Link>(
    link: &L,
    inbox_sender: &InboxSender,
    running: &RunningPipeline,
    spec: &Result<CtrlMsg, String>,
) -> Result<(), RemoteError> {
    loop {
        match link.recv(POLL) {
            RecvOutcome::Frame(Frame::Data(bytes)) => {
                let _ = inbox_sender.put(Item::bytes(bytes));
            }
            RecvOutcome::Frame(Frame::Event(ev)) => {
                let _ = running.send_event(ev.into());
            }
            RecvOutcome::Frame(Frame::Control(payload)) => {
                match wire::from_bytes::<CtrlMsg>(&payload) {
                    Ok(CtrlMsg::QuerySpec) => match spec {
                        Ok(reply) => send_ctrl(link, reply)?,
                        Err(e) => send_ctrl(
                            link,
                            &CtrlMsg::Created {
                                error: Some(e.clone()),
                            },
                        )?,
                    },
                    Ok(other) => {
                        return Err(RemoteError::Protocol(format!(
                            "unexpected mid-stream message {other:?}"
                        )))
                    }
                    Err(e) => return Err(RemoteError::Wire(e.to_string())),
                }
            }
            RecvOutcome::Frame(Frame::Fin) | RecvOutcome::Fin => {
                inbox_sender.finish();
                return Ok(());
            }
            RecvOutcome::Closed => {
                inbox_sender.finish();
                return Err(RemoteError::Protocol("connection closed".into()));
            }
            RecvOutcome::TimedOut => {}
        }
    }
}

fn spawn_event_forwarder<L: Link>(
    link: L,
    running: &RunningPipeline,
    stop_flag: Arc<std::sync::atomic::AtomicBool>,
) -> std::thread::JoinHandle<()> {
    let sub = running.subscribe();
    std::thread::Builder::new()
        .name("remote-event-fwd".into())
        .spawn(move || {
            while !stop_flag.load(std::sync::atomic::Ordering::Relaxed) {
                if let Some(ev) = sub.recv_timeout(Duration::from_millis(50)) {
                    if matches!(ev, ControlEvent::Start | ControlEvent::Stop) {
                        continue;
                    }
                    if !link.send(Frame::Event(WireEvent::from(&ev))).accepted() {
                        break;
                    }
                }
            }
        })
        .expect("spawn event forwarder")
}

impl fmt::Debug for RemoteHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteHost")
            .field("node", &self.node_name)
            .field("registry", &self.registry)
            .finish()
    }
}

fn refuse<L: Link>(link: &L, error: &str) -> Result<(), RemoteError> {
    send_ctrl(
        link,
        &CtrlMsg::Created {
            error: Some(error.to_owned()),
        },
    )?;
    Err(RemoteError::Refused(error.to_owned()))
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// The client side of a remote-creation session, generic over the
/// transport.
pub struct RemoteClient<L: Link> {
    link: L,
    events_bound: bool,
}

impl<L: Link> RemoteClient<L> {
    /// Connects to a [`RemoteHost`] through the given transport.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn connect<T: Transport<Link = L>>(
        transport: &T,
        addr: &str,
    ) -> Result<RemoteClient<L>, RemoteError> {
        let link = transport.connect(addr)?;
        Ok(RemoteClient {
            link,
            events_bound: false,
        })
    }

    /// Wraps an already-established link (e.g. an accepted one).
    #[must_use]
    pub fn over(link: L) -> RemoteClient<L> {
        RemoteClient {
            link,
            events_bound: false,
        }
    }

    /// Identity of the host end of the link.
    #[must_use]
    pub fn peer(&self) -> PeerIdentity {
        self.link.peer()
    }

    /// Asks the host to instantiate the named component chain behind its
    /// netpipe end.
    ///
    /// # Errors
    ///
    /// [`RemoteError::Refused`] with the host's reason, or transport
    /// errors.
    pub fn create_pipeline(&mut self, components: &[&str]) -> Result<(), RemoteError> {
        self.ensure_setup_phase()?;
        send_ctrl(
            &self.link,
            &CtrlMsg::CreatePipeline {
                components: components.iter().map(|s| (*s).to_owned()).collect(),
            },
        )?;
        match recv_ctrl(&self.link, "Created")? {
            CtrlMsg::Created { error: None } => Ok(()),
            CtrlMsg::Created { error: Some(e) } => Err(RemoteError::Refused(e)),
            other => Err(RemoteError::Protocol(format!(
                "expected Created, got {other:?}"
            ))),
        }
    }

    /// Queries the Typespec at the end of the remote chain (§2.4's remote
    /// Typespec query). Must be called before
    /// [`RemoteClient::spawn_event_reader`].
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn query_spec(&mut self) -> Result<SpecSummary, RemoteError> {
        self.ensure_setup_phase()?;
        send_ctrl(&self.link, &CtrlMsg::QuerySpec)?;
        match recv_ctrl(&self.link, "SpecReply")? {
            CtrlMsg::SpecReply {
                item,
                location,
                qos,
            } => Ok(SpecSummary {
                item,
                location,
                qos,
            }),
            CtrlMsg::Created { error: Some(e) } => Err(RemoteError::Refused(e)),
            other => Err(RemoteError::Protocol(format!(
                "expected SpecReply, got {other:?}"
            ))),
        }
    }

    /// The producer-side netpipe end: add it as the local pipeline's
    /// sink (or use
    /// [`add_net_sink`](crate::PipelineTransportExt::add_net_sink) with
    /// [`RemoteClient::link`]).
    #[must_use]
    pub fn send_end(&self, name: impl Into<String>) -> crate::NetSendEnd<L> {
        crate::NetSendEnd::new(name, self.link.clone())
    }

    /// The underlying link (for `add_net_sink` and stats probes).
    #[must_use]
    pub fn link(&self) -> &L {
        &self.link
    }

    /// Consumes the read half: events from the host are delivered to
    /// `on_event` on the transport's receive path (e.g. forwarded into
    /// the local pipeline with `RunningPipeline::send_event`). Ends the
    /// setup phase; call after `create_pipeline`/`query_spec`.
    ///
    /// # Errors
    ///
    /// [`TransportError::ReceiverTaken`](crate::TransportError) if called
    /// twice.
    pub fn spawn_event_reader(
        &mut self,
        on_event: impl Fn(ControlEvent) + Send + 'static,
    ) -> Result<(), RemoteError> {
        self.ensure_setup_phase()?;
        self.events_bound = true;
        self.link.bind_receiver(None, on_event)?;
        Ok(())
    }

    fn ensure_setup_phase(&self) -> Result<(), RemoteError> {
        if self.events_bound {
            Err(RemoteError::Protocol("setup phase is over".into()))
        } else {
            Ok(())
        }
    }
}

impl<L: Link> fmt::Debug for RemoteClient<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteClient")
            .field("peer", &self.link.peer().to_string())
            .finish()
    }
}
