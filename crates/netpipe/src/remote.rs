//! Remote component factories and Typespec queries (§2.4).
//!
//! "In addition to netpipes, the Infopipe platform provides protocols and
//! factories for the creation of remote Infopipe components. Remote
//! Typespec queries also require a middleware protocol as well as a
//! mechanism for property marshalling."
//!
//! A [`RemoteHost`] owns a [`ComponentRegistry`] of named component
//! factories. A [`RemoteClient`] connects, names the chain of components
//! it wants instantiated behind the netpipe (`CreatePipeline`), may query
//! the resulting flow's Typespec (`QuerySpec`), and then streams data
//! frames; control events are forwarded in both directions.

use crate::framing::{read_frame, write_frame, FrameKind};
use crate::marshal::WireBytes;
use crate::proto::{CtrlMsg, WireEvent};
use crate::wire;
use infopipes::{BufferSpec, ControlEvent, FreePump, Item, Pipeline, Style};
use mbthread::Kernel;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Errors of the remote factory protocol.
#[derive(Debug)]
pub enum RemoteError {
    /// A socket error.
    Io(std::io::Error),
    /// A malformed protocol message.
    Wire(String),
    /// The peer violated the protocol (wrong message at the wrong time).
    Protocol(String),
    /// The host refused the request (unknown component, bad composition).
    Refused(String),
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::Io(e) => write!(f, "i/o error: {e}"),
            RemoteError::Wire(s) => write!(f, "malformed message: {s}"),
            RemoteError::Protocol(s) => write!(f, "protocol violation: {s}"),
            RemoteError::Refused(s) => write!(f, "host refused: {s}"),
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<std::io::Error> for RemoteError {
    fn from(e: std::io::Error) -> Self {
        RemoteError::Io(e)
    }
}

/// Named factories for components a host can instantiate on behalf of
/// remote clients.
#[derive(Default)]
pub struct ComponentRegistry {
    factories: HashMap<String, Box<dyn Fn() -> Style + Send + Sync>>,
}

impl ComponentRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> ComponentRegistry {
        ComponentRegistry::default()
    }

    /// Registers a factory under a name (replacing any previous one).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Style + Send + Sync + 'static,
    ) {
        self.factories.insert(name.into(), Box::new(factory));
    }

    /// Instantiates a registered component.
    #[must_use]
    pub fn make(&self, name: &str) -> Option<Style> {
        self.factories.get(name).map(|f| f())
    }

    /// The registered names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.factories.keys().cloned().collect();
        names.sort();
        names
    }
}

impl fmt::Debug for ComponentRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ComponentRegistry")
            .field("names", &self.names())
            .finish()
    }
}

/// A marshalled Typespec summary, as returned by remote spec queries.
#[derive(Clone, Debug, PartialEq)]
pub struct SpecSummary {
    /// The item type's name.
    pub item: String,
    /// The location property at the end of the remote chain.
    pub location: Option<String>,
    /// QoS entries: (dimension, min, max).
    pub qos: Vec<(String, f64, f64)>,
}

fn send_ctrl(stream: &Mutex<TcpStream>, msg: &CtrlMsg) -> Result<(), RemoteError> {
    let bytes = wire::to_bytes(msg).map_err(|e| RemoteError::Wire(e.to_string()))?;
    let mut s = stream.lock();
    write_frame(&mut *s, FrameKind::Control, &bytes)?;
    Ok(())
}

// ---------------------------------------------------------------------
// Host
// ---------------------------------------------------------------------

/// Serves remote-creation requests on a listening socket.
pub struct RemoteHost {
    registry: ComponentRegistry,
    node_name: String,
}

impl RemoteHost {
    /// Creates a host publishing the given registry, reporting
    /// `node_name` as its location.
    #[must_use]
    pub fn new(node_name: impl Into<String>, registry: ComponentRegistry) -> RemoteHost {
        RemoteHost {
            registry,
            node_name: node_name.into(),
        }
    }

    /// Serves one client connection to completion (blocking): builds the
    /// requested pipeline on `kernel`, streams data into it, forwards
    /// events both ways, and returns when the client finishes.
    ///
    /// # Errors
    ///
    /// Any [`RemoteError`] from the socket or protocol.
    pub fn serve_connection(&self, stream: TcpStream, kernel: &Kernel) -> Result<(), RemoteError> {
        let write_half = Arc::new(Mutex::new(stream.try_clone()?));
        let mut reader = BufReader::new(stream);

        // 1. Expect CreatePipeline.
        let components = match read_ctrl(&mut reader)? {
            CtrlMsg::CreatePipeline { components } => components,
            other => {
                return Err(RemoteError::Protocol(format!(
                    "expected CreatePipeline, got {other:?}"
                )))
            }
        };

        // 2. Build: inbox >> pump >> components...
        let pipeline = Pipeline::new(kernel, "remote");
        let (inbox, inbox_sender) = pipeline.add_inbox("net-in", BufferSpec::bounded(256));
        let pump = pipeline.add_pump("net-pump", FreePump::new());
        if let Err(e) = pipeline.connect(inbox, pump) {
            return refuse(&write_half, &e.to_string());
        }
        let mut prev = pump;
        for name in &components {
            let Some(style) = self.registry.make(name) else {
                return refuse(&write_half, &format!("unknown component '{name}'"));
            };
            let node = pipeline.add_style(name, style);
            if let Err(e) = pipeline.connect(prev, node) {
                return refuse(&write_half, &e.to_string());
            }
            prev = node;
        }

        // Capture the end-of-chain spec for queries before starting.
        let spec = pipeline
            .query_spec(prev)
            .map(|s| CtrlMsg::SpecReply {
                item: s.item().name().to_owned(),
                location: Some(
                    s.location()
                        .map_or_else(|| self.node_name.clone(), ToOwned::to_owned),
                ),
                qos: s
                    .qos_map()
                    .iter()
                    .map(|(k, r)| (k.to_string(), r.min(), r.max()))
                    .collect(),
            })
            .map_err(|e| e.to_string());

        let running = match pipeline.start() {
            Ok(r) => r,
            Err(e) => return refuse(&write_half, &e.to_string()),
        };
        running
            .start_flow()
            .map_err(|e| RemoteError::Protocol(e.to_string()))?;
        send_ctrl(&write_half, &CtrlMsg::Created { error: None })?;

        // 3. Forward outbound events (host pipeline → client).
        let sub = running.subscribe();
        let ev_write = Arc::clone(&write_half);
        let stop_flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_flag2 = Arc::clone(&stop_flag);
        let forwarder = std::thread::Builder::new()
            .name("remote-event-fwd".into())
            .spawn(move || {
                while !stop_flag2.load(std::sync::atomic::Ordering::Relaxed) {
                    if let Some(ev) = sub.recv_timeout(Duration::from_millis(50)) {
                        if matches!(ev, ControlEvent::Start | ControlEvent::Stop) {
                            continue;
                        }
                        if let Ok(bytes) = wire::to_bytes(&WireEvent::from(&ev)) {
                            let mut s = ev_write.lock();
                            if write_frame(&mut *s, FrameKind::Event, &bytes).is_err() {
                                break;
                            }
                        }
                    }
                }
            })
            .expect("spawn event forwarder");

        // 4. Main frame loop.
        let result = loop {
            match read_frame(&mut reader) {
                Ok(Some((FrameKind::Data, payload))) => {
                    let _ = inbox_sender.put(Item::cloneable(WireBytes(payload)));
                }
                Ok(Some((FrameKind::Event, payload))) => {
                    match wire::from_bytes::<WireEvent>(&payload) {
                        Ok(ev) => {
                            let _ = running.send_event(ev.into());
                        }
                        Err(e) => break Err(RemoteError::Wire(e.to_string())),
                    }
                }
                Ok(Some((FrameKind::Control, payload))) => {
                    match wire::from_bytes::<CtrlMsg>(&payload) {
                        Ok(CtrlMsg::QuerySpec) => match &spec {
                            Ok(reply) => send_ctrl(&write_half, reply)?,
                            Err(e) => {
                                send_ctrl(
                                    &write_half,
                                    &CtrlMsg::Created {
                                        error: Some(e.clone()),
                                    },
                                )?;
                            }
                        },
                        Ok(other) => {
                            break Err(RemoteError::Protocol(format!(
                                "unexpected mid-stream message {other:?}"
                            )))
                        }
                        Err(e) => break Err(RemoteError::Wire(e.to_string())),
                    }
                }
                Ok(Some((FrameKind::Fin, _))) | Ok(None) => {
                    inbox_sender.finish();
                    break Ok(());
                }
                Err(e) => {
                    inbox_sender.finish();
                    break Err(RemoteError::Io(e));
                }
            }
        };
        stop_flag.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = forwarder.join();
        result
    }
}

impl fmt::Debug for RemoteHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteHost")
            .field("node", &self.node_name)
            .field("registry", &self.registry)
            .finish()
    }
}

fn refuse(write_half: &Mutex<TcpStream>, error: &str) -> Result<(), RemoteError> {
    send_ctrl(
        write_half,
        &CtrlMsg::Created {
            error: Some(error.to_owned()),
        },
    )?;
    Err(RemoteError::Refused(error.to_owned()))
}

fn read_ctrl(reader: &mut BufReader<TcpStream>) -> Result<CtrlMsg, RemoteError> {
    loop {
        match read_frame(reader)? {
            Some((FrameKind::Control, payload)) => {
                return wire::from_bytes(&payload).map_err(|e| RemoteError::Wire(e.to_string()));
            }
            Some((FrameKind::Event, _)) => { /* not expected during setup; skip */ }
            Some((other, _)) => {
                return Err(RemoteError::Protocol(format!(
                    "expected a control frame, got {other:?}"
                )))
            }
            None => return Err(RemoteError::Protocol("connection closed".into())),
        }
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// The client side of a remote-creation session.
pub struct RemoteClient {
    /// Read half; consumed by [`RemoteClient::spawn_event_reader`].
    reader: Option<BufReader<TcpStream>>,
    write: Arc<Mutex<TcpStream>>,
    data_stream: TcpStream,
}

impl RemoteClient {
    /// Connects to a [`RemoteHost`].
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn connect(addr: std::net::SocketAddr) -> Result<RemoteClient, RemoteError> {
        let stream = TcpStream::connect(addr)?;
        Ok(RemoteClient {
            reader: Some(BufReader::new(stream.try_clone()?)),
            write: Arc::new(Mutex::new(stream.try_clone()?)),
            data_stream: stream,
        })
    }

    /// Asks the host to instantiate the named component chain behind its
    /// netpipe end.
    ///
    /// # Errors
    ///
    /// [`RemoteError::Refused`] with the host's reason, or transport
    /// errors.
    pub fn create_pipeline(&mut self, components: &[&str]) -> Result<(), RemoteError> {
        send_ctrl(
            &self.write,
            &CtrlMsg::CreatePipeline {
                components: components.iter().map(|s| (*s).to_owned()).collect(),
            },
        )?;
        let reader = self
            .reader
            .as_mut()
            .ok_or_else(|| RemoteError::Protocol("setup phase is over".into()))?;
        match read_ctrl_client(reader)? {
            CtrlMsg::Created { error: None } => Ok(()),
            CtrlMsg::Created { error: Some(e) } => Err(RemoteError::Refused(e)),
            other => Err(RemoteError::Protocol(format!(
                "expected Created, got {other:?}"
            ))),
        }
    }

    /// Queries the Typespec at the end of the remote chain (§2.4's remote
    /// Typespec query). Must be called before
    /// [`RemoteClient::spawn_event_reader`].
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn query_spec(&mut self) -> Result<SpecSummary, RemoteError> {
        send_ctrl(&self.write, &CtrlMsg::QuerySpec)?;
        let reader = self
            .reader
            .as_mut()
            .ok_or_else(|| RemoteError::Protocol("setup phase is over".into()))?;
        match read_ctrl_client(reader)? {
            CtrlMsg::SpecReply {
                item,
                location,
                qos,
            } => Ok(SpecSummary {
                item,
                location,
                qos,
            }),
            CtrlMsg::Created { error: Some(e) } => Err(RemoteError::Refused(e)),
            other => Err(RemoteError::Protocol(format!(
                "expected SpecReply, got {other:?}"
            ))),
        }
    }

    /// The producer-side netpipe end: add it as the local pipeline's sink.
    /// Ends the setup phase for writes (all further writes go through the
    /// send end's writer thread).
    ///
    /// # Errors
    ///
    /// Socket errors while cloning the stream.
    pub fn send_end(&self, name: impl Into<String>) -> Result<crate::TcpSendEnd, RemoteError> {
        Ok(crate::TcpSendEnd::new(name, self.data_stream.try_clone()?))
    }

    /// Consumes the read half: events from the host are delivered to
    /// `on_event` on a reader thread (e.g. forwarded into the local
    /// pipeline with `RunningPipeline::send_event`).
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn spawn_event_reader(
        &mut self,
        on_event: impl Fn(ControlEvent) + Send + 'static,
    ) -> std::thread::JoinHandle<()> {
        let mut reader = self
            .reader
            .take()
            .expect("spawn_event_reader may only be called once");
        std::thread::Builder::new()
            .name("remote-event-reader".into())
            .spawn(move || loop {
                match read_frame(&mut reader) {
                    Ok(Some((FrameKind::Event, payload))) => {
                        if let Ok(ev) = wire::from_bytes::<WireEvent>(&payload) {
                            on_event(ev.into());
                        }
                    }
                    Ok(Some(_)) => {}
                    Ok(None) | Err(_) => return,
                }
            })
            .expect("spawn event reader")
    }
}

impl fmt::Debug for RemoteClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteClient").finish()
    }
}

fn read_ctrl_client(reader: &mut BufReader<TcpStream>) -> Result<CtrlMsg, RemoteError> {
    loop {
        match read_frame(reader)? {
            Some((FrameKind::Control, payload)) => {
                return wire::from_bytes(&payload).map_err(|e| RemoteError::Wire(e.to_string()));
            }
            // Events may already be flowing; they are not ours to handle
            // during setup.
            Some((FrameKind::Event, _)) => {}
            Some((other, _)) => {
                return Err(RemoteError::Protocol(format!(
                    "expected a control frame, got {other:?}"
                )))
            }
            None => return Err(RemoteError::Protocol("connection closed".into())),
        }
    }
}
