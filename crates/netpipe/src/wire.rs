//! A from-scratch binary wire format implementing `serde`'s
//! `Serializer`/`Deserializer`.
//!
//! The format is schema-driven (not self-describing), little-endian, and
//! deliberately simple — the marshalling filters of §2.4 need a compact,
//! deterministic encoding, not a general interchange format:
//!
//! | type            | encoding                                |
//! |-----------------|------------------------------------------|
//! | bool            | 1 byte (0/1)                             |
//! | iN / uN         | fixed-width little-endian                |
//! | f32 / f64       | IEEE bits little-endian                  |
//! | char            | u32 scalar value                         |
//! | str / bytes     | u32 length + raw bytes                   |
//! | option          | u8 flag + value                          |
//! | unit / unit str | nothing                                  |
//! | seq / map       | u32 length + elements                    |
//! | enum variant    | u32 index + payload                      |
//! | struct / tuple  | fields in order                          |

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};
use std::fmt;

/// Errors produced by the wire codec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    Eof,
    /// Trailing bytes remained after deserialization.
    TrailingBytes(usize),
    /// A length prefix or scalar had an invalid value.
    Invalid(String),
    /// A serde-reported error.
    Message(String),
    /// The format is not self-describing, so `deserialize_any` (and
    /// formats that need it) cannot be supported.
    NotSelfDescribing,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Eof => write!(f, "unexpected end of input"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            WireError::Invalid(s) => write!(f, "invalid encoding: {s}"),
            WireError::Message(s) => write!(f, "{s}"),
            WireError::NotSelfDescribing => {
                write!(f, "wire format is not self-describing")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl ser::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}

impl de::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}

/// Serializes a value to wire bytes.
///
/// # Errors
///
/// Any [`WireError`] reported during serialization (e.g. map lengths
/// exceeding `u32`).
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    serialize_into(&mut out, value)?;
    Ok(out)
}

/// Serializes a value by appending its wire bytes to `out` — the
/// allocation-free core of the codec: with enough spare capacity in
/// `out`, serialization performs no heap allocation at all.
///
/// # Errors
///
/// Any [`WireError`] reported during serialization.
pub fn serialize_into<T: Serialize>(out: &mut Vec<u8>, value: &T) -> Result<(), WireError> {
    value.serialize(&mut WireSerializer { out })
}

/// Serializes a value into a single sealed [`PayloadBytes`](infopipes::PayloadBytes) buffer —
/// the entry point of the zero-copy payload path: the returned buffer is
/// shared (never copied) by every downstream crossing.
///
/// # Errors
///
/// Any [`WireError`] reported during serialization.
pub fn to_payload<T: Serialize>(value: &T) -> Result<infopipes::PayloadBytes, WireError> {
    to_bytes(value).map(infopipes::PayloadBytes::from_vec)
}

/// Serializes a value into a buffer drawn from `pool` and seals it —
/// the allocation-free variant of [`to_payload`]: in steady state
/// (recycled buffer, sufficient retained capacity) the seal performs
/// zero heap allocations. `size_hint` guides size-class selection;
/// callers that marshal a stream of similar messages pass the previous
/// message's size.
///
/// # Errors
///
/// Any [`WireError`] reported during serialization.
pub fn to_payload_in<T: Serialize>(
    pool: &infopipes::BufferPool,
    size_hint: usize,
    value: &T,
) -> Result<infopipes::PayloadBytes, WireError> {
    let mut buf = pool.acquire(size_hint);
    serialize_into(buf.buf_mut(), value)?;
    Ok(buf.seal())
}

/// Deserializes a value from wire bytes, requiring the input to be fully
/// consumed.
///
/// # Errors
///
/// Any [`WireError`]: truncated input, invalid encodings, or trailing
/// bytes.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, WireError> {
    let mut de = WireDeserializer { input: bytes };
    let value = T::deserialize(&mut de)?;
    if de.input.is_empty() {
        Ok(value)
    } else {
        Err(WireError::TrailingBytes(de.input.len()))
    }
}

// ---------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------

struct WireSerializer<'a> {
    out: &'a mut Vec<u8>,
}

impl WireSerializer<'_> {
    fn put_len(&mut self, len: usize) -> Result<(), WireError> {
        let len =
            u32::try_from(len).map_err(|_| WireError::Invalid("length exceeds u32".into()))?;
        self.out.extend_from_slice(&len.to_le_bytes());
        Ok(())
    }
}

impl ser::Serializer for &mut WireSerializer<'_> {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), WireError> {
        self.out.push(u8::from(v));
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i16(self, v: i16) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i32(self, v: i32) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<(), WireError> {
        self.out.push(v);
        Ok(())
    }

    fn serialize_u16(self, v: u16) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u32(self, v: u32) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), WireError> {
        self.serialize_u32(v as u32)
    }

    fn serialize_str(self, v: &str) -> Result<(), WireError> {
        self.put_len(v.len())?;
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), WireError> {
        self.put_len(v.len())?;
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), WireError> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), WireError> {
        self.out.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), WireError> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), WireError> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), WireError> {
        self.serialize_u32(variant_index)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self, WireError> {
        let len =
            len.ok_or_else(|| WireError::Invalid("sequences must have a known length".into()))?;
        self.put_len(len)?;
        Ok(self)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }

    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, WireError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self, WireError> {
        let len = len.ok_or_else(|| WireError::Invalid("maps must have a known length".into()))?;
        self.put_len(len)?;
        Ok(self)
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, WireError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
}

macro_rules! forward_compound {
    ($trait:ident, $method:ident $(, $key:ident)?) => {
        impl ser::$trait for &mut WireSerializer<'_> {
            type Ok = ();
            type Error = WireError;

            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
                value.serialize(&mut **self)
            }

            $(
                fn $key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), WireError> {
                    key.serialize(&mut **self)
                }
            )?

            fn end(self) -> Result<(), WireError> {
                Ok(())
            }
        }
    };
}

forward_compound!(SerializeSeq, serialize_element);
forward_compound!(SerializeTuple, serialize_element);
forward_compound!(SerializeTupleStruct, serialize_field);
forward_compound!(SerializeTupleVariant, serialize_field);

impl ser::SerializeMap for &mut WireSerializer<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), WireError> {
        key.serialize(&mut **self)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeStruct for &mut WireSerializer<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut WireSerializer<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Deserializer
// ---------------------------------------------------------------------

struct WireDeserializer<'de> {
    input: &'de [u8],
}

impl<'de> WireDeserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], WireError> {
        if self.input.len() < n {
            return Err(WireError::Eof);
        }
        let (head, rest) = self.input.split_at(n);
        self.input = rest;
        Ok(head)
    }

    fn get_len(&mut self) -> Result<usize, WireError> {
        let raw = self.take(4)?;
        Ok(u32::from_le_bytes(raw.try_into().expect("4 bytes")) as usize)
    }
}

macro_rules! read_scalar {
    ($self:ident, $ty:ty) => {{
        let raw = $self.take(std::mem::size_of::<$ty>())?;
        <$ty>::from_le_bytes(raw.try_into().expect("sized read"))
    }};
}

impl<'de> de::Deserializer<'de> for &mut WireDeserializer<'de> {
    type Error = WireError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::NotSelfDescribing)
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            other => Err(WireError::Invalid(format!("bool byte {other}"))),
        }
    }

    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_i8(read_scalar!(self, i8))
    }

    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_i16(read_scalar!(self, i16))
    }

    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_i32(read_scalar!(self, i32))
    }

    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_i64(read_scalar!(self, i64))
    }

    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_u8(read_scalar!(self, u8))
    }

    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_u16(read_scalar!(self, u16))
    }

    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_u32(read_scalar!(self, u32))
    }

    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_u64(read_scalar!(self, u64))
    }

    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_f32(read_scalar!(self, f32))
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_f64(read_scalar!(self, f64))
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let raw = read_scalar!(self, u32);
        let c = char::from_u32(raw)
            .ok_or_else(|| WireError::Invalid(format!("char scalar {raw:#x}")))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        let raw = self.take(len)?;
        let s = std::str::from_utf8(raw).map_err(|e| WireError::Invalid(format!("utf-8: {e}")))?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            other => Err(WireError::Invalid(format!("option flag {other}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        visitor.visit_seq(Counted {
            de: self,
            left: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_seq(Counted {
            de: self,
            left: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        visitor.visit_map(Counted {
            de: self,
            left: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::NotSelfDescribing)
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::NotSelfDescribing)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut WireDeserializer<'de>,
    left: usize,
}

impl<'de> de::SeqAccess<'de> for Counted<'_, 'de> {
    type Error = WireError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, WireError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

impl<'de> de::MapAccess<'de> for Counted<'_, 'de> {
    type Error = WireError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, WireError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, WireError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut WireDeserializer<'de>,
}

impl<'de> de::EnumAccess<'de> for EnumAccess<'_, 'de> {
    type Error = WireError;
    type Variant = Self;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), WireError> {
        let idx = {
            let raw = self.de.take(4)?;
            u32::from_le_bytes(raw.try_into().expect("4 bytes"))
        };
        let value = seed.deserialize(idx.into_deserializer())?;
        Ok((value, self))
    }
}

impl<'de> de::VariantAccess<'de> for EnumAccess<'_, 'de> {
    type Error = WireError;

    fn unit_variant(self) -> Result<(), WireError> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, WireError> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, WireError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn round_trip<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = to_bytes(v).expect("serialize");
        let back: T = from_bytes(&bytes).expect("deserialize");
        assert_eq!(&back, v);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        name: String,
        values: Vec<i32>,
        table: BTreeMap<String, u64>,
        flag: Option<bool>,
        pair: (u8, char),
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Sample {
        Unit,
        New(u32),
        Tuple(i8, i8),
        Struct { a: String, b: Option<f64> },
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&true);
        round_trip(&false);
        round_trip(&-5i8);
        round_trip(&0x1234i16);
        round_trip(&-0x1234_5678i32);
        round_trip(&i64::MIN);
        round_trip(&0xFFu8);
        round_trip(&u16::MAX);
        round_trip(&u32::MAX);
        round_trip(&u64::MAX);
        round_trip(&1.5f32);
        round_trip(&-2.25e10f64);
        round_trip(&'ß');
        round_trip(&String::from("hello, 世界"));
        round_trip(&());
    }

    #[test]
    fn collections_round_trip() {
        round_trip(&vec![1u32, 2, 3]);
        round_trip(&Vec::<String>::new());
        round_trip(&Some(vec![1u8, 2]));
        round_trip(&Option::<u8>::None);
        let mut m = BTreeMap::new();
        m.insert("a".to_owned(), 1u64);
        m.insert("b".to_owned(), 2);
        round_trip(&m);
    }

    #[test]
    fn structs_and_enums_round_trip() {
        round_trip(&Nested {
            name: "x".into(),
            values: vec![-1, 0, 1],
            table: [("k".to_owned(), 9u64)].into_iter().collect(),
            flag: Some(true),
            pair: (7, 'q'),
        });
        round_trip(&Sample::Unit);
        round_trip(&Sample::New(42));
        round_trip(&Sample::Tuple(-1, 1));
        round_trip(&Sample::Struct {
            a: "s".into(),
            b: Some(0.5),
        });
    }

    #[test]
    fn truncated_input_reports_eof() {
        let bytes = to_bytes(&12345u64).unwrap();
        let r: Result<u64, _> = from_bytes(&bytes[..4]);
        assert_eq!(r.unwrap_err(), WireError::Eof);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&1u8).unwrap();
        bytes.push(0);
        let r: Result<u8, _> = from_bytes(&bytes);
        assert_eq!(r.unwrap_err(), WireError::TrailingBytes(1));
    }

    #[test]
    fn invalid_encodings_are_rejected() {
        let r: Result<bool, _> = from_bytes(&[7]);
        assert!(matches!(r.unwrap_err(), WireError::Invalid(_)));
        let r: Result<Option<u8>, _> = from_bytes(&[9, 0]);
        assert!(matches!(r.unwrap_err(), WireError::Invalid(_)));
        // Invalid UTF-8 in a string.
        let mut bytes = 2u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let r: Result<String, _> = from_bytes(&bytes);
        assert!(matches!(r.unwrap_err(), WireError::Invalid(_)));
    }

    #[test]
    fn encoding_is_compact() {
        // A u64 is exactly 8 bytes; a 3-element byte vec is 4 + 3.
        assert_eq!(to_bytes(&1u64).unwrap().len(), 8);
        assert_eq!(to_bytes(&vec![1u8, 2, 3]).unwrap().len(), 7);
        assert_eq!(to_bytes(&Sample::Unit).unwrap().len(), 4);
    }

    #[test]
    fn media_frames_round_trip() {
        use media::{CompressedFrame, FrameType};
        let f = CompressedFrame {
            seq: 9,
            pts_us: 300_000,
            ftype: FrameType::P,
            data: (0..=255).collect(),
        };
        round_trip(&f);
    }
}
